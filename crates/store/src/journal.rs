//! `KTSTORE2`: the crash-safe campaign journal (write-ahead log).
//!
//! The PR-1/PR-2 pipeline only persisted a whole-store snapshot at
//! end-of-campaign, so a process kill at hour N lost every visit since
//! launch. The journal inverts that: workers append one checksummed
//! frame per *finished* visit as the campaign runs, the supervisor
//! appends a checkpoint frame per completed `(crawl, os)` campaign, and
//! a killed run resumes by replaying the journal and crawling only what
//! is missing.
//!
//! ```text
//! file  = magic(8B = "KTSTORE2") frame*
//! frame = sync(2B = F5 4B) kind(u8) len(u32 LE) payload[len] crc(u32 LE)
//!         crc = CRC-32/IEEE over kind ‖ len ‖ payload
//! kinds : 1 VISIT   flags, stats delta, codec-encoded VisitRecord
//!         2 CHECKPOINT (crawl, os) done: completed domains + stats blob
//!         3 FLUSH   durability marker: fsync happened right after
//!         4 META    campaign parameters (seed, sizes) for resume
//! ```
//!
//! Recovery properties, in decreasing order of strength:
//!
//! * **Torn tail** (the common crash shape): the scanner loads every
//!   complete frame and truncation repair cuts the partial one.
//! * **Interior corruption** (bit rot, overwrite): the per-frame CRC
//!   rejects the damaged frame and the scanner *resyncs* — scans
//!   forward for the next `F5 4B` that starts a CRC-valid frame — so
//!   one bad frame never swallows the rest of the file.
//! * **Duplicate frames** (crash after journal append, before
//!   checkpoint; or a re-run visit after resume): replay dedupes on
//!   visit identity `(crawl, domain, os)`, last write wins, exactly
//!   like `TelemetryStore::append`.
//!
//! Crash points are *injectable*: a [`KillSpec`] makes the writer stop
//! mid-frame or post-frame at a chosen frame index, simulating a
//! `kill -9` at every interesting byte boundary without forking real
//! processes. `kt-faults` drives the same mechanism per-visit via
//! `Fault::ProcessKill`.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::codec::{self, decode, encode};
use crate::record::VisitRecord;
use crate::store::TelemetryStore;

/// File magic for journals (snapshots are `KTSTORE1`).
pub const JOURNAL_MAGIC: &[u8; 8] = b"KTSTORE2";

/// Frame sync marker: resync scans look for this pair.
pub const SYNC: [u8; 2] = [0xF5, 0x4B];

/// Upper bound on one frame's payload. A corrupted length field must
/// never drive a multi-gigabyte allocation (the `persist::load` bug
/// this PR also fixes); anything claiming more than this is corrupt.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Default bytes of visit payload between durability flush points.
/// Matches the sharded store's segment target so one sealed segment's
/// worth of appends is at most what a crash can lose *from the OS page
/// cache* (frames are still complete on disk far more often in
/// practice). Tunable per-writer via [`JournalConfig`].
pub const FLUSH_EVERY: u64 = 512 << 10;

/// Default frames buffered per group commit before the writer issues
/// one batched `write_all`.
pub const GROUP_MAX_FRAMES: u64 = 64;

/// Default byte ceiling on the group-commit buffer.
pub const GROUP_MAX_BYTES: usize = 256 << 10;

/// Writer tuning knobs. The defaults reproduce the repo's historical
/// behavior at every durability boundary: group commit only changes
/// *when* complete frames reach the file (one batched write per group
/// instead of one write per frame), never which bytes are on disk at a
/// flush point, checkpoint, sync, or injected kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// Bytes of visit payload between FLUSH-marker fsync points.
    pub flush_every_bytes: u64,
    /// Buffered frames that force a group commit.
    pub group_max_frames: u64,
    /// Buffered bytes that force a group commit.
    pub group_max_bytes: usize,
}

impl Default for JournalConfig {
    fn default() -> JournalConfig {
        JournalConfig {
            flush_every_bytes: FLUSH_EVERY,
            group_max_frames: GROUP_MAX_FRAMES,
            group_max_bytes: GROUP_MAX_BYTES,
        }
    }
}

impl JournalConfig {
    /// A writer that flushes every frame straight to the file — the
    /// pre-group-commit behavior, kept for ablation benchmarks.
    pub fn unbatched() -> JournalConfig {
        JournalConfig {
            group_max_frames: 1,
            ..JournalConfig::default()
        }
    }
}

/// Frame kinds.
pub mod kind {
    /// One finished visit: flags + stats delta + encoded record.
    pub const VISIT: u8 = 1;
    /// One finished `(crawl, os)` campaign.
    pub const CHECKPOINT: u8 = 2;
    /// Durability marker: the writer fsynced right after this frame.
    pub const FLUSH: u8 = 3;
    /// Campaign parameters, written once at journal start.
    pub const META: u8 = 4;
}

/// Visit frame flag: this is the site's *final* record for the pass
/// (terminal success/failure/quarantine, not superseded later).
pub const FLAG_FINAL: u8 = 1;
/// Visit frame flag: produced by the end-of-campaign recrawl pass.
pub const FLAG_RECRAWL: u8 = 2;

// ---------------------------------------------------------------- CRC

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Slicing-by-8 tables: `TABLES[k][b]` folds byte `b` through `k`
/// additional zero bytes, so one step consumes a whole 8-byte word.
const fn crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    tables[0] = crc_table();
    let mut i = 0;
    while i < 256 {
        let mut c = tables[0][i];
        let mut k = 1;
        while k < 8 {
            c = tables[0][(c & 0xFF) as usize] ^ (c >> 8);
            tables[k][i] = c;
            k += 1;
        }
        i += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = crc_tables();

/// CRC-32/IEEE (the zlib/gzip polynomial), slicing-by-8: eight table
/// lookups per 8-byte word instead of one per byte. Bit-identical to
/// [`crc32_bytewise`] (property-pinned in tests).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// The original byte-at-a-time CRC-32, kept as the reference the fast
/// path is property-tested against.
pub fn crc32_bytewise(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ------------------------------------------------------------- frames

/// Per-visit contribution to `CrawlStats`, journaled alongside the
/// record so a resumed run can reconstruct the merged tally without
/// re-running finished sites. Failure classes travel as raw NetError
/// codes (`NetError::code()`) — the crawler owns the enum.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VisitDelta {
    /// Simulated wall-clock cost of this site on its worker, ms
    /// (everything the scheduler charged: visit, retries, backoff).
    pub cost_ms: u64,
    /// Sites attempted (1 for a final frame, 0 otherwise).
    pub attempted: u64,
    /// Successful loads contributed.
    pub successful: u64,
    /// In-place retries consumed by this site.
    pub retries: u64,
    /// 1 when the recrawl pass revisited this site.
    pub recrawled: u64,
    /// 1 when a transiently-failing site ended as a success.
    pub recovered: u64,
    /// 1 when the site still failed after the recrawl pass.
    pub gave_up: u64,
    /// 1 when the visit was quarantined after a worker panic.
    pub crashed: u64,
    /// Store appends retried for this site.
    pub store_retries: u64,
    /// Failed loads by raw net-error code.
    pub failures: Vec<(i64, u64)>,
}

/// One visit frame as read back from a journal.
#[derive(Debug, Clone)]
pub struct ReplayedVisit {
    /// The decoded telemetry record.
    pub record: VisitRecord,
    /// Its stats contribution.
    pub delta: VisitDelta,
    /// `FLAG_*` bits.
    pub flags: u8,
}

/// One finished `(crawl, os)` campaign: enough to skip it wholesale on
/// resume. `stats` is the merged `CrawlStats` in the crawler's compact
/// binary encoding (kt-store stays ignorant of the enum-keyed map).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointFrame {
    /// Crawl id, e.g. `top2020`.
    pub crawl: String,
    /// OS name exactly as `Os::name()` prints it
    /// (`Windows`/`Linux`/`Mac`).
    pub os: String,
    /// Every domain with a final record in this campaign.
    pub completed: Vec<String>,
    /// `CrawlStats::to_bytes` blob.
    pub stats: Vec<u8>,
}

/// Campaign parameters written once at journal start; `resume`
/// regenerates the identical deterministic population from these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalMeta {
    /// Master RNG seed (drives population, faults, latencies).
    pub seed: u64,
    /// 2020 toplist size.
    pub top_size: u64,
    /// Malicious-list size.
    pub malicious_size: u64,
    /// Worker count of the original run (informational; resume may use
    /// fewer — outcomes are worker-count-invariant by design).
    pub workers: u64,
}

fn put_delta(buf: &mut BytesMut, delta: &VisitDelta) {
    codec::put_varint(buf, delta.cost_ms);
    codec::put_varint(buf, delta.attempted);
    codec::put_varint(buf, delta.successful);
    codec::put_varint(buf, delta.retries);
    codec::put_varint(buf, delta.recrawled);
    codec::put_varint(buf, delta.recovered);
    codec::put_varint(buf, delta.gave_up);
    codec::put_varint(buf, delta.crashed);
    codec::put_varint(buf, delta.store_retries);
    codec::put_varint(buf, delta.failures.len() as u64);
    for &(code, count) in &delta.failures {
        codec::put_varint(buf, codec::zigzag(code));
        codec::put_varint(buf, count);
    }
}

fn get_delta(buf: &mut Bytes) -> Result<VisitDelta, codec::CodecError> {
    let mut d = VisitDelta {
        cost_ms: codec::get_varint(buf)?,
        attempted: codec::get_varint(buf)?,
        successful: codec::get_varint(buf)?,
        retries: codec::get_varint(buf)?,
        recrawled: codec::get_varint(buf)?,
        recovered: codec::get_varint(buf)?,
        gave_up: codec::get_varint(buf)?,
        crashed: codec::get_varint(buf)?,
        store_retries: codec::get_varint(buf)?,
        failures: Vec::new(),
    };
    let n = codec::get_varint(buf)? as usize;
    if n > buf.remaining() {
        // Each pair is at least 2 bytes; a count beyond the remaining
        // byte budget is corrupt, not a huge allocation request.
        return Err(codec::CodecError::Truncated);
    }
    for _ in 0..n {
        let code = codec::unzigzag(codec::get_varint(buf)?);
        let count = codec::get_varint(buf)?;
        d.failures.push((code, count));
    }
    Ok(d)
}

/// Serialize a visit frame payload.
fn encode_visit_payload(record: &VisitRecord, delta: &VisitDelta, flags: u8) -> Vec<u8> {
    let record_bytes = encode(record);
    let mut buf = BytesMut::with_capacity(record_bytes.len() + 64);
    buf.put_u8(flags);
    put_delta(&mut buf, delta);
    codec::put_varint(&mut buf, record_bytes.len() as u64);
    buf.put_slice(&record_bytes);
    buf.freeze().to_vec()
}

fn decode_visit_payload(payload: &[u8]) -> Result<ReplayedVisit, codec::CodecError> {
    let mut buf = Bytes::copy_from_slice(payload);
    if !buf.has_remaining() {
        return Err(codec::CodecError::Truncated);
    }
    let flags = buf.get_u8();
    let delta = get_delta(&mut buf)?;
    let len = codec::get_varint(&mut buf)? as usize;
    if buf.remaining() < len {
        return Err(codec::CodecError::Truncated);
    }
    let record = decode(buf.copy_to_bytes(len))?;
    Ok(ReplayedVisit {
        record,
        delta,
        flags,
    })
}

// ------------------------------------------------------------- errors

/// Journal-level failures. Frame-level damage is never an `Err` — the
/// scanner degrades to the maximal clean subset and reports counts.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the journal magic.
    BadMagic,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::BadMagic => write!(f, "not a knock-talk journal (KTSTORE2) file"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

// ------------------------------------------------------------- writer

/// How an injected crash truncates the write stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// Die halfway through the frame: sync marker and header reach
    /// disk, the payload is torn, no CRC. The classic torn write.
    MidFrame,
    /// Die right after the frame's last byte but before anything that
    /// follows (checkpoint, fsync, rename): the frame is intact, the
    /// campaign bookkeeping is not.
    PostFrame,
}

/// A deterministic crash point: die while writing frame `at_frame`
/// (0-based, counting every frame kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// Frame index at which to die.
    pub at_frame: u64,
    /// Where in that frame's write to die.
    pub mode: KillMode,
}

/// Counters describing what a writer has durably appended.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Total frames written (all kinds).
    pub frames: u64,
    /// Visit frames.
    pub visits: u64,
    /// Checkpoint frames.
    pub checkpoints: u64,
    /// Flush points (each implies an fsync).
    pub flush_points: u64,
    /// Bytes appended, including magic (equals the on-disk length once
    /// the group buffer drains).
    pub bytes: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Batched `write_all` calls that drained the group buffer.
    pub group_commits: u64,
    /// Frames that reached the file through a group of more than one
    /// (i.e. whose write syscall was amortized).
    pub grouped_frames: u64,
}

impl JournalStats {
    /// Frames per fsync — the amortization the group commit buys.
    pub fn frames_per_fsync(&self) -> f64 {
        if self.fsyncs == 0 {
            0.0
        } else {
            self.frames as f64 / self.fsyncs as f64
        }
    }
}

struct WriterInner {
    file: File,
    stats: JournalStats,
    since_flush: u64,
    kill: Option<KillSpec>,
    error: Option<String>,
    /// Complete encoded frames not yet handed to the file: the group
    /// buffer. Drained by one `write_all` when the group fills, before
    /// any fsync, before any torn kill write, and on drop.
    pending: Vec<u8>,
    /// Frames currently in `pending`.
    pending_frames: u64,
    config: JournalConfig,
}

impl WriterInner {
    /// Drain the group buffer with a single batched write.
    fn flush_pending(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file.write_all(&self.pending)?;
        self.stats.group_commits += 1;
        if self.pending_frames > 1 {
            self.stats.grouped_frames += self.pending_frames;
        }
        self.pending.clear();
        self.pending_frames = 0;
        Ok(())
    }
}

/// Append-only journal writer, shared across crawl workers. All frame
/// appends serialize through one mutex — the paper's bottleneck is the
/// 21-second page visit, not the journal write — and a simulated kill
/// (or a real I/O error) flips the `killed` latch that workers poll to
/// stop claiming jobs, mimicking a process death without taking the
/// test harness down with it.
pub struct JournalWriter {
    inner: Mutex<WriterInner>,
    killed: AtomicBool,
    path: PathBuf,
}

impl JournalWriter {
    /// Create a fresh journal at `path` (truncates any existing file),
    /// writing and fsyncing the magic so even an immediately-killed
    /// campaign leaves a well-formed empty journal.
    pub fn create(path: &Path) -> Result<JournalWriter, JournalError> {
        JournalWriter::create_with(path, JournalConfig::default())
    }

    /// [`JournalWriter::create`] with explicit tuning knobs.
    pub fn create_with(path: &Path, config: JournalConfig) -> Result<JournalWriter, JournalError> {
        let mut file = File::create(path)?;
        file.write_all(JOURNAL_MAGIC)?;
        file.sync_all()?;
        Ok(JournalWriter {
            inner: Mutex::new(WriterInner {
                file,
                stats: JournalStats {
                    bytes: JOURNAL_MAGIC.len() as u64,
                    fsyncs: 1,
                    ..JournalStats::default()
                },
                since_flush: 0,
                kill: None,
                error: None,
                pending: Vec::new(),
                pending_frames: 0,
                config,
            }),
            killed: AtomicBool::new(false),
            path: path.to_path_buf(),
        })
    }

    /// Reopen an existing journal for appending: scan it, truncate the
    /// torn tail back to the last complete frame, and position at the
    /// end. Interior corruption (if any) is left in place — replay
    /// resyncs past it; `fsck --repair` rewrites it out.
    pub fn open_append(path: &Path) -> Result<JournalWriter, JournalError> {
        JournalWriter::open_append_with(path, JournalConfig::default())
    }

    /// [`JournalWriter::open_append`] with explicit tuning knobs.
    pub fn open_append_with(
        path: &Path,
        config: JournalConfig,
    ) -> Result<JournalWriter, JournalError> {
        let data = std::fs::read(path)?;
        let scan = scan(&data)?;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(scan.valid_end)?;
        file.sync_all()?;
        file.seek(SeekFrom::End(0))?;
        Ok(JournalWriter {
            inner: Mutex::new(WriterInner {
                file,
                stats: JournalStats {
                    frames: scan.frames.len() as u64,
                    visits: scan.count_kind(kind::VISIT),
                    checkpoints: scan.count_kind(kind::CHECKPOINT),
                    flush_points: scan.count_kind(kind::FLUSH),
                    bytes: scan.valid_end,
                    fsyncs: 1,
                    ..JournalStats::default()
                },
                since_flush: 0,
                kill: None,
                error: None,
                pending: Vec::new(),
                pending_frames: 0,
                config,
            }),
            killed: AtomicBool::new(false),
            path: path.to_path_buf(),
        })
    }

    /// Arm (or disarm) a deterministic crash point.
    pub fn set_kill(&self, kill: Option<KillSpec>) {
        self.inner.lock().unwrap().kill = kill;
    }

    /// Journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True once a kill point fired or an I/O error latched. Workers
    /// poll this between jobs, like checking whether the process they
    /// live in is still alive.
    pub fn killed(&self) -> bool {
        self.killed.load(Ordering::Acquire)
    }

    /// The latched I/O error, if the writer died of one.
    pub fn error(&self) -> Option<String> {
        self.inner.lock().unwrap().error.clone()
    }

    /// Durability counters so far.
    pub fn stats(&self) -> JournalStats {
        self.inner.lock().unwrap().stats
    }

    /// Append one finished visit. `kill_now` is the per-visit
    /// `Fault::ProcessKill` decision: die (torn, mid-frame) while
    /// writing exactly this frame.
    pub fn append_visit(
        &self,
        record: &VisitRecord,
        delta: &VisitDelta,
        flags: u8,
        kill_now: bool,
    ) {
        let payload = encode_visit_payload(record, delta, flags);
        self.append_frame(kind::VISIT, &payload, kill_now);
        if self.killed() {
            return;
        }
        // Durability flush point: seal roughly one store segment's
        // worth of visit bytes per fsync.
        let due = {
            let inner = self.inner.lock().unwrap();
            inner.since_flush >= inner.config.flush_every_bytes
        };
        if due {
            self.append_frame(kind::FLUSH, &[], false);
            self.fsync();
        }
    }

    /// Append a campaign checkpoint and fsync: a completed `(crawl,
    /// os)` must survive any crash that happens after this returns.
    pub fn append_checkpoint(&self, cp: &CheckpointFrame) {
        let payload = serde_json::to_string(cp)
            .expect("checkpoint serialises")
            .into_bytes();
        self.append_frame(kind::CHECKPOINT, &payload, false);
        self.fsync();
    }

    /// Append the campaign-parameters frame and fsync.
    pub fn append_meta(&self, meta: &JournalMeta) {
        let payload = serde_json::to_string(meta)
            .expect("meta serialises")
            .into_bytes();
        self.append_frame(kind::META, &payload, false);
        self.fsync();
    }

    /// Force everything written so far to disk.
    pub fn sync(&self) {
        self.fsync();
    }

    fn fsync(&self) {
        if self.killed() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        // Re-check under the lock: a writer blocked here while another
        // thread hit the kill boundary must not outlive the "process".
        if inner.error.is_some() || self.killed() {
            return;
        }
        // An fsync promises durability for every frame appended so
        // far, so the group buffer drains first.
        match inner.flush_pending().and_then(|()| inner.file.sync_all()) {
            Ok(()) => inner.stats.fsyncs += 1,
            Err(e) => {
                inner.error = Some(e.to_string());
                self.killed.store(true, Ordering::Release);
            }
        }
    }

    fn append_frame(&self, frame_kind: u8, payload: &[u8], kill_now: bool) {
        if self.killed() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        // Re-check under the lock. Without this, a worker that passed
        // the latch check and then blocked on the mutex while another
        // thread died mid-frame would append a whole frame *after* the
        // torn write — bytes from a thread that outlived the simulated
        // `kill -9`, which no real crash can produce. The latch is also
        // set *before* the lock is released (below) so the two checks
        // can never both read stale state.
        if inner.error.is_some() || self.killed() {
            return;
        }
        let index = inner.stats.frames;
        let armed = match inner.kill {
            Some(k) if k.at_frame == index => Some(k.mode),
            _ => None,
        };
        let mode = if kill_now {
            Some(KillMode::MidFrame)
        } else {
            armed
        };
        let mut frame = Vec::with_capacity(payload.len() + 11);
        frame.extend_from_slice(&SYNC);
        frame.push(frame_kind);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        let crc = crc32(&frame[2..]);
        let outcome: io::Result<bool> = (|| match mode {
            Some(KillMode::MidFrame) => {
                // The torn write: header plus roughly half the payload
                // reach disk, never the CRC. Buffered frames drain
                // first — a real process already issued those writes;
                // only the frame being written tears — then everything
                // is flushed so the damage is durable, exactly as an
                // unlucky page-cache writeback would leave it. The
                // on-disk bytes at this boundary are identical to the
                // unbatched writer's.
                inner.flush_pending()?;
                let cut = 3 + (frame.len() - 3) / 2;
                inner.file.write_all(&frame[..cut])?;
                inner.file.sync_all()?;
                inner.stats.bytes += cut as u64;
                inner.stats.fsyncs += 1;
                Ok(true)
            }
            Some(KillMode::PostFrame) => {
                frame.extend_from_slice(&crc.to_le_bytes());
                inner.flush_pending()?;
                inner.file.write_all(&frame)?;
                inner.file.sync_all()?;
                inner.stats.bytes += frame.len() as u64;
                inner.stats.fsyncs += 1;
                inner.stats.frames += 1;
                Ok(true)
            }
            None => {
                frame.extend_from_slice(&crc.to_le_bytes());
                inner.pending.extend_from_slice(&frame);
                inner.pending_frames += 1;
                inner.stats.bytes += frame.len() as u64;
                inner.stats.frames += 1;
                match frame_kind {
                    kind::VISIT => {
                        inner.stats.visits += 1;
                        inner.since_flush += frame.len() as u64;
                    }
                    kind::CHECKPOINT => inner.stats.checkpoints += 1,
                    kind::FLUSH => {
                        inner.stats.flush_points += 1;
                        inner.since_flush = 0;
                    }
                    _ => {}
                }
                if inner.pending_frames >= inner.config.group_max_frames
                    || inner.pending.len() >= inner.config.group_max_bytes
                {
                    inner.flush_pending()?;
                }
                Ok(false)
            }
        })();
        match outcome {
            Ok(false) => {}
            Ok(true) => {
                self.killed.store(true, Ordering::Release);
            }
            Err(e) => {
                inner.error = Some(e.to_string());
                self.killed.store(true, Ordering::Release);
            }
        }
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        // A dead "process" writes nothing after the kill point; a live
        // writer drains its group buffer so every appended frame is in
        // the file (durability still comes from the flush cadence).
        if self.killed() {
            return;
        }
        if let Ok(mut inner) = self.inner.lock() {
            if inner.error.is_none() {
                let _ = inner.flush_pending();
            }
        }
    }
}

// ------------------------------------------------------------ scanner

/// One parsed frame.
#[derive(Debug, Clone)]
pub enum FrameBody {
    /// A visit frame.
    Visit(ReplayedVisit),
    /// A checkpoint frame.
    Checkpoint(CheckpointFrame),
    /// A flush marker.
    Flush,
    /// The campaign-parameters frame.
    Meta(JournalMeta),
    /// CRC-valid frame of a kind this build does not know (forward
    /// compatibility: carried, never dropped).
    Unknown(u8, Vec<u8>),
}

impl FrameBody {
    fn kind(&self) -> u8 {
        match self {
            FrameBody::Visit(_) => kind::VISIT,
            FrameBody::Checkpoint(_) => kind::CHECKPOINT,
            FrameBody::Flush => kind::FLUSH,
            FrameBody::Meta(_) => kind::META,
            FrameBody::Unknown(k, _) => *k,
        }
    }
}

/// A scanned journal: every recoverable frame plus damage accounting.
#[derive(Debug)]
pub struct ScanReport {
    /// Valid frames in file order, with their byte spans.
    pub frames: Vec<ScannedFrame>,
    /// Byte spans the scanner had to skip (failed CRC or framing).
    pub corrupt_spans: Vec<(u64, u64)>,
    /// True when the file ends inside a frame (torn tail).
    pub truncated_tail: bool,
    /// End offset of the last valid frame: truncation repair cuts here.
    pub valid_end: u64,
    /// Total file length scanned.
    pub file_len: u64,
}

/// A valid frame plus its location.
#[derive(Debug)]
pub struct ScannedFrame {
    /// Byte offset of the frame's sync marker.
    pub start: u64,
    /// Byte offset one past the frame's CRC.
    pub end: u64,
    /// Parsed body.
    pub body: FrameBody,
}

impl ScanReport {
    fn count_kind(&self, k: u8) -> u64 {
        self.frames.iter().filter(|f| f.body.kind() == k).count() as u64
    }

    /// Bytes lost to corruption.
    pub fn corrupt_bytes(&self) -> u64 {
        self.corrupt_spans.iter().map(|(s, e)| e - s).sum()
    }
}

enum FrameErr {
    /// No sync marker at this offset.
    BadSync,
    /// Plausible header but the frame extends past EOF.
    Truncated,
    /// Length field exceeds `MAX_FRAME_LEN`.
    BadLen,
    /// CRC mismatch.
    BadCrc,
    /// CRC fine but the payload does not decode (e.g. a visit frame
    /// whose inner record is from a future codec).
    BadPayload,
}

/// Try to parse one frame at `pos`. Returns the end offset + body.
fn try_frame(data: &[u8], pos: usize) -> Result<(usize, FrameBody), FrameErr> {
    let remaining = data.len() - pos;
    if remaining < 2 || data[pos] != SYNC[0] || data[pos + 1] != SYNC[1] {
        return Err(if remaining < 2 && remaining > 0 && data[pos] == SYNC[0] {
            // A lone F5 at EOF is a torn sync marker.
            FrameErr::Truncated
        } else {
            FrameErr::BadSync
        });
    }
    if remaining < 7 {
        return Err(FrameErr::Truncated);
    }
    let kind_byte = data[pos + 2];
    let len =
        u32::from_le_bytes([data[pos + 3], data[pos + 4], data[pos + 5], data[pos + 6]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameErr::BadLen);
    }
    let total = 7 + len + 4;
    if remaining < total {
        return Err(FrameErr::Truncated);
    }
    let payload = &data[pos + 7..pos + 7 + len];
    let stored_crc = u32::from_le_bytes([
        data[pos + 7 + len],
        data[pos + 8 + len],
        data[pos + 9 + len],
        data[pos + 10 + len],
    ]);
    if crc32(&data[pos + 2..pos + 7 + len]) != stored_crc {
        return Err(FrameErr::BadCrc);
    }
    let body = match kind_byte {
        kind::VISIT => {
            FrameBody::Visit(decode_visit_payload(payload).map_err(|_| FrameErr::BadPayload)?)
        }
        kind::CHECKPOINT => {
            let text = std::str::from_utf8(payload).map_err(|_| FrameErr::BadPayload)?;
            FrameBody::Checkpoint(serde_json::from_str(text).map_err(|_| FrameErr::BadPayload)?)
        }
        kind::FLUSH => FrameBody::Flush,
        kind::META => {
            let text = std::str::from_utf8(payload).map_err(|_| FrameErr::BadPayload)?;
            FrameBody::Meta(serde_json::from_str(text).map_err(|_| FrameErr::BadPayload)?)
        }
        other => FrameBody::Unknown(other, payload.to_vec()),
    };
    Ok((pos + total, body))
}

/// Scan raw journal bytes (past callers verified the magic) into the
/// maximal clean subset of frames. Never panics, never errors on frame
/// damage — only on a missing magic.
pub fn scan(data: &[u8]) -> Result<ScanReport, JournalError> {
    if data.len() < JOURNAL_MAGIC.len() || &data[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
        return Err(JournalError::BadMagic);
    }
    let mut report = ScanReport {
        frames: Vec::new(),
        corrupt_spans: Vec::new(),
        truncated_tail: false,
        valid_end: JOURNAL_MAGIC.len() as u64,
        file_len: data.len() as u64,
    };
    let mut pos = JOURNAL_MAGIC.len();
    while pos < data.len() {
        match try_frame(data, pos) {
            Ok((end, body)) => {
                report.frames.push(ScannedFrame {
                    start: pos as u64,
                    end: end as u64,
                    body,
                });
                report.valid_end = end as u64;
                pos = end;
            }
            Err(err) => {
                // Resync: the next CRC-valid frame start after pos.
                let next = resync(data, pos + 1);
                match next {
                    Some(next) => {
                        report.corrupt_spans.push((pos as u64, next as u64));
                        if matches!(err, FrameErr::Truncated) {
                            // "Truncated" but valid frames follow: the
                            // length field was damaged, not the tail.
                        }
                        pos = next;
                    }
                    None => {
                        // Nothing recoverable to EOF. A plausible
                        // partial frame is a torn tail; anything else
                        // is trailing corruption.
                        if matches!(err, FrameErr::Truncated) {
                            report.truncated_tail = true;
                        } else {
                            report.corrupt_spans.push((pos as u64, data.len() as u64));
                        }
                        break;
                    }
                }
            }
        }
    }
    Ok(report)
}

fn resync(data: &[u8], from: usize) -> Option<usize> {
    let mut pos = from;
    while pos + 1 < data.len() {
        if data[pos] == SYNC[0] && data[pos + 1] == SYNC[1] && try_frame(data, pos).is_ok() {
            return Some(pos);
        }
        pos += 1;
    }
    None
}

// ------------------------------------------------------------- replay

/// A journal replayed into usable state.
#[derive(Debug)]
pub struct ReplayReport {
    /// Store rebuilt from every valid visit frame (idempotent
    /// last-write-wins append, same as the live store).
    pub store: TelemetryStore,
    /// Every valid visit frame, in journal order.
    pub visits: Vec<ReplayedVisit>,
    /// Every checkpoint, in journal order.
    pub checkpoints: Vec<CheckpointFrame>,
    /// The campaign-parameters frame, if present.
    pub meta: Option<JournalMeta>,
    /// Frame kinds in journal order (test hook for targeting specific
    /// kill boundaries).
    pub frame_kinds: Vec<u8>,
    /// Visit frames whose identity `(crawl, domain, os)` had already
    /// been seen with `FLAG_FINAL` — the crash-between-append-and-
    /// checkpoint duplicates that replay dedupes.
    pub duplicate_finals: usize,
    /// Damage accounting from the scan.
    pub corrupt_frames: usize,
    /// Bytes lost to corruption.
    pub corrupt_bytes: u64,
    /// True when the file ended mid-frame.
    pub truncated_tail: bool,
    /// End offset of the last valid frame.
    pub valid_end: u64,
    /// Flush markers seen.
    pub flush_points: usize,
}

/// Replay a journal from disk. Frame damage degrades, never fails.
pub fn replay(path: &Path) -> Result<ReplayReport, JournalError> {
    let data = std::fs::read(path)?;
    let scan = scan(&data)?;
    let store = TelemetryStore::new();
    let mut visits = Vec::new();
    let mut checkpoints = Vec::new();
    let mut meta = None;
    let mut frame_kinds = Vec::with_capacity(scan.frames.len());
    let mut seen_final: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    let mut duplicate_finals = 0usize;
    let mut flush_points = 0usize;
    for frame in &scan.frames {
        frame_kinds.push(frame.body.kind());
        match &frame.body {
            FrameBody::Visit(v) => {
                store.append(&v.record);
                if v.flags & FLAG_FINAL != 0 {
                    let key = (
                        v.record.crawl.as_str().to_string(),
                        v.record.domain.clone(),
                        v.record.os.name().to_string(),
                    );
                    if let Some(n) = seen_final.get_mut(&key) {
                        *n += 1;
                        duplicate_finals += 1;
                    } else {
                        seen_final.insert(key, 1);
                    }
                }
                visits.push(v.clone());
            }
            FrameBody::Checkpoint(cp) => checkpoints.push(cp.clone()),
            FrameBody::Meta(m) => meta = Some(*m),
            FrameBody::Flush => flush_points += 1,
            FrameBody::Unknown(..) => {}
        }
    }
    Ok(ReplayReport {
        store,
        visits,
        checkpoints,
        meta,
        frame_kinds,
        duplicate_finals,
        corrupt_frames: scan.corrupt_spans.len(),
        corrupt_bytes: scan.corrupt_bytes(),
        truncated_tail: scan.truncated_tail,
        valid_end: scan.valid_end,
        flush_points,
    })
}

// --------------------------------------------------------------- fsck

/// `fsck` knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsckOptions {
    /// Rewrite a clean journal in place (tmp + fsync + rename) and
    /// quarantine damaged byte ranges next to it.
    pub repair: bool,
    /// Test hook for the mid-rename crash boundary: do everything
    /// except the final rename, leaving the fsynced `.tmp` beside the
    /// untouched original — exactly the on-disk state a kill between
    /// fsync and rename leaves behind.
    pub kill_before_rename: bool,
}

/// What the store doctor found (and, with `repair`, fixed).
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Valid frames.
    pub frames: usize,
    /// Valid visit frames.
    pub visits: usize,
    /// Checkpoints.
    pub checkpoints: usize,
    /// Corrupt byte spans skipped by resync.
    pub corrupt_frames: usize,
    /// Bytes in those spans.
    pub corrupt_bytes: u64,
    /// File ended mid-frame.
    pub truncated_tail: bool,
    /// Bytes in the torn tail.
    pub tail_bytes: u64,
    /// Final visit frames whose identity repeats (idempotent replay
    /// collapses them; reported so operators see crash duplicates).
    pub duplicate_finals: usize,
    /// Final visit frames written before a checkpoint that does *not*
    /// list their domain as completed — evidence the checkpoint and
    /// journal disagree (a frame survived that bookkeeping lost).
    pub orphan_records: usize,
    /// Domains a checkpoint claims completed with no surviving final
    /// frame (the checkpoint outlived a corrupted visit frame).
    pub missing_records: usize,
    /// True when a clean journal was rewritten.
    pub repaired: bool,
    /// Bytes quarantined to the `.quarantine` file.
    pub quarantined_bytes: u64,
    /// Path of the rewritten journal (same as input) when repaired.
    pub repaired_path: Option<PathBuf>,
    /// Path of the quarantine file when damage was quarantined.
    pub quarantine_path: Option<PathBuf>,
}

impl FsckReport {
    /// A journal with nothing wrong.
    pub fn clean(&self) -> bool {
        self.corrupt_frames == 0
            && !self.truncated_tail
            && self.duplicate_finals == 0
            && self.orphan_records == 0
            && self.missing_records == 0
    }
}

/// Scan a journal for damage; optionally rewrite it clean. Never
/// panics on arbitrary input (fuzzed in tests).
pub fn fsck(path: &Path, options: FsckOptions) -> Result<FsckReport, JournalError> {
    let data = std::fs::read(path)?;
    let scan = scan(&data)?;
    let mut report = FsckReport {
        frames: scan.frames.len(),
        corrupt_frames: scan.corrupt_spans.len(),
        corrupt_bytes: scan.corrupt_bytes(),
        truncated_tail: scan.truncated_tail,
        tail_bytes: if scan.truncated_tail {
            scan.file_len
                - scan
                    .frames
                    .last()
                    .map(|f| f.end)
                    .unwrap_or(JOURNAL_MAGIC.len() as u64)
        } else {
            0
        },
        ..FsckReport::default()
    };
    // Duplicate finals + checkpoint cross-checks, in journal order.
    let mut finals: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for frame in &scan.frames {
        match &frame.body {
            FrameBody::Visit(v) => {
                report.visits += 1;
                if v.flags & FLAG_FINAL != 0 {
                    let key = (
                        v.record.crawl.as_str().to_string(),
                        v.record.domain.clone(),
                        v.record.os.name().to_string(),
                    );
                    let n = finals.entry(key).or_insert(0);
                    if *n > 0 {
                        report.duplicate_finals += 1;
                    }
                    *n += 1;
                }
            }
            FrameBody::Checkpoint(cp) => {
                report.checkpoints += 1;
                let listed: std::collections::BTreeSet<&str> =
                    cp.completed.iter().map(|s| s.as_str()).collect();
                let mut seen_here = 0usize;
                for ((crawl, domain, os), _) in finals.iter() {
                    if crawl == &cp.crawl && os == &cp.os {
                        if listed.contains(domain.as_str()) {
                            seen_here += 1;
                        } else {
                            report.orphan_records += 1;
                        }
                    }
                }
                report.missing_records += cp.completed.len().saturating_sub(seen_here);
            }
            _ => {}
        }
    }
    if options.repair {
        let tmp = path.with_extension("ktj.tmp");
        {
            let mut out = File::create(&tmp)?;
            out.write_all(JOURNAL_MAGIC)?;
            for frame in &scan.frames {
                out.write_all(&data[frame.start as usize..frame.end as usize])?;
            }
            out.sync_all()?;
        }
        let damaged: u64 = report.corrupt_bytes + report.tail_bytes;
        if damaged > 0 {
            let qpath = path.with_extension("ktj.quarantine");
            let mut q = File::create(&qpath)?;
            for (s, e) in &scan.corrupt_spans {
                q.write_all(&data[*s as usize..*e as usize])?;
            }
            if scan.truncated_tail {
                q.write_all(&data[scan.valid_end as usize..])?;
            }
            q.sync_all()?;
            report.quarantined_bytes = damaged;
            report.quarantine_path = Some(qpath);
        }
        if options.kill_before_rename {
            // Crash boundary: fsynced tmp exists, original untouched.
            return Ok(report);
        }
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path)?;
        report.repaired = true;
        report.repaired_path = Some(path.to_path_buf());
    }
    Ok(report)
}

/// fsync a file's parent directory so a rename survives power loss.
pub(crate) fn sync_parent_dir(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        // Directories can be opened read-only for fsync on POSIX;
        // failure is non-fatal on filesystems that refuse it.
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// True when `path` starts with the journal magic (used by readers
/// that accept either a KTSTORE1 snapshot or a KTSTORE2 journal).
pub fn is_journal(path: &Path) -> bool {
    let mut magic = [0u8; 8];
    File::open(path)
        .and_then(|mut f| f.read_exact(&mut magic))
        .map(|_| &magic == JOURNAL_MAGIC)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CrawlId, LoadOutcome};
    use kt_netbase::Os;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("kt-journal-{name}-{}", std::process::id()))
    }

    fn sample_record(i: usize, os: Os) -> VisitRecord {
        VisitRecord {
            crawl: CrawlId::top2020(),
            domain: format!("site{i}.example"),
            rank: Some(i as u32 + 1),
            malicious_category: None,
            os,
            outcome: LoadOutcome::Success,
            loaded_at_ms: 1_000 + i as u64,
            events: Vec::new(),
        }
    }

    fn sample_delta(i: usize) -> VisitDelta {
        VisitDelta {
            cost_ms: 21_000 + i as u64,
            attempted: 1,
            successful: 1,
            retries: (i % 3) as u64,
            failures: if i.is_multiple_of(4) {
                vec![(-105, 1), (-102, 2)]
            } else {
                Vec::new()
            },
            ..VisitDelta::default()
        }
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32_bytewise(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn sliced_crc_matches_the_bytewise_reference_at_every_length() {
        // Deterministic pseudo-random payload; every length 0..=257
        // exercises all chunk remainders around the 8-byte word size.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let data: Vec<u8> = (0..257)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        for len in 0..=data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "sliced and bytewise CRC diverge at len {len}"
            );
        }
    }

    #[test]
    fn group_commit_buffers_frames_until_sync_then_matches_stats() {
        let path = tmp("groupbuf");
        let w = JournalWriter::create_with(
            &path,
            JournalConfig {
                group_max_frames: 1_000,
                group_max_bytes: usize::MAX,
                ..JournalConfig::default()
            },
        )
        .unwrap();
        for i in 0..10 {
            w.append_visit(
                &sample_record(i, Os::Linux),
                &sample_delta(i),
                FLAG_FINAL,
                false,
            );
        }
        // Nothing but the magic has reached the file yet.
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            JOURNAL_MAGIC.len() as u64,
            "frames are buffered, not written"
        );
        assert_eq!(w.stats().frames, 10, "logical appends counted");
        w.sync();
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            w.stats().bytes,
            "sync drains the group buffer"
        );
        let stats = w.stats();
        assert_eq!(stats.group_commits, 1, "one batched write for the group");
        assert_eq!(stats.grouped_frames, 10);
        assert!(stats.frames_per_fsync() > 1.0);
        let report = replay(&path).unwrap();
        assert_eq!(report.visits.len(), 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_file_is_byte_identical_to_the_unbatched_writer() {
        let grouped = tmp("group-eq-a");
        let unbatched = tmp("group-eq-b");
        for (path, config) in [
            (&grouped, JournalConfig::default()),
            (&unbatched, JournalConfig::unbatched()),
        ] {
            let w = JournalWriter::create_with(path, config).unwrap();
            w.append_meta(&JournalMeta {
                seed: 7,
                top_size: 100,
                malicious_size: 40,
                workers: 4,
            });
            for i in 0..40 {
                w.append_visit(
                    &sample_record(i, Os::ALL[i % 3]),
                    &sample_delta(i),
                    FLAG_FINAL,
                    false,
                );
            }
            w.append_checkpoint(&CheckpointFrame {
                crawl: "top2020".into(),
                os: "Linux".into(),
                completed: (0..40).map(|i| format!("site{i}.example")).collect(),
                stats: vec![1, 2, 3],
            });
            w.sync();
        }
        assert_eq!(
            std::fs::read(&grouped).unwrap(),
            std::fs::read(&unbatched).unwrap(),
            "group commit changes syscalls, never bytes"
        );
        std::fs::remove_file(&grouped).ok();
        std::fs::remove_file(&unbatched).ok();
    }

    #[test]
    fn kill_with_buffered_frames_leaves_the_unbatched_writers_bytes() {
        // A kill while frames sit in the group buffer must leave the
        // exact on-disk state the unbatched writer would: every prior
        // frame complete, the kill frame torn (or whole, PostFrame).
        for mode in [KillMode::MidFrame, KillMode::PostFrame] {
            let grouped = tmp(&format!("group-kill-a-{mode:?}"));
            let unbatched = tmp(&format!("group-kill-b-{mode:?}"));
            for (path, config) in [
                (&grouped, JournalConfig::default()),
                (&unbatched, JournalConfig::unbatched()),
            ] {
                let w = JournalWriter::create_with(path, config).unwrap();
                w.set_kill(Some(KillSpec { at_frame: 7, mode }));
                for i in 0..12 {
                    w.append_visit(
                        &sample_record(i, Os::Linux),
                        &sample_delta(i),
                        FLAG_FINAL,
                        false,
                    );
                }
                assert!(w.killed(), "kill fired with frames in flight");
            }
            assert_eq!(
                std::fs::read(&grouped).unwrap(),
                std::fs::read(&unbatched).unwrap(),
                "kill boundary bytes diverge in {mode:?}"
            );
            let report = replay(&grouped).unwrap();
            let expected = if mode == KillMode::PostFrame { 8 } else { 7 };
            assert_eq!(report.visits.len(), expected);
            std::fs::remove_file(&grouped).ok();
            std::fs::remove_file(&unbatched).ok();
        }
    }

    #[test]
    fn dropping_a_live_writer_drains_the_group_buffer() {
        let path = tmp("group-drop");
        let w = JournalWriter::create_with(
            &path,
            JournalConfig {
                group_max_frames: 1_000,
                group_max_bytes: usize::MAX,
                ..JournalConfig::default()
            },
        )
        .unwrap();
        for i in 0..5 {
            w.append_visit(
                &sample_record(i, Os::Linux),
                &sample_delta(i),
                FLAG_FINAL,
                false,
            );
        }
        drop(w);
        let report = replay(&path).unwrap();
        assert_eq!(report.visits.len(), 5, "drop flushed the buffer");
        assert!(!report.truncated_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_cadence_is_configurable() {
        let path = tmp("cadence");
        let w = JournalWriter::create_with(
            &path,
            JournalConfig {
                flush_every_bytes: 1_024,
                ..JournalConfig::default()
            },
        )
        .unwrap();
        let mut i = 0;
        while w.stats().bytes < 4_096 {
            w.append_visit(
                &sample_record(i, Os::Linux),
                &sample_delta(i),
                FLAG_FINAL,
                false,
            );
            i += 1;
        }
        assert!(
            w.stats().flush_points >= 2,
            "a 1 KiB cadence flushes a 4 KiB journal repeatedly, got {:?}",
            w.stats()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_round_trips_visits_checkpoints_and_meta() {
        let path = tmp("roundtrip");
        let w = JournalWriter::create(&path).unwrap();
        w.append_meta(&JournalMeta {
            seed: 7,
            top_size: 100,
            malicious_size: 40,
            workers: 4,
        });
        for i in 0..25 {
            w.append_visit(
                &sample_record(i, Os::ALL[i % 3]),
                &sample_delta(i),
                FLAG_FINAL,
                false,
            );
        }
        w.append_checkpoint(&CheckpointFrame {
            crawl: "top2020".into(),
            os: "Linux".into(),
            completed: (0..25).map(|i| format!("site{i}.example")).collect(),
            stats: vec![1, 2, 3],
        });
        w.sync();
        let report = replay(&path).unwrap();
        assert_eq!(report.visits.len(), 25);
        assert_eq!(report.checkpoints.len(), 1);
        assert_eq!(report.meta.unwrap().seed, 7);
        assert_eq!(report.duplicate_finals, 0);
        assert_eq!(report.corrupt_frames, 0);
        assert!(!report.truncated_tail);
        assert_eq!(report.visits[3].delta, sample_delta(3));
        assert_eq!(report.visits[3].record, sample_record(3, Os::ALL[0]));
        assert_eq!(report.store.len(), 25);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_dedupes_duplicate_final_frames() {
        let path = tmp("dedupe");
        let w = JournalWriter::create(&path).unwrap();
        let rec = sample_record(1, Os::Linux);
        w.append_visit(&rec, &sample_delta(1), FLAG_FINAL, false);
        w.append_visit(&rec, &sample_delta(1), FLAG_FINAL, false);
        w.append_visit(&rec, &sample_delta(1), FLAG_FINAL, false);
        w.sync();
        let report = replay(&path).unwrap();
        assert_eq!(report.visits.len(), 3, "frames are all there");
        assert_eq!(report.duplicate_finals, 2, "two are crash duplicates");
        assert_eq!(report.store.len(), 1, "the store keeps one (idempotent)");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_frame_kill_leaves_a_repairable_torn_tail() {
        let path = tmp("midframe");
        let w = JournalWriter::create(&path).unwrap();
        for i in 0..10 {
            w.append_visit(
                &sample_record(i, Os::Linux),
                &sample_delta(i),
                FLAG_FINAL,
                false,
            );
        }
        w.set_kill(Some(KillSpec {
            at_frame: 10,
            mode: KillMode::MidFrame,
        }));
        w.append_visit(
            &sample_record(10, Os::Linux),
            &sample_delta(10),
            FLAG_FINAL,
            false,
        );
        assert!(w.killed());
        // Appends after death are silently dropped, like a dead process.
        w.append_visit(
            &sample_record(11, Os::Linux),
            &sample_delta(11),
            FLAG_FINAL,
            false,
        );
        let report = replay(&path).unwrap();
        assert_eq!(
            report.visits.len(),
            10,
            "torn frame 10 is lost, 0..9 survive"
        );
        assert!(report.truncated_tail);
        // open_append truncates the torn tail and appending resumes.
        let w2 = JournalWriter::open_append(&path).unwrap();
        w2.append_visit(
            &sample_record(10, Os::Linux),
            &sample_delta(10),
            FLAG_FINAL,
            false,
        );
        w2.sync();
        let report = replay(&path).unwrap();
        assert_eq!(report.visits.len(), 11);
        assert!(!report.truncated_tail);
        assert_eq!(report.corrupt_frames, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn post_frame_kill_keeps_the_frame() {
        let path = tmp("postframe");
        let w = JournalWriter::create(&path).unwrap();
        w.set_kill(Some(KillSpec {
            at_frame: 1,
            mode: KillMode::PostFrame,
        }));
        w.append_visit(
            &sample_record(0, Os::Linux),
            &sample_delta(0),
            FLAG_FINAL,
            false,
        );
        w.append_visit(
            &sample_record(1, Os::Linux),
            &sample_delta(1),
            FLAG_FINAL,
            false,
        );
        assert!(w.killed());
        let report = replay(&path).unwrap();
        assert_eq!(report.visits.len(), 2, "the kill frame itself is durable");
        assert!(!report.truncated_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scanner_resyncs_past_interior_corruption() {
        let path = tmp("resync");
        let w = JournalWriter::create(&path).unwrap();
        for i in 0..20 {
            w.append_visit(
                &sample_record(i, Os::Linux),
                &sample_delta(i),
                FLAG_FINAL,
                false,
            );
        }
        w.sync();
        let mut data = std::fs::read(&path).unwrap();
        // Smash 10 bytes in the middle of the file.
        let mid = data.len() / 2;
        for b in &mut data[mid..mid + 10] {
            *b ^= 0x5A;
        }
        std::fs::write(&path, &data).unwrap();
        let report = replay(&path).unwrap();
        assert!(report.corrupt_frames >= 1, "damage detected");
        assert!(
            report.visits.len() >= 18,
            "at most two frames lost to a 10-byte smash, got {}",
            report.visits.len()
        );
        assert!(!report.visits.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_length_field_is_corrupt_not_an_allocation() {
        let path = tmp("hugelen");
        let w = JournalWriter::create(&path).unwrap();
        w.append_visit(
            &sample_record(0, Os::Linux),
            &sample_delta(0),
            FLAG_FINAL,
            false,
        );
        w.sync();
        let mut data = std::fs::read(&path).unwrap();
        // Corrupt the length field of frame 0 to 0xFFFF_FFFF.
        let off = JOURNAL_MAGIC.len() + 3;
        data[off..off + 4].copy_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        let report = replay(&path).unwrap();
        assert_eq!(report.visits.len(), 0);
        assert!(report.corrupt_frames >= 1 || report.truncated_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsck_detects_and_repairs_damage() {
        let path = tmp("fsck");
        let w = JournalWriter::create(&path).unwrap();
        let rec = sample_record(7, Os::Linux);
        for i in 0..12 {
            w.append_visit(
                &sample_record(i, Os::Linux),
                &sample_delta(i),
                FLAG_FINAL,
                false,
            );
        }
        // A crash duplicate.
        w.append_visit(&rec, &sample_delta(7), FLAG_FINAL, false);
        w.sync();
        let clean_len = std::fs::read(&path).unwrap().len();
        let mut data = std::fs::read(&path).unwrap();
        let mid = clean_len / 3;
        for b in &mut data[mid..mid + 6] {
            *b = 0;
        }
        data.extend_from_slice(&[SYNC[0], SYNC[1], kind::VISIT, 200, 0, 0, 0, 1, 2, 3]);
        std::fs::write(&path, &data).unwrap();
        let report = fsck(&path, FsckOptions::default()).unwrap();
        assert!(!report.clean());
        assert!(report.corrupt_frames >= 1);
        assert!(report.truncated_tail);
        assert!(report.duplicate_finals >= 1);
        assert!(!report.repaired);
        // Now repair: rewritten journal scans clean, damage quarantined.
        let report = fsck(
            &path,
            FsckOptions {
                repair: true,
                ..FsckOptions::default()
            },
        )
        .unwrap();
        assert!(report.repaired);
        assert!(report.quarantined_bytes > 0);
        let qpath = report.quarantine_path.clone().unwrap();
        assert!(qpath.exists());
        let after = fsck(&path, FsckOptions::default()).unwrap();
        assert_eq!(after.corrupt_frames, 0);
        assert!(!after.truncated_tail);
        assert_eq!(after.visits, report.visits);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&qpath).ok();
    }

    #[test]
    fn fsck_cross_checks_checkpoints_for_orphans_and_missing() {
        let path = tmp("orphan");
        let w = JournalWriter::create(&path).unwrap();
        w.append_visit(
            &sample_record(0, Os::Linux),
            &sample_delta(0),
            FLAG_FINAL,
            false,
        );
        w.append_visit(
            &sample_record(1, Os::Linux),
            &sample_delta(1),
            FLAG_FINAL,
            false,
        );
        w.append_checkpoint(&CheckpointFrame {
            crawl: "top2020".into(),
            os: "Linux".into(),
            // site0 listed; site1's frame is an orphan; siteX is
            // claimed but has no frame (missing).
            completed: vec!["site0.example".into(), "siteX.example".into()],
            stats: Vec::new(),
        });
        let report = fsck(&path, FsckOptions::default()).unwrap();
        assert_eq!(report.orphan_records, 1);
        assert_eq!(report.missing_records, 1);
        assert!(!report.clean());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsck_kill_before_rename_leaves_both_files() {
        let path = tmp("midrename");
        let w = JournalWriter::create(&path).unwrap();
        w.append_visit(
            &sample_record(0, Os::Linux),
            &sample_delta(0),
            FLAG_FINAL,
            false,
        );
        w.sync();
        // Torn tail to make the repair do something.
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(&[SYNC[0], SYNC[1], kind::VISIT, 50]);
        std::fs::write(&path, &data).unwrap();
        let before = std::fs::read(&path).unwrap();
        let report = fsck(
            &path,
            FsckOptions {
                repair: true,
                kill_before_rename: true,
            },
        )
        .unwrap();
        assert!(!report.repaired, "rename never happened");
        let tmp_path = path.with_extension("ktj.tmp");
        assert!(tmp_path.exists(), "fsynced tmp survives the crash");
        assert_eq!(std::fs::read(&path).unwrap(), before, "original untouched");
        // Recovery after the simulated crash: run fsck again.
        let report = fsck(
            &path,
            FsckOptions {
                repair: true,
                ..FsckOptions::default()
            },
        )
        .unwrap();
        assert!(report.repaired);
        assert!(fsck(&path, FsckOptions::default()).unwrap().clean());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&tmp_path).ok();
        std::fs::remove_file(path.with_extension("ktj.quarantine")).ok();
    }

    #[test]
    fn empty_journal_is_valid() {
        let path = tmp("empty");
        let w = JournalWriter::create(&path).unwrap();
        drop(w);
        let report = replay(&path).unwrap();
        assert!(report.visits.is_empty());
        assert!(!report.truncated_tail);
        assert!(fsck(&path, FsckOptions::default()).unwrap().clean());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_journal_files_are_rejected_not_parsed() {
        let path = tmp("notajournal");
        std::fs::write(&path, b"KTSTORE1not-a-journal").unwrap();
        assert!(matches!(replay(&path), Err(JournalError::BadMagic)));
        assert!(!is_journal(&path));
        std::fs::write(&path, JOURNAL_MAGIC).unwrap();
        assert!(is_journal(&path));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_points_appear_after_enough_visit_bytes() {
        let path = tmp("flush");
        let w = JournalWriter::create(&path).unwrap();
        // Events make records big enough to cross FLUSH_EVERY quickly.
        let mut rec = sample_record(0, Os::Linux);
        rec.events = Vec::new();
        let big_domain = "x".repeat(4096);
        let mut total = 0u64;
        let mut i = 0;
        while total < FLUSH_EVERY + 4096 {
            let mut r = rec.clone();
            r.domain = format!("{big_domain}{i}");
            w.append_visit(&r, &sample_delta(i as usize), FLAG_FINAL, false);
            total = w.stats().bytes;
            i += 1;
        }
        assert!(w.stats().flush_points >= 1, "a flush point sealed the run");
        let report = replay(&path).unwrap();
        assert!(report.flush_points >= 1);
        std::fs::remove_file(&path).ok();
    }
}
