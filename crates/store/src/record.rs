//! Visit records: the unit the store holds.

use kt_netbase::Os;
use kt_netlog::{NetError, NetLogEvent};
use serde::{Deserialize, Serialize};

/// Identifies one crawl campaign (e.g. `top2020`, `top2021`,
/// `malicious`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CrawlId(pub String);

impl CrawlId {
    /// The 2020 top-100K crawl.
    pub fn top2020() -> CrawlId {
        CrawlId("top2020".to_string())
    }

    /// The 2021 top-100K crawl.
    pub fn top2021() -> CrawlId {
        CrawlId("top2021".to_string())
    }

    /// The malicious-webpage crawl.
    pub fn malicious() -> CrawlId {
        CrawlId("malicious".to_string())
    }

    /// The identifier string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Landing-page load outcome (drives Table 1 / Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadOutcome {
    /// The page loaded.
    Success,
    /// The page failed with this Chrome net error.
    Error(NetError),
    /// The visit crashed the browser/worker and was quarantined; the
    /// record's events are the salvaged capture prefix. A measurement
    /// artifact, not a website failure — excluded from Table 1's
    /// error columns.
    Crashed,
}

impl LoadOutcome {
    /// True for successful loads.
    pub fn is_success(self) -> bool {
        self == LoadOutcome::Success
    }

    /// True for quarantined (crashed) visits.
    pub fn is_crashed(self) -> bool {
        self == LoadOutcome::Crashed
    }
}

/// One page visit: the paper's unit of telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisitRecord {
    /// Which crawl campaign this visit belongs to.
    pub crawl: CrawlId,
    /// The visited domain.
    pub domain: String,
    /// Tranco rank, for top-list crawls.
    pub rank: Option<u32>,
    /// Malicious blocklist category code (0 = malware, 1 = abuse,
    /// 2 = phishing), for the malicious crawl.
    pub malicious_category: Option<u8>,
    /// The crawling OS.
    pub os: Os,
    /// Landing-page outcome.
    pub outcome: LoadOutcome,
    /// Time at which the landing page finished loading, ms (0 when the
    /// load failed).
    pub loaded_at_ms: u64,
    /// The visit's NetLog events.
    pub events: Vec<NetLogEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crawl_ids() {
        assert_eq!(CrawlId::top2020().as_str(), "top2020");
        assert_eq!(CrawlId::top2021().as_str(), "top2021");
        assert_eq!(CrawlId::malicious().as_str(), "malicious");
    }

    #[test]
    fn outcome_predicate() {
        assert!(LoadOutcome::Success.is_success());
        assert!(!LoadOutcome::Error(NetError::NameNotResolved).is_success());
        assert!(!LoadOutcome::Crashed.is_success());
        assert!(LoadOutcome::Crashed.is_crashed());
        assert!(!LoadOutcome::Error(NetError::TimedOut).is_crashed());
    }
}
