//! Memory-mapped sealed segments.
//!
//! A sealed store segment is immutable by construction, which makes it
//! the perfect mmap candidate: spill the bytes to a segment file once,
//! map the file read-only, and hand the mapping to the existing
//! zero-copy [`Bytes`] read API via `Bytes::from_owner`. Decoders
//! slice straight out of the page cache; the heap never holds the
//! segment again, so a campaign larger than RAM streams from disk at
//! flat resident set.
//!
//! The repo vendors no `libc` crate, so the two syscalls are declared
//! directly — `std` already links the platform C library on every unix
//! target. Platforms (or tests) that want deterministic heap-only
//! behavior use [`SegmentMode::Resident`], which reads the file back
//! into an ordinary buffer; both modes serve identical bytes, which
//! the `spill` test suite property-pins.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;

/// How a spilled segment is read back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentMode {
    /// `mmap` the segment file (zero heap, kernel-managed paging).
    /// Falls back to [`SegmentMode::Resident`] on platforms without
    /// the mapping support below.
    Mmap,
    /// Read the segment file into a heap buffer.
    Resident,
}

impl SegmentMode {
    /// Parse a CLI-style mode name.
    pub fn parse(s: &str) -> Option<SegmentMode> {
        match s {
            "mmap" => Some(SegmentMode::Mmap),
            "resident" => Some(SegmentMode::Resident),
            _ => None,
        }
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// A read-only memory mapping of one sealed segment file. Owns the
/// mapping: `munmap` on drop. Handed to `Bytes::from_owner`, which
/// keeps it alive behind an `Arc` for as long as any slice of the
/// segment is referenced anywhere in the pipeline.
#[cfg(all(unix, target_pointer_width = "64"))]
pub struct SegmentMap {
    ptr: *mut std::ffi::c_void,
    len: usize,
}

#[cfg(all(unix, target_pointer_width = "64"))]
// SAFETY: the mapping is read-only (PROT_READ, MAP_PRIVATE) and valid
// until munmap in Drop.
unsafe impl Send for SegmentMap {}
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Sync for SegmentMap {}

#[cfg(all(unix, target_pointer_width = "64"))]
impl SegmentMap {
    /// Map `file` read-only in full.
    pub fn map(file: &File) -> io::Result<SegmentMap> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Ok(SegmentMap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(SegmentMap { ptr, len })
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length mapping.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl AsRef<[u8]> for SegmentMap {
    fn as_ref(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr..ptr+len is the live PROT_READ mapping.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl Drop for SegmentMap {
    fn drop(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: ptr/len came from a successful mmap.
            unsafe {
                sys::munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
fn map_file(path: &Path) -> io::Result<Bytes> {
    let file = File::open(path)?;
    Ok(Bytes::from_owner(SegmentMap::map(&file)?))
}

#[cfg(not(all(unix, target_pointer_width = "64")))]
fn map_file(path: &Path) -> io::Result<Bytes> {
    // No mapping support: explicit resident fallback.
    read_file(path)
}

fn read_file(path: &Path) -> io::Result<Bytes> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    Ok(Bytes::from(buf))
}

/// Load a spilled segment file in the requested mode.
pub fn load_segment(path: &Path, mode: SegmentMode) -> io::Result<Bytes> {
    match mode {
        SegmentMode::Mmap => map_file(path),
        SegmentMode::Resident => read_file(path),
    }
}

/// Where (and how) a store spills sealed segments.
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Directory for segment files (created if missing).
    pub dir: PathBuf,
    /// Read-back mode for spilled segments.
    pub mode: SegmentMode,
    /// Per-shard active-buffer size that triggers a seal+spill;
    /// `None` uses the store's default segment target. Benches lower
    /// it to exercise the spill path at reduced populations.
    pub segment_target: Option<usize>,
}

impl SpillConfig {
    /// Spill under `dir`, memory-mapping segments back.
    pub fn mmap(dir: impl Into<PathBuf>) -> SpillConfig {
        SpillConfig {
            dir: dir.into(),
            mode: SegmentMode::Mmap,
            segment_target: None,
        }
    }

    /// Spill under `dir`, reading segments back into heap buffers.
    pub fn resident(dir: impl Into<PathBuf>) -> SpillConfig {
        SpillConfig {
            dir: dir.into(),
            mode: SegmentMode::Resident,
            segment_target: None,
        }
    }

    /// Override the per-shard seal threshold.
    pub fn with_segment_target(mut self, bytes: usize) -> SpillConfig {
        self.segment_target = Some(bytes);
        self
    }
}

/// Per-shard spill state: writes sealed buffers to numbered segment
/// files and loads them back in the configured mode.
#[derive(Debug, Clone)]
pub(crate) struct ShardSpill {
    pub(crate) dir: PathBuf,
    pub(crate) shard: usize,
    pub(crate) mode: SegmentMode,
}

impl ShardSpill {
    /// Spill one sealed buffer, returning the loaded segment. Any I/O
    /// failure degrades to keeping the buffer resident — spilling is a
    /// memory optimization, never a correctness requirement (the
    /// journal owns durability).
    pub(crate) fn spill(&self, seg: usize, buf: Vec<u8>) -> (Bytes, bool) {
        match self.try_spill(seg, &buf) {
            Ok(bytes) => (bytes, true),
            Err(_) => (Bytes::from(buf), false),
        }
    }

    fn try_spill(&self, seg: usize, buf: &[u8]) -> io::Result<Bytes> {
        let path = self.segment_path(seg);
        {
            let mut file = File::create(&path)?;
            file.write_all(buf)?;
        }
        let loaded = load_segment(&path, self.mode)?;
        if loaded.as_ref() != buf {
            // A short write or concurrent truncation: don't serve it.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "spilled segment read back differently",
            ));
        }
        Ok(loaded)
    }

    fn segment_path(&self, seg: usize) -> PathBuf {
        self.dir
            .join(format!("shard-{:02}-seg-{:04}.ktseg", self.shard, seg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kt-segment-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn mmap_and_resident_serve_identical_bytes() {
        let dir = tmp_dir("modes");
        let path = dir.join("seg.ktseg");
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::write(&path, &data).unwrap();
        let mapped = load_segment(&path, SegmentMode::Mmap).unwrap();
        let resident = load_segment(&path, SegmentMode::Resident).unwrap();
        assert_eq!(mapped.as_ref(), &data[..]);
        assert_eq!(resident.as_ref(), &data[..]);
        assert_eq!(mapped, resident);
        // Slices of the mapping behave like any other Bytes view.
        assert_eq!(mapped.slice(4..8), resident.slice(4..8));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_segment_files_map_cleanly() {
        let dir = tmp_dir("empty");
        let path = dir.join("seg.ktseg");
        std::fs::write(&path, b"").unwrap();
        for mode in [SegmentMode::Mmap, SegmentMode::Resident] {
            let bytes = load_segment(&path, mode).unwrap();
            assert!(bytes.is_empty(), "{mode:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mapping_outlives_the_loader_scope() {
        let dir = tmp_dir("outlive");
        let path = dir.join("seg.ktseg");
        std::fs::write(&path, vec![7u8; 4096]).unwrap();
        let slice = {
            let whole = load_segment(&path, SegmentMode::Mmap).unwrap();
            whole.slice(100..200)
        };
        assert!(slice.iter().all(|&b| b == 7), "owner kept alive by slice");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_round_trips_and_reports_success() {
        let dir = tmp_dir("spill");
        let spill = ShardSpill {
            dir: dir.clone(),
            shard: 3,
            mode: SegmentMode::Mmap,
        };
        let buf: Vec<u8> = (0..255u8).cycle().take(100_000).collect();
        let (bytes, spilled) = spill.spill(0, buf.clone());
        assert!(spilled);
        assert_eq!(bytes.as_ref(), &buf[..]);
        assert!(spill.segment_path(0).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_failure_degrades_to_resident() {
        let spill = ShardSpill {
            dir: PathBuf::from("/nonexistent-kt-spill-dir/nested"),
            shard: 0,
            mode: SegmentMode::Mmap,
        };
        let buf = vec![42u8; 1024];
        let (bytes, spilled) = spill.spill(0, buf.clone());
        assert!(!spilled, "unwritable dir cannot spill");
        assert_eq!(bytes.as_ref(), &buf[..], "buffer kept resident");
    }

    #[test]
    fn segment_mode_parses_cli_names() {
        assert_eq!(SegmentMode::parse("mmap"), Some(SegmentMode::Mmap));
        assert_eq!(SegmentMode::parse("resident"), Some(SegmentMode::Resident));
        assert_eq!(SegmentMode::parse("other"), None);
    }
}
