//! Compact binary codec for visit records.
//!
//! Layout (all integers LEB128 varints unless noted):
//!
//! ```text
//! record   = magic(u16 LE = 0x4B54) version(u8 = 1)
//!            crawl(str) domain(str) rank(opt-varint)
//!            mal_category(opt-u8) os(u8) outcome(tag u8, err varint-i32)
//!            loaded_at(varint) event_count(varint) event*
//! event    = time(varint) type(u8) source_id(varint) source_type(u8)
//!            phase(u8) params
//! params   = tag(u8) fields…     (strings are varint-length-prefixed)
//! str      = len(varint) utf8-bytes
//! ```
//!
//! At crawl scale this matters: a JSON NetLog event averages ~180
//! bytes; this codec stores the common events in 8–40.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use kt_netbase::Os;
use kt_netlog::{
    EventParams, EventPhase, EventType, EventView, NetLogEvent, ParamsView, SourceRef, SourceType,
};

use crate::record::{CrawlId, LoadOutcome, VisitRecord};

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported version byte.
    BadVersion(u8),
    /// Ran out of input mid-record.
    Truncated,
    /// An enum tag was out of range.
    BadTag(&'static str, u64),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "bad record magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported record version {v}"),
            CodecError::Truncated => write!(f, "truncated record"),
            CodecError::BadTag(what, v) => write!(f, "bad {what} tag: {v}"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in record string"),
        }
    }
}

impl std::error::Error for CodecError {}

const MAGIC: u16 = 0x4B54; // "KT"
const VERSION: u8 = 1;

pub(crate) fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

pub(crate) fn get_varint(buf: &mut Bytes) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        if !buf.has_remaining() {
            return Err(CodecError::Truncated);
        }
        let byte = buf.get_u8();
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(CodecError::BadTag("varint", v));
        }
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, CodecError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(CodecError::Truncated);
    }
    // Validate in place on the buffer slice, then copy once into the
    // String (the old copy_to_bytes(..).to_vec() paid an extra copy
    // and a refcount bump).
    let s = match std::str::from_utf8(&buf[..len]) {
        Ok(s) => s.to_string(),
        Err(_) => return Err(CodecError::BadUtf8),
    };
    buf.advance(len);
    Ok(s)
}

fn os_code(os: Os) -> u8 {
    match os {
        Os::Windows => 0,
        Os::Linux => 1,
        Os::MacOs => 2,
    }
}

fn os_from(code: u8) -> Result<Os, CodecError> {
    match code {
        0 => Ok(Os::Windows),
        1 => Ok(Os::Linux),
        2 => Ok(Os::MacOs),
        v => Err(CodecError::BadTag("os", v as u64)),
    }
}

/// Zig-zag encoding for the signed net-error codes.
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_params(buf: &mut BytesMut, params: &EventParams) {
    match params {
        EventParams::None => buf.put_u8(0),
        EventParams::UrlRequestStart {
            url,
            method,
            initiator,
            load_flags,
        } => {
            buf.put_u8(1);
            put_str(buf, url);
            put_str(buf, method);
            match initiator {
                Some(i) => {
                    buf.put_u8(1);
                    put_str(buf, i);
                }
                None => buf.put_u8(0),
            }
            put_varint(buf, *load_flags as u64);
        }
        EventParams::Redirect { location } => {
            buf.put_u8(2);
            put_str(buf, location);
        }
        EventParams::DnsJob { host } => {
            buf.put_u8(3);
            put_str(buf, host);
        }
        EventParams::Connect { address } => {
            buf.put_u8(4);
            put_str(buf, address);
        }
        EventParams::Ssl { host } => {
            buf.put_u8(5);
            put_str(buf, host);
        }
        EventParams::ResponseHeaders { status } => {
            buf.put_u8(6);
            put_varint(buf, *status as u64);
        }
        EventParams::WebSocket { url } => {
            buf.put_u8(7);
            put_str(buf, url);
        }
        EventParams::WebSocketFrame { length } => {
            buf.put_u8(8);
            put_varint(buf, *length);
        }
        EventParams::Failed { net_error } => {
            buf.put_u8(9);
            put_varint(buf, zigzag(*net_error as i64));
        }
        EventParams::IceCandidate {
            address,
            candidate_type,
        } => {
            buf.put_u8(10);
            put_str(buf, address);
            put_str(buf, candidate_type);
        }
    }
}

fn get_params(buf: &mut Bytes) -> Result<EventParams, CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::Truncated);
    }
    match buf.get_u8() {
        0 => Ok(EventParams::None),
        1 => {
            let url = get_str(buf)?;
            let method = get_str(buf)?;
            let initiator = if buf.has_remaining() && buf.get_u8() == 1 {
                Some(get_str(buf)?)
            } else {
                None
            };
            let load_flags = get_varint(buf)? as u32;
            Ok(EventParams::UrlRequestStart {
                url,
                method,
                initiator,
                load_flags,
            })
        }
        2 => Ok(EventParams::Redirect {
            location: get_str(buf)?,
        }),
        3 => Ok(EventParams::DnsJob {
            host: get_str(buf)?,
        }),
        4 => Ok(EventParams::Connect {
            address: get_str(buf)?,
        }),
        5 => Ok(EventParams::Ssl {
            host: get_str(buf)?,
        }),
        6 => Ok(EventParams::ResponseHeaders {
            status: get_varint(buf)? as u16,
        }),
        7 => Ok(EventParams::WebSocket { url: get_str(buf)? }),
        8 => Ok(EventParams::WebSocketFrame {
            length: get_varint(buf)?,
        }),
        9 => Ok(EventParams::Failed {
            net_error: unzigzag(get_varint(buf)?) as i32,
        }),
        10 => Ok(EventParams::IceCandidate {
            address: get_str(buf)?,
            candidate_type: get_str(buf)?,
        }),
        v => Err(CodecError::BadTag("params", v as u64)),
    }
}

/// Encode one record.
pub fn encode(record: &VisitRecord) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + record.events.len() * 24);
    buf.put_u16_le(MAGIC);
    buf.put_u8(VERSION);
    put_str(&mut buf, record.crawl.as_str());
    put_str(&mut buf, &record.domain);
    match record.rank {
        Some(r) => {
            buf.put_u8(1);
            put_varint(&mut buf, r as u64);
        }
        None => buf.put_u8(0),
    }
    match record.malicious_category {
        Some(c) => {
            buf.put_u8(1);
            buf.put_u8(c);
        }
        None => buf.put_u8(0),
    }
    buf.put_u8(os_code(record.os));
    match record.outcome {
        LoadOutcome::Success => buf.put_u8(0),
        LoadOutcome::Error(err) => {
            buf.put_u8(1);
            put_varint(&mut buf, zigzag(err.code() as i64));
        }
        LoadOutcome::Crashed => buf.put_u8(2),
    }
    put_varint(&mut buf, record.loaded_at_ms);
    put_varint(&mut buf, record.events.len() as u64);
    for ev in &record.events {
        put_varint(&mut buf, ev.time);
        buf.put_u8(ev.event_type.code() as u8);
        put_varint(&mut buf, ev.source.id);
        buf.put_u8(ev.source.kind.code() as u8);
        buf.put_u8(ev.phase.code() as u8);
        put_params(&mut buf, &ev.params);
    }
    buf.freeze()
}

/// Decode one record.
pub fn decode(mut buf: Bytes) -> Result<VisitRecord, CodecError> {
    if buf.remaining() < 3 {
        return Err(CodecError::Truncated);
    }
    if buf.get_u16_le() != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let crawl = CrawlId(get_str(&mut buf)?);
    let domain = get_str(&mut buf)?;
    let rank = if buf.has_remaining() && buf.get_u8() == 1 {
        Some(get_varint(&mut buf)? as u32)
    } else {
        None
    };
    let malicious_category = if buf.has_remaining() && buf.get_u8() == 1 {
        if !buf.has_remaining() {
            return Err(CodecError::Truncated);
        }
        Some(buf.get_u8())
    } else {
        None
    };
    if !buf.has_remaining() {
        return Err(CodecError::Truncated);
    }
    let os = os_from(buf.get_u8())?;
    if !buf.has_remaining() {
        return Err(CodecError::Truncated);
    }
    let outcome = match buf.get_u8() {
        0 => LoadOutcome::Success,
        1 => {
            let code = unzigzag(get_varint(&mut buf)?) as i32;
            let err = kt_netlog::NetError::from_code(code)
                .ok_or(CodecError::BadTag("net_error", code as u64))?;
            LoadOutcome::Error(err)
        }
        2 => LoadOutcome::Crashed,
        v => return Err(CodecError::BadTag("outcome", v as u64)),
    };
    let loaded_at_ms = get_varint(&mut buf)?;
    let n = get_varint(&mut buf)? as usize;
    let mut events = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let time = get_varint(&mut buf)?;
        if buf.remaining() < 1 {
            return Err(CodecError::Truncated);
        }
        let ty = buf.get_u8();
        let event_type =
            EventType::from_code(ty as u32).ok_or(CodecError::BadTag("event_type", ty as u64))?;
        let id = get_varint(&mut buf)?;
        if buf.remaining() < 2 {
            return Err(CodecError::Truncated);
        }
        let st = buf.get_u8();
        let kind =
            SourceType::from_code(st as u32).ok_or(CodecError::BadTag("source_type", st as u64))?;
        let ph = buf.get_u8();
        let phase =
            EventPhase::from_code(ph as u32).ok_or(CodecError::BadTag("phase", ph as u64))?;
        let params = get_params(&mut buf)?;
        events.push(NetLogEvent {
            time,
            event_type,
            source: SourceRef { id, kind },
            phase,
            params,
        });
    }
    Ok(VisitRecord {
        crawl,
        domain,
        rank,
        malicious_category,
        os,
        outcome,
        loaded_at_ms,
        events,
    })
}

/// Borrowed cursor over an encoded record: the read-side mirror of the
/// `Bytes`-based helpers above, but every string it yields is a slice
/// of the input rather than a fresh `String`.
///
/// Strings come out of [`Cursor::get_str_raw`] as *unvalidated* byte
/// spans; every span is also pushed onto `spans` so a single batched
/// UTF-8 pass can validate them all at once after the structural scan
/// (see [`decode_view`]). Keeping validation out of the field-by-field
/// hot loop lets `std::str::from_utf8` run slice-at-once per string in
/// one tight loop instead of interleaving with tag dispatch.
struct Cursor<'a> {
    buf: &'a [u8],
    spans: Vec<&'a [u8]>,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor {
            buf,
            spans: Vec::new(),
        }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn has_remaining(&self) -> bool {
        !self.buf.is_empty()
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.buf[0];
        self.buf = &self.buf[1..];
        b
    }

    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes([self.buf[0], self.buf[1]]);
        self.buf = &self.buf[2..];
        v
    }

    fn get_varint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            if !self.has_remaining() {
                return Err(CodecError::Truncated);
            }
            let byte = self.get_u8();
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(CodecError::BadTag("varint", v));
            }
        }
    }

    /// Validating string read: the byte-at-a-time reference that the
    /// batched path is property-pinned against.
    #[cfg(test)]
    fn get_str(&mut self) -> Result<&'a str, CodecError> {
        let raw = self.get_str_raw()?;
        self.spans.pop();
        std::str::from_utf8(raw).map_err(|_| CodecError::BadUtf8)
    }

    /// Length-prefixed string span, structural checks only. UTF-8
    /// validation is deferred to the batched pass over `spans`.
    fn get_str_raw(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_varint()? as usize;
        if self.remaining() < len {
            return Err(CodecError::Truncated);
        }
        let (head, rest) = self.buf.split_at(len);
        self.buf = rest;
        self.spans.push(head);
        Ok(head)
    }

    /// The batched UTF-8 pass: validate every span collected so far in
    /// one loop. Spans are in stream order, but the specific failing
    /// span does not matter — [`CodecError::BadUtf8`] carries no
    /// position, which is what makes deferring validation legal.
    fn validate_spans(&self) -> Result<(), CodecError> {
        for span in &self.spans {
            if std::str::from_utf8(span).is_err() {
                return Err(CodecError::BadUtf8);
            }
        }
        Ok(())
    }
}

/// `from_utf8_unchecked` with the codec's justification attached.
///
/// # Safety
///
/// `b` must be a span that already passed [`Cursor::validate_spans`].
unsafe fn utf8_unchecked(b: &[u8]) -> &str {
    std::str::from_utf8_unchecked(b)
}

/// Structural mirror of [`ParamsView`] with unvalidated string spans.
enum RawParams<'a> {
    None,
    UrlRequestStart {
        url: &'a [u8],
        method: &'a [u8],
        initiator: Option<&'a [u8]>,
        load_flags: u32,
    },
    Redirect {
        location: &'a [u8],
    },
    DnsJob {
        host: &'a [u8],
    },
    Connect {
        address: &'a [u8],
    },
    Ssl {
        host: &'a [u8],
    },
    ResponseHeaders {
        status: u16,
    },
    WebSocket {
        url: &'a [u8],
    },
    WebSocketFrame {
        length: u64,
    },
    Failed {
        net_error: i32,
    },
    IceCandidate {
        address: &'a [u8],
        candidate_type: &'a [u8],
    },
}

impl<'a> RawParams<'a> {
    /// Convert to the `&str`-typed view.
    ///
    /// # Safety
    ///
    /// Every span in `self` must have passed UTF-8 validation (they
    /// all live in the cursor's `spans` list, so one successful
    /// [`Cursor::validate_spans`] covers them).
    unsafe fn into_view(self) -> ParamsView<'a> {
        let s = |b: &'a [u8]| -> &'a str {
            // SAFETY: forwarded from this fn's contract.
            unsafe { utf8_unchecked(b) }
        };
        match self {
            RawParams::None => ParamsView::None,
            RawParams::UrlRequestStart {
                url,
                method,
                initiator,
                load_flags,
            } => ParamsView::UrlRequestStart {
                url: s(url),
                method: s(method),
                initiator: initiator.map(s),
                load_flags,
            },
            RawParams::Redirect { location } => ParamsView::Redirect {
                location: s(location),
            },
            RawParams::DnsJob { host } => ParamsView::DnsJob { host: s(host) },
            RawParams::Connect { address } => ParamsView::Connect {
                address: s(address),
            },
            RawParams::Ssl { host } => ParamsView::Ssl { host: s(host) },
            RawParams::ResponseHeaders { status } => ParamsView::ResponseHeaders { status },
            RawParams::WebSocket { url } => ParamsView::WebSocket { url: s(url) },
            RawParams::WebSocketFrame { length } => ParamsView::WebSocketFrame { length },
            RawParams::Failed { net_error } => ParamsView::Failed { net_error },
            RawParams::IceCandidate {
                address,
                candidate_type,
            } => ParamsView::IceCandidate {
                address: s(address),
                candidate_type: s(candidate_type),
            },
        }
    }
}

fn get_params_raw<'a>(c: &mut Cursor<'a>) -> Result<RawParams<'a>, CodecError> {
    if !c.has_remaining() {
        return Err(CodecError::Truncated);
    }
    match c.get_u8() {
        0 => Ok(RawParams::None),
        1 => {
            let url = c.get_str_raw()?;
            let method = c.get_str_raw()?;
            let initiator = if c.has_remaining() && c.get_u8() == 1 {
                Some(c.get_str_raw()?)
            } else {
                None
            };
            let load_flags = c.get_varint()? as u32;
            Ok(RawParams::UrlRequestStart {
                url,
                method,
                initiator,
                load_flags,
            })
        }
        2 => Ok(RawParams::Redirect {
            location: c.get_str_raw()?,
        }),
        3 => Ok(RawParams::DnsJob {
            host: c.get_str_raw()?,
        }),
        4 => Ok(RawParams::Connect {
            address: c.get_str_raw()?,
        }),
        5 => Ok(RawParams::Ssl {
            host: c.get_str_raw()?,
        }),
        6 => Ok(RawParams::ResponseHeaders {
            status: c.get_varint()? as u16,
        }),
        7 => Ok(RawParams::WebSocket {
            url: c.get_str_raw()?,
        }),
        8 => Ok(RawParams::WebSocketFrame {
            length: c.get_varint()?,
        }),
        9 => Ok(RawParams::Failed {
            net_error: unzigzag(c.get_varint()?) as i32,
        }),
        10 => Ok(RawParams::IceCandidate {
            address: c.get_str_raw()?,
            candidate_type: c.get_str_raw()?,
        }),
        v => Err(CodecError::BadTag("params", v as u64)),
    }
}

/// A decoded visit record whose strings borrow the encoded buffer.
///
/// Produced by [`decode_view`]; the only heap allocation behind a view
/// is its `events` vector. Convert with [`VisitView::to_owned`] when an
/// owned [`VisitRecord`] is actually needed.
#[derive(Debug, Clone, PartialEq)]
pub struct VisitView<'a> {
    /// Which crawl campaign this visit belongs to.
    pub crawl: &'a str,
    /// The visited domain.
    pub domain: &'a str,
    /// Tranco rank, for top-list crawls.
    pub rank: Option<u32>,
    /// Malicious blocklist category code, for the malicious crawl.
    pub malicious_category: Option<u8>,
    /// The crawling OS.
    pub os: Os,
    /// Landing-page outcome.
    pub outcome: LoadOutcome,
    /// Time at which the landing page finished loading, ms.
    pub loaded_at_ms: u64,
    /// The visit's NetLog events, borrowing their strings.
    pub events: Vec<EventView<'a>>,
}

impl VisitView<'_> {
    /// Convert to the owned record (allocates every string). Equal to
    /// what [`decode`] produces from the same buffer.
    pub fn to_owned(&self) -> VisitRecord {
        VisitRecord {
            crawl: CrawlId(self.crawl.to_string()),
            domain: self.domain.to_string(),
            rank: self.rank,
            malicious_category: self.malicious_category,
            os: self.os,
            outcome: self.outcome,
            loaded_at_ms: self.loaded_at_ms,
            events: self.events.iter().map(|&e| e.to_owned()).collect(),
        }
    }
}

impl VisitRecord {
    /// A borrowed view of this record, for the zero-copy analysis path
    /// when the record is already owned.
    pub fn view(&self) -> VisitView<'_> {
        VisitView {
            crawl: self.crawl.as_str(),
            domain: &self.domain,
            rank: self.rank,
            malicious_category: self.malicious_category,
            os: self.os,
            outcome: self.outcome,
            loaded_at_ms: self.loaded_at_ms,
            events: self.events.iter().map(NetLogEvent::view).collect(),
        }
    }
}

/// [`VisitView`] with unvalidated string spans: the output of the
/// structural pass, before the batched UTF-8 pass has run.
struct RawVisit<'a> {
    crawl: &'a [u8],
    domain: &'a [u8],
    rank: Option<u32>,
    malicious_category: Option<u8>,
    os: Os,
    outcome: LoadOutcome,
    loaded_at_ms: u64,
    events: Vec<RawEvent<'a>>,
}

struct RawEvent<'a> {
    time: u64,
    event_type: EventType,
    source: SourceRef,
    phase: EventPhase,
    params: RawParams<'a>,
}

/// Structural pass of [`decode_view`]: frame layout, tags, and lengths
/// only. String bytes are captured as spans (both in the returned raw
/// record and on the cursor's span list) without being validated.
fn decode_structure<'a>(c: &mut Cursor<'a>) -> Result<RawVisit<'a>, CodecError> {
    if c.remaining() < 3 {
        return Err(CodecError::Truncated);
    }
    if c.get_u16_le() != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = c.get_u8();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let crawl = c.get_str_raw()?;
    let domain = c.get_str_raw()?;
    let rank = if c.has_remaining() && c.get_u8() == 1 {
        Some(c.get_varint()? as u32)
    } else {
        None
    };
    let malicious_category = if c.has_remaining() && c.get_u8() == 1 {
        if !c.has_remaining() {
            return Err(CodecError::Truncated);
        }
        Some(c.get_u8())
    } else {
        None
    };
    if !c.has_remaining() {
        return Err(CodecError::Truncated);
    }
    let os = os_from(c.get_u8())?;
    if !c.has_remaining() {
        return Err(CodecError::Truncated);
    }
    let outcome = match c.get_u8() {
        0 => LoadOutcome::Success,
        1 => {
            let code = unzigzag(c.get_varint()?) as i32;
            let err = kt_netlog::NetError::from_code(code)
                .ok_or(CodecError::BadTag("net_error", code as u64))?;
            LoadOutcome::Error(err)
        }
        2 => LoadOutcome::Crashed,
        v => return Err(CodecError::BadTag("outcome", v as u64)),
    };
    let loaded_at_ms = c.get_varint()?;
    let n = c.get_varint()? as usize;
    let mut events = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let time = c.get_varint()?;
        if c.remaining() < 1 {
            return Err(CodecError::Truncated);
        }
        let ty = c.get_u8();
        let event_type =
            EventType::from_code(ty as u32).ok_or(CodecError::BadTag("event_type", ty as u64))?;
        let id = c.get_varint()?;
        if c.remaining() < 2 {
            return Err(CodecError::Truncated);
        }
        let st = c.get_u8();
        let kind =
            SourceType::from_code(st as u32).ok_or(CodecError::BadTag("source_type", st as u64))?;
        let ph = c.get_u8();
        let phase =
            EventPhase::from_code(ph as u32).ok_or(CodecError::BadTag("phase", ph as u64))?;
        let params = get_params_raw(c)?;
        events.push(RawEvent {
            time,
            event_type,
            source: SourceRef { id, kind },
            phase,
            params,
        });
    }
    Ok(RawVisit {
        crawl,
        domain,
        rank,
        malicious_category,
        os,
        outcome,
        loaded_at_ms,
        events,
    })
}

/// Decode one record without copying its strings: the borrowed mirror
/// of [`decode`]. Accepts and rejects exactly the same inputs with the
/// same error values (the property suite holds the two decoders to
/// byte-for-byte agreement); on success the view's one allocation is
/// the events vector.
///
/// Validation is batched: one structural pass checks layout, tags, and
/// lengths while collecting string spans, then a single UTF-8 pass
/// validates every span slice-at-once. Error parity with the
/// field-by-field [`decode`] holds because structure never depends on
/// string *contents*: when the structural pass fails, any invalid span
/// it collected first sits earlier in the stream, so the reference
/// decoder would have reported [`CodecError::BadUtf8`] before reaching
/// the structural fault — hence spans are checked first on both exits.
pub fn decode_view(buf: &[u8]) -> Result<VisitView<'_>, CodecError> {
    let mut c = Cursor::new(buf);
    let raw = match decode_structure(&mut c) {
        Ok(raw) => raw,
        Err(structural) => {
            // Spans collected before the structural fault precede it in
            // stream order: a bad one means the byte-at-a-time decoder
            // failed with BadUtf8 first.
            c.validate_spans()?;
            return Err(structural);
        }
    };
    c.validate_spans()?;
    // SAFETY: every span in `raw` is on the cursor's span list and the
    // batched pass above validated them all.
    let events = raw
        .events
        .into_iter()
        .map(|e| EventView {
            time: e.time,
            event_type: e.event_type,
            source: e.source,
            phase: e.phase,
            params: unsafe { e.params.into_view() },
        })
        .collect();
    Ok(VisitView {
        crawl: unsafe { utf8_unchecked(raw.crawl) },
        domain: unsafe { utf8_unchecked(raw.domain) },
        rank: raw.rank,
        malicious_category: raw.malicious_category,
        os: raw.os,
        outcome: raw.outcome,
        loaded_at_ms: raw.loaded_at_ms,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_netlog::NetError;

    fn sample() -> VisitRecord {
        VisitRecord {
            crawl: CrawlId::top2020(),
            domain: "ebay-like.example".into(),
            rank: Some(104),
            malicious_category: None,
            os: Os::Windows,
            outcome: LoadOutcome::Success,
            loaded_at_ms: 412,
            events: vec![
                NetLogEvent {
                    time: 412,
                    event_type: EventType::UrlRequestStartJob,
                    source: SourceRef {
                        id: 2,
                        kind: SourceType::UrlRequest,
                    },
                    phase: EventPhase::Begin,
                    params: EventParams::UrlRequestStart {
                        url: "wss://localhost:3389/".into(),
                        method: "GET".into(),
                        initiator: Some("https://ebay-like.example".into()),
                        load_flags: 0,
                    },
                },
                NetLogEvent {
                    time: 9_999,
                    event_type: EventType::FailedRequest,
                    source: SourceRef {
                        id: 2,
                        kind: SourceType::UrlRequest,
                    },
                    phase: EventPhase::None,
                    params: EventParams::Failed { net_error: -102 },
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let rec = sample();
        let encoded = encode(&rec);
        let decoded = decode(encoded).unwrap();
        assert_eq!(decoded, rec);
    }

    #[test]
    fn round_trip_ice_candidate_params() {
        let mut rec = sample();
        rec.events.push(NetLogEvent {
            time: 4_400,
            event_type: EventType::IceCandidateGathered,
            source: SourceRef {
                id: 5,
                kind: SourceType::P2pSocket,
            },
            phase: EventPhase::None,
            params: EventParams::IceCandidate {
                address: "f0ae4f9a-2d4c-4a91.local:9000".into(),
                candidate_type: "host".into(),
            },
        });
        let encoded = encode(&rec);
        assert_eq!(decode(encoded.clone()).unwrap(), rec);
        assert_eq!(decode_view(&encoded).unwrap().to_owned(), rec);
    }

    #[test]
    fn round_trip_error_outcome() {
        let mut rec = sample();
        rec.outcome = LoadOutcome::Error(NetError::NameNotResolved);
        rec.rank = None;
        rec.malicious_category = Some(2);
        rec.events.clear();
        let decoded = decode(encode(&rec)).unwrap();
        assert_eq!(decoded, rec);
    }

    #[test]
    fn round_trip_crashed_outcome() {
        let mut rec = sample();
        rec.outcome = LoadOutcome::Crashed;
        rec.loaded_at_ms = 0;
        let decoded = decode(encode(&rec)).unwrap();
        assert_eq!(decoded, rec);
        assert!(decoded.outcome.is_crashed());
        assert_eq!(decoded.events.len(), 2, "salvaged prefix survives");
    }

    #[test]
    fn truncation_is_detected() {
        let encoded = encode(&sample());
        for cut in [0, 1, 2, 5, 10, encoded.len() - 1] {
            let sliced = encoded.slice(0..cut);
            assert!(decode(sliced).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let mut data = encode(&sample()).to_vec();
        data[0] = 0xFF;
        assert_eq!(decode(Bytes::from(data.clone())), Err(CodecError::BadMagic));
        let mut data = encode(&sample()).to_vec();
        data[2] = 99;
        assert_eq!(decode(Bytes::from(data)), Err(CodecError::BadVersion(99)));
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [
            -105i64,
            -1,
            0,
            1,
            200,
            -200,
            i32::MIN as i64,
            i32::MAX as i64,
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut bytes = buf.freeze();
            assert_eq!(get_varint(&mut bytes).unwrap(), v);
        }
    }

    #[test]
    fn decode_view_matches_owned_decode() {
        let rec = sample();
        let encoded = encode(&rec);
        let view = decode_view(&encoded).unwrap();
        assert_eq!(view.to_owned(), rec);
        assert_eq!(view.domain, "ebay-like.example");
        assert_eq!(view.rank, Some(104));
        // Strings are slices of the encoded buffer, not copies.
        let buf_range = encoded.as_ptr() as usize..encoded.as_ptr() as usize + encoded.len();
        assert!(buf_range.contains(&(view.domain.as_ptr() as usize)));
        if let ParamsView::UrlRequestStart { url, .. } = view.events[0].params {
            assert!(buf_range.contains(&(url.as_ptr() as usize)));
            assert_eq!(url, "wss://localhost:3389/");
        } else {
            panic!("expected UrlRequestStart, got {:?}", view.events[0].params);
        }
    }

    #[test]
    fn decode_view_rejects_what_decode_rejects() {
        let encoded = encode(&sample());
        for cut in 0..encoded.len() {
            let owned = decode(encoded.slice(0..cut));
            let view = decode_view(&encoded[..cut]);
            match (owned, view) {
                (Ok(a), Ok(b)) => assert_eq!(b.to_owned(), a, "cut at {cut}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "cut at {cut}"),
                (a, b) => panic!("decoders disagree at cut {cut}: owned={a:?} view={b:?}"),
            }
        }
    }

    #[test]
    fn owned_get_str_matches_cursor_get_str() {
        // The single-copy `get_str` (Bytes path) and the borrowed
        // `Cursor::get_str` must accept/reject identically: same
        // string on success, same error otherwise.
        let mut cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],          // empty string
            vec![5],          // truncated: promises 5 bytes, has none
            vec![0x80],       // unterminated varint
            vec![0xff, 0xff], // unterminated varint
        ];
        for payload in [
            b"hello".to_vec(),
            b"wss://localhost:3389/".to_vec(),
            vec![0xff, 0xfe, 0xfd], // invalid UTF-8
            vec![0xe2, 0x82],       // truncated multibyte char
            "héllo wörld".as_bytes().to_vec(),
        ] {
            let mut case = Vec::new();
            let mut len = BytesMut::new();
            put_varint(&mut len, payload.len() as u64);
            case.extend_from_slice(len.freeze().as_ref());
            case.extend_from_slice(&payload);
            cases.push(case.clone());
            // And a trailing-garbage variant: both readers must stop
            // at the declared length.
            case.extend_from_slice(b"tail");
            cases.push(case);
        }
        for case in cases {
            let owned = get_str(&mut Bytes::from(case.clone()));
            let mut cursor = Cursor::new(&case);
            let view = cursor.get_str();
            match (owned, view) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "case {case:?}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "case {case:?}"),
                (a, b) => panic!("string readers disagree on {case:?}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn batched_validation_reports_utf8_before_later_structural_errors() {
        // Corrupt the domain string to invalid UTF-8 *and* truncate the
        // record afterwards: the byte-at-a-time decoder hits the UTF-8
        // error first, so the batched decoder must report BadUtf8 too,
        // not the later Truncated.
        let rec = sample();
        let mut data = encode(&rec).to_vec();
        let domain_at = data
            .windows(rec.domain.len())
            .position(|w| w == rec.domain.as_bytes())
            .unwrap();
        data[domain_at] = 0xff;
        data.truncate(data.len() - 1);
        assert_eq!(decode(Bytes::from(data.clone())), Err(CodecError::BadUtf8));
        assert_eq!(decode_view(&data), Err(CodecError::BadUtf8));
    }

    #[test]
    fn batched_validation_covers_params_strings() {
        let rec = sample();
        let mut data = encode(&rec).to_vec();
        let url_at = data
            .windows(21)
            .position(|w| w == b"wss://localhost:3389/")
            .unwrap();
        data[url_at + 3] = 0xc0; // lone continuation lead byte
        assert_eq!(decode(Bytes::from(data.clone())), Err(CodecError::BadUtf8));
        assert_eq!(decode_view(&data), Err(CodecError::BadUtf8));
    }

    #[test]
    fn structural_errors_win_when_all_earlier_strings_are_valid() {
        // Corrupt the outcome tag (after both header strings, before
        // any event): both decoders must report the tag error, proving
        // the batched pass doesn't over-report BadUtf8.
        let rec = sample();
        let encoded = encode(&rec).to_vec();
        // outcome byte = magic(2) + ver(1) + crawl + domain + rank + cat + os
        let mut at = 3;
        for s in [rec.crawl.as_str().len(), rec.domain.len()] {
            at += 1 + s; // 1-byte varint lengths for the short sample strings
        }
        at += 2; // rank present flag + 1-byte varint (104)
        at += 1; // malicious_category absent flag
        at += 1; // os
        let mut data = encoded.clone();
        data[at] = 77;
        assert_eq!(
            decode(Bytes::from(data.clone())),
            Err(CodecError::BadTag("outcome", 77))
        );
        assert_eq!(decode_view(&data), Err(CodecError::BadTag("outcome", 77)));
    }

    #[test]
    fn record_view_round_trips() {
        let rec = sample();
        assert_eq!(rec.view().to_owned(), rec);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let rec = sample();
        let binary = encode(&rec).len();
        let json = serde_json::to_string(&rec).unwrap().len();
        assert!(
            binary * 2 < json,
            "binary {binary} should be well under half of JSON {json}"
        );
    }
}
