//! The content-addressed longitudinal snapshot store.
//!
//! A longitudinal study crawls the "same" web many times; most visit
//! records repeat byte-for-byte between snapshots (the site didn't
//! change, the simulation is deterministic). Storing N snapshots as N
//! full [`TelemetryStore`] dumps costs N× the bytes; the
//! [`SnapshotStore`] instead keys every record by a 128-bit hash of
//! its *canonicalised* encoding and stores each distinct chunk once:
//!
//! * **canonicalisation** — the codec buries the crawl id and the
//!   Tranco rank inside the record bytes, and both legitimately differ
//!   between snapshots of identical content. Before hashing, the
//!   record is re-encoded with the fixed [`CANONICAL_CRAWL`] id and
//!   `rank: None`; the per-snapshot manifest carries the snapshot
//!   label and the rank instead (`to record bytes` what a column is to
//!   a table key);
//! * **manifests** — one per snapshot label, mapping `(domain, OS)` →
//!   (content hash, rank). An *incremental* crawl links an unchanged
//!   site's entry straight to the previous snapshot's chunk
//!   ([`SnapshotStore::link_from`]) without re-encoding anything;
//! * **refcounts** — each chunk counts its manifest references;
//!   [`SnapshotStore::remove_snapshot`] decrements and
//!   [`SnapshotStore::gc`] drops unreferenced chunks;
//! * **persistence** — chunks pack into sealed segment files (magic
//!   [`SNAPSHOT_SEGMENT_MAGIC`], frames of `[hash][len][bytes]`) that
//!   reload through [`load_segment`]'s zero-copy mmap path, plus a
//!   JSON manifest recording, per chunk, its `(segment, offset,
//!   length)` location; [`snapshot_fsck`] is the store doctor for the
//!   on-disk layout (dangling references, duplicated chunks, torn
//!   segments, refcount drift).

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

use bytes::Bytes;
use kt_netbase::Os;
use serde::{Deserialize, Serialize};

use crate::codec;
use crate::record::{CrawlId, VisitRecord};
use crate::segment::{load_segment, SegmentMode};

/// The crawl id every chunk is encoded under, whatever snapshot the
/// record came from. Snapshot identity lives in the manifest.
pub const CANONICAL_CRAWL: &str = "snapshot";

/// Magic prefix of a snapshot chunk segment file.
pub const SNAPSHOT_SEGMENT_MAGIC: &[u8; 8] = b"KTSNAP1\n";

/// Chunk bytes packed per segment file before sealing (matches the
/// telemetry store's segment granularity).
const SEGMENT_TARGET: usize = 512 << 10;

/// Shards the streaming diff walks in parallel; pinned to the
/// telemetry store's shard count so the two parallel drivers share
/// their worker shape.
pub const SNAPSHOT_SHARDS: usize = 16;

/// The store's OS column order (W/L/M), shared with [`TelemetryStore`].
///
/// [`TelemetryStore`]: crate::store::TelemetryStore
pub fn os_slot(os: Os) -> u8 {
    match os {
        Os::Windows => 0,
        Os::Linux => 1,
        Os::MacOs => 2,
    }
}

/// Inverse of [`os_slot`].
pub fn slot_os(slot: u8) -> Option<Os> {
    match slot {
        0 => Some(Os::Windows),
        1 => Some(Os::Linux),
        2 => Some(Os::MacOs),
        _ => None,
    }
}

/// The shard a domain's manifest entries belong to, for shard-parallel
/// walks. A pure function of the domain string.
pub fn shard_of(domain: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in domain.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % SNAPSHOT_SHARDS as u64) as usize
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// 128-bit content address of one canonicalised record encoding.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContentHash(pub [u8; 16]);

impl ContentHash {
    /// Hash a byte slice: two independent FNV-1a streams (the second
    /// rotated so transpositions separate the halves), finalised
    /// through splitmix for avalanche.
    pub fn of(bytes: &[u8]) -> ContentHash {
        let mut a: u64 = 0xcbf2_9ce4_8422_2325;
        let mut b: u64 = 0x6c62_272e_07bb_0142;
        for &x in bytes {
            a = (a ^ x as u64).wrapping_mul(0x0000_0100_0000_01B3);
            b = (b ^ x as u64)
                .wrapping_mul(0x0000_0100_0000_01B3)
                .rotate_left(29);
        }
        a = mix(a ^ bytes.len() as u64);
        b = mix(b ^ a);
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&a.to_be_bytes());
        out[8..].copy_from_slice(&b.to_be_bytes());
        ContentHash(out)
    }

    /// Lower-case hex form (32 chars).
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parse the hex form back.
    pub fn from_hex(s: &str) -> Option<ContentHash> {
        if s.len() != 32 {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).ok()?;
        }
        Some(ContentHash(out))
    }
}

impl fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ContentHash({})", self.to_hex())
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Re-encode a record under the canonical crawl id with the rank
/// stripped — the byte string that gets content-addressed. Records
/// already in canonical form encode without the clone.
pub fn canonical_bytes(record: &VisitRecord) -> Bytes {
    if record.crawl.as_str() == CANONICAL_CRAWL && record.rank.is_none() {
        return codec::encode(record);
    }
    let canonical = VisitRecord {
        crawl: CrawlId(CANONICAL_CRAWL.to_string()),
        rank: None,
        ..record.clone()
    };
    codec::encode(&canonical)
}

/// One manifest row: where a `(domain, OS)` visit's bytes live, plus
/// the snapshot-scoped metadata the canonicalisation stripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Content address of the canonicalised record bytes.
    pub hash: ContentHash,
    /// Tranco rank of the domain *in this snapshot*.
    pub rank: Option<u32>,
    /// Chunk length in bytes.
    pub len: u32,
}

/// One snapshot's manifest: `(domain, OS slot)` → entry, ordered.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotManifest {
    /// Rows keyed by `(domain, os_slot)` — the same order
    /// `TelemetryStore::crawl_records` returns records in.
    pub entries: BTreeMap<(String, u8), ManifestEntry>,
}

impl SnapshotManifest {
    /// Distinct domains, in order.
    pub fn domains(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for (domain, _) in self.entries.keys() {
            if out.last().map(|d| *d != domain.as_str()).unwrap_or(true) {
                out.push(domain.as_str());
            }
        }
        out
    }

    /// The rank recorded for a domain (from any of its OS rows).
    pub fn rank_of(&self, domain: &str) -> Option<u32> {
        self.entries
            .range((domain.to_string(), 0)..=(domain.to_string(), 2))
            .find_map(|(_, e)| e.rank)
    }
}

struct Chunk {
    bytes: Bytes,
    refs: u64,
}

/// Outcome of one [`SnapshotStore::ingest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Content address the record landed under.
    pub hash: ContentHash,
    /// True when the chunk was new to the store (bytes written);
    /// false when it deduplicated against an existing chunk.
    pub fresh: bool,
    /// Canonical encoding length.
    pub len: u32,
}

/// What [`SnapshotStore::gc`] reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Chunks dropped (refcount zero).
    pub chunks_dropped: usize,
    /// Bytes those chunks held.
    pub bytes_reclaimed: u64,
}

/// The content-addressed dedup store for N snapshots.
#[derive(Default)]
pub struct SnapshotStore {
    chunks: BTreeMap<ContentHash, Chunk>,
    manifests: BTreeMap<String, SnapshotManifest>,
    /// Labels in ingest order (manifest map order is lexicographic).
    order: Vec<String>,
}

impl SnapshotStore {
    /// An empty store.
    pub fn new() -> SnapshotStore {
        SnapshotStore::default()
    }

    /// Ingest one visit record into snapshot `label`. The record is
    /// canonicalised, content-addressed, and stored once per distinct
    /// byte string; `rank` is the domain's rank in *this* snapshot
    /// (manifest metadata, never hashed). Last write wins per
    /// `(label, domain, OS)`, like the telemetry store.
    pub fn ingest(
        &mut self,
        label: &str,
        record: &VisitRecord,
        rank: Option<u32>,
    ) -> IngestOutcome {
        let bytes = canonical_bytes(record);
        let hash = ContentHash::of(&bytes);
        let len = bytes.len() as u32;
        let fresh = match self.chunks.get_mut(&hash) {
            Some(chunk) => {
                chunk.refs += 1;
                false
            }
            None => {
                self.chunks.insert(hash, Chunk { bytes, refs: 1 });
                true
            }
        };
        let entry = ManifestEntry { hash, rank, len };
        let manifest = self.manifest_mut(label);
        let key = (record.domain.clone(), os_slot(record.os));
        if let Some(old) = manifest.entries.insert(key, entry) {
            self.release(old.hash);
        }
        IngestOutcome { hash, fresh, len }
    }

    /// Link an unchanged site's visit: copy the `(domain, OS)` entry of
    /// snapshot `from` into snapshot `to` by reference — no bytes move,
    /// the chunk's refcount grows. `rank` is the domain's rank in the
    /// *new* snapshot. Returns false (and does nothing) when `from`
    /// has no such entry.
    pub fn link_from(
        &mut self,
        from: &str,
        to: &str,
        domain: &str,
        os: Os,
        rank: Option<u32>,
    ) -> bool {
        let key = (domain.to_string(), os_slot(os));
        let Some(entry) = self
            .manifests
            .get(from)
            .and_then(|m| m.entries.get(&key))
            .copied()
        else {
            return false;
        };
        match self.chunks.get_mut(&entry.hash) {
            Some(chunk) => chunk.refs += 1,
            None => return false,
        }
        let linked = ManifestEntry { rank, ..entry };
        let manifest = self.manifest_mut(to);
        if let Some(old) = manifest.entries.insert(key, linked) {
            self.release(old.hash);
        }
        true
    }

    fn manifest_mut(&mut self, label: &str) -> &mut SnapshotManifest {
        if !self.manifests.contains_key(label) {
            self.manifests
                .insert(label.to_string(), SnapshotManifest::default());
            self.order.push(label.to_string());
        }
        self.manifests.get_mut(label).expect("just inserted")
    }

    fn release(&mut self, hash: ContentHash) {
        if let Some(chunk) = self.chunks.get_mut(&hash) {
            chunk.refs = chunk.refs.saturating_sub(1);
        }
    }

    /// Snapshot labels in ingest order.
    pub fn labels(&self) -> Vec<&str> {
        self.order.iter().map(String::as_str).collect()
    }

    /// One snapshot's manifest.
    pub fn manifest(&self, label: &str) -> Option<&SnapshotManifest> {
        self.manifests.get(label)
    }

    /// The raw chunk bytes for `(label, domain, os)` — a zero-copy
    /// slice handle into the store's (possibly mmap-backed) segments.
    pub fn get(&self, label: &str, domain: &str, os: Os) -> Option<Bytes> {
        let key = (domain.to_string(), os_slot(os));
        let entry = self.manifests.get(label)?.entries.get(&key)?;
        self.chunks.get(&entry.hash).map(|c| c.bytes.clone())
    }

    /// Chunk bytes by content address.
    pub fn chunk(&self, hash: ContentHash) -> Option<Bytes> {
        self.chunks.get(&hash).map(|c| c.bytes.clone())
    }

    /// Decode the record for `(label, domain, os)`, restoring the
    /// snapshot-scoped fields the canonicalisation stripped: `crawl`
    /// becomes the snapshot label, `rank` comes from the manifest.
    pub fn record(&self, label: &str, domain: &str, os: Os) -> Option<VisitRecord> {
        let key = (domain.to_string(), os_slot(os));
        let entry = self.manifests.get(label)?.entries.get(&key)?;
        let bytes = self.chunks.get(&entry.hash)?.bytes.clone();
        let mut record = codec::decode(bytes).ok()?;
        record.crawl = CrawlId(label.to_string());
        record.rank = entry.rank;
        Some(record)
    }

    /// Number of snapshots.
    pub fn snapshot_count(&self) -> usize {
        self.manifests.len()
    }

    /// Number of distinct chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Bytes actually stored (each distinct chunk once).
    pub fn stored_bytes(&self) -> u64 {
        self.chunks.values().map(|c| c.bytes.len() as u64).sum()
    }

    /// Bytes the snapshots would occupy stored flat (every manifest
    /// row's chunk length, duplicates counted).
    pub fn logical_bytes(&self) -> u64 {
        self.manifests
            .values()
            .flat_map(|m| m.entries.values())
            .map(|e| e.len as u64)
            .sum()
    }

    /// Deduplication ratio: logical bytes over stored bytes (≥ 1).
    pub fn dedup_ratio(&self) -> f64 {
        let stored = self.stored_bytes();
        if stored == 0 {
            return 1.0;
        }
        self.logical_bytes() as f64 / stored as f64
    }

    /// Drop one snapshot's manifest, releasing its chunk references.
    /// The bytes stay until [`SnapshotStore::gc`] runs. Returns false
    /// when the label is unknown.
    pub fn remove_snapshot(&mut self, label: &str) -> bool {
        let Some(manifest) = self.manifests.remove(label) else {
            return false;
        };
        self.order.retain(|l| l != label);
        for entry in manifest.entries.values() {
            let hash = entry.hash;
            self.release(hash);
        }
        true
    }

    /// Drop every chunk whose refcount reached zero.
    pub fn gc(&mut self) -> GcReport {
        let mut report = GcReport::default();
        self.chunks.retain(|_, chunk| {
            if chunk.refs == 0 {
                report.chunks_dropped += 1;
                report.bytes_reclaimed += chunk.bytes.len() as u64;
                false
            } else {
                true
            }
        });
        report
    }

    /// Internal-consistency check of the live store: every manifest
    /// entry must resolve to a chunk whose declared length matches,
    /// and every chunk's refcount must equal its manifest reference
    /// count. Returns human-readable violations (empty = consistent).
    pub fn verify(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let mut counted: BTreeMap<ContentHash, u64> = BTreeMap::new();
        for (label, manifest) in &self.manifests {
            for ((domain, slot), entry) in &manifest.entries {
                match self.chunks.get(&entry.hash) {
                    None => violations.push(format!(
                        "{label}/{domain}/os{slot}: dangling chunk reference {}",
                        entry.hash
                    )),
                    Some(chunk) if chunk.bytes.len() as u32 != entry.len => {
                        violations.push(format!("{label}/{domain}/os{slot}: length drift vs chunk"))
                    }
                    Some(_) => {}
                }
                *counted.entry(entry.hash).or_default() += 1;
            }
        }
        for (hash, chunk) in &self.chunks {
            let referenced = counted.get(hash).copied().unwrap_or(0);
            if chunk.refs != referenced {
                violations.push(format!(
                    "chunk {hash}: refcount {} but {referenced} manifest reference(s)",
                    chunk.refs
                ));
            }
        }
        violations
    }

    /// Write the store to `dir`: sealed chunk segments plus the JSON
    /// manifest. Unreferenced chunks are not written (save compacts).
    pub fn save(&self, dir: &Path) -> io::Result<SnapshotSaveReport> {
        fs::create_dir_all(dir)?;
        let mut report = SnapshotSaveReport::default();
        let mut doc = ManifestDoc {
            version: 1,
            segments: Vec::new(),
            chunks: Vec::new(),
            snapshots: Vec::new(),
        };
        let mut seg_buf: Vec<u8> = SNAPSHOT_SEGMENT_MAGIC.to_vec();
        let mut seg_index: u32 = 0;
        let seal = |buf: &mut Vec<u8>, index: u32, doc: &mut ManifestDoc| -> io::Result<()> {
            let name = format!("chunks-{index:04}.ktc");
            let mut file = File::create(dir.join(&name))?;
            file.write_all(buf)?;
            file.sync_all()?;
            doc.segments.push(SegmentDoc {
                file: name,
                bytes: buf.len() as u64,
            });
            buf.clear();
            buf.extend_from_slice(SNAPSHOT_SEGMENT_MAGIC);
            Ok(())
        };
        for (hash, chunk) in &self.chunks {
            if chunk.refs == 0 {
                continue;
            }
            if seg_buf.len() > SEGMENT_TARGET {
                seal(&mut seg_buf, seg_index, &mut doc)?;
                seg_index += 1;
            }
            let off = seg_buf.len() as u64;
            seg_buf.extend_from_slice(&hash.0);
            seg_buf.extend_from_slice(&(chunk.bytes.len() as u32).to_le_bytes());
            seg_buf.extend_from_slice(&chunk.bytes);
            doc.chunks.push(ChunkDoc {
                hash: hash.to_hex(),
                seg: seg_index,
                off,
                len: chunk.bytes.len() as u32,
                refs: chunk.refs,
            });
            report.chunks += 1;
            report.chunk_bytes += chunk.bytes.len() as u64;
        }
        if seg_buf.len() > SNAPSHOT_SEGMENT_MAGIC.len() || doc.segments.is_empty() {
            seal(&mut seg_buf, seg_index, &mut doc)?;
        }
        for label in &self.order {
            let manifest = &self.manifests[label];
            doc.snapshots.push(SnapshotDoc {
                label: label.clone(),
                entries: manifest
                    .entries
                    .iter()
                    .map(|((domain, slot), e)| EntryDoc {
                        domain: domain.clone(),
                        os: *slot,
                        rank: e.rank,
                        hash: e.hash.to_hex(),
                    })
                    .collect(),
            });
            report.manifest_entries += manifest.entries.len();
        }
        let json = serde_json::to_string(&doc)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut file = File::create(dir.join("MANIFEST.json"))?;
        file.write_all(json.as_bytes())?;
        file.sync_all()?;
        report.segments = doc.segments.len();
        Ok(report)
    }

    /// Load a store from `dir`. Segment files come back through
    /// [`load_segment`] — `SegmentMode::Mmap` serves chunk reads as
    /// zero-copy slices of the mapped file.
    pub fn open(dir: &Path, mode: SegmentMode) -> io::Result<SnapshotStore> {
        let doc = read_manifest_doc(dir)?;
        let mut segments: Vec<Bytes> = Vec::with_capacity(doc.segments.len());
        for seg in &doc.segments {
            let bytes = load_segment(&dir.join(&seg.file), mode)?;
            if bytes.len() < SNAPSHOT_SEGMENT_MAGIC.len()
                || &bytes[..SNAPSHOT_SEGMENT_MAGIC.len()] != SNAPSHOT_SEGMENT_MAGIC
            {
                return Err(bad_data(format!("{}: bad segment magic", seg.file)));
            }
            segments.push(bytes);
        }
        let mut chunks = BTreeMap::new();
        for c in &doc.chunks {
            let hash = ContentHash::from_hex(&c.hash)
                .ok_or_else(|| bad_data(format!("bad chunk hash {:?}", c.hash)))?;
            let seg = segments
                .get(c.seg as usize)
                .ok_or_else(|| bad_data(format!("chunk {}: segment {} missing", c.hash, c.seg)))?;
            let header = c.off as usize;
            let start = header + 16 + 4;
            let end = start + c.len as usize;
            if end > seg.len() {
                return Err(bad_data(format!("chunk {}: out of segment bounds", c.hash)));
            }
            if seg[header..header + 16] != hash.0 {
                return Err(bad_data(format!("chunk {}: frame hash mismatch", c.hash)));
            }
            chunks.insert(
                hash,
                Chunk {
                    bytes: seg.slice(start..end),
                    refs: c.refs,
                },
            );
        }
        let mut store = SnapshotStore {
            chunks,
            manifests: BTreeMap::new(),
            order: Vec::new(),
        };
        for snap in &doc.snapshots {
            store.manifest_mut(&snap.label);
            for e in &snap.entries {
                let hash = ContentHash::from_hex(&e.hash)
                    .ok_or_else(|| bad_data(format!("bad entry hash {:?}", e.hash)))?;
                let len = store
                    .chunks
                    .get(&hash)
                    .map(|c| c.bytes.len() as u32)
                    .unwrap_or(0);
                store
                    .manifests
                    .get_mut(&snap.label)
                    .expect("manifest exists")
                    .entries
                    .insert(
                        (e.domain.clone(), e.os),
                        ManifestEntry {
                            hash,
                            rank: e.rank,
                            len,
                        },
                    );
            }
        }
        Ok(store)
    }
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_manifest_doc(dir: &Path) -> io::Result<ManifestDoc> {
    let text = fs::read_to_string(dir.join("MANIFEST.json"))?;
    serde_json::from_str(&text).map_err(|e| bad_data(format!("MANIFEST.json: {e}")))
}

/// What [`SnapshotStore::save`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotSaveReport {
    /// Segment files written.
    pub segments: usize,
    /// Distinct chunks written.
    pub chunks: usize,
    /// Chunk payload bytes written.
    pub chunk_bytes: u64,
    /// Manifest rows written.
    pub manifest_entries: usize,
}

/// The snapshot-store doctor's findings over an on-disk directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotFsckReport {
    /// Segment files inspected.
    pub segments: usize,
    /// Chunks indexed by the manifest.
    pub chunks: usize,
    /// Manifest rows inspected.
    pub manifest_entries: usize,
    /// Manifest rows whose hash resolves to no indexed chunk.
    pub dangling_refs: usize,
    /// Content hashes indexed or stored more than once.
    pub duplicate_chunks: usize,
    /// Chunks whose stored bytes do not re-hash to their key.
    pub hash_mismatches: usize,
    /// Chunks whose declared refcount differs from the count of
    /// manifest rows referencing them.
    pub refcount_mismatches: usize,
    /// Chunks no manifest row references (gc debt).
    pub orphan_chunks: usize,
    /// Index entries pointing outside their segment file.
    pub out_of_bounds: usize,
}

impl SnapshotFsckReport {
    /// True when the directory is fully consistent.
    pub fn clean(&self) -> bool {
        self.dangling_refs == 0
            && self.duplicate_chunks == 0
            && self.hash_mismatches == 0
            && self.refcount_mismatches == 0
            && self.orphan_chunks == 0
            && self.out_of_bounds == 0
    }
}

/// Check an on-disk snapshot store for dangling references, duplicated
/// chunks, hash drift, refcount drift, orphans, and out-of-bounds
/// index entries. Never panics on damage; unreadable manifests error.
pub fn snapshot_fsck(dir: &Path) -> io::Result<SnapshotFsckReport> {
    let doc = read_manifest_doc(dir)?;
    let mut report = SnapshotFsckReport {
        segments: doc.segments.len(),
        chunks: doc.chunks.len(),
        ..SnapshotFsckReport::default()
    };
    let mut segments: Vec<Option<Bytes>> = Vec::new();
    for seg in &doc.segments {
        let bytes = load_segment(&dir.join(&seg.file), SegmentMode::Resident).ok();
        let ok = bytes
            .as_ref()
            .map(|b| b.len() >= SNAPSHOT_SEGMENT_MAGIC.len() && &b[..8] == SNAPSHOT_SEGMENT_MAGIC)
            .unwrap_or(false);
        segments.push(if ok { bytes } else { None });
    }
    let mut indexed: BTreeMap<ContentHash, (u64, u32)> = BTreeMap::new();
    for c in &doc.chunks {
        let Some(hash) = ContentHash::from_hex(&c.hash) else {
            report.hash_mismatches += 1;
            continue;
        };
        if indexed.contains_key(&hash) {
            report.duplicate_chunks += 1;
            continue;
        }
        indexed.insert(hash, (c.refs, c.len));
        let Some(Some(seg)) = segments.get(c.seg as usize) else {
            report.out_of_bounds += 1;
            continue;
        };
        let header = c.off as usize;
        let start = header + 16 + 4;
        let end = start.saturating_add(c.len as usize);
        if end > seg.len() || header + 20 > seg.len() {
            report.out_of_bounds += 1;
            continue;
        }
        if seg[header..header + 16] != hash.0 || ContentHash::of(&seg[start..end]) != hash {
            report.hash_mismatches += 1;
        }
    }
    // Frames present in segment bytes but not in the index would be
    // duplicated storage: walk the frames and compare.
    for seg in segments.iter().flatten() {
        let mut at = SNAPSHOT_SEGMENT_MAGIC.len();
        let mut seen_in_seg: BTreeMap<ContentHash, usize> = BTreeMap::new();
        while at + 20 <= seg.len() {
            let mut hash = [0u8; 16];
            hash.copy_from_slice(&seg[at..at + 16]);
            let len = u32::from_le_bytes([seg[at + 16], seg[at + 17], seg[at + 18], seg[at + 19]])
                as usize;
            if at + 20 + len > seg.len() {
                break; // torn tail; the index check above already counted it
            }
            *seen_in_seg.entry(ContentHash(hash)).or_default() += 1;
            at += 20 + len;
        }
        for (hash, count) in seen_in_seg {
            if count > 1 {
                report.duplicate_chunks += count - 1;
            }
            if !indexed.contains_key(&hash) {
                report.orphan_chunks += 1;
            }
        }
    }
    let mut referenced: BTreeMap<ContentHash, u64> = BTreeMap::new();
    for snap in &doc.snapshots {
        for e in &snap.entries {
            report.manifest_entries += 1;
            match ContentHash::from_hex(&e.hash) {
                Some(hash) if indexed.contains_key(&hash) => {
                    *referenced.entry(hash).or_default() += 1;
                }
                _ => report.dangling_refs += 1,
            }
        }
    }
    for (hash, (declared_refs, _)) in &indexed {
        let counted = referenced.get(hash).copied().unwrap_or(0);
        if counted == 0 {
            report.orphan_chunks += 1;
        }
        if *declared_refs != counted {
            report.refcount_mismatches += 1;
        }
    }
    Ok(report)
}

#[derive(Serialize, Deserialize)]
struct ManifestDoc {
    version: u32,
    segments: Vec<SegmentDoc>,
    chunks: Vec<ChunkDoc>,
    snapshots: Vec<SnapshotDoc>,
}

#[derive(Serialize, Deserialize)]
struct SegmentDoc {
    file: String,
    bytes: u64,
}

#[derive(Serialize, Deserialize)]
struct ChunkDoc {
    hash: String,
    seg: u32,
    off: u64,
    len: u32,
    refs: u64,
}

#[derive(Serialize, Deserialize)]
struct SnapshotDoc {
    label: String,
    entries: Vec<EntryDoc>,
}

#[derive(Serialize, Deserialize)]
struct EntryDoc {
    domain: String,
    os: u8,
    rank: Option<u32>,
    hash: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LoadOutcome;
    use kt_netlog::{EventParams, EventPhase, EventType, NetLogEvent, SourceRef, SourceType};

    fn record(crawl: &str, domain: &str, os: Os, rank: Option<u32>, marker: u64) -> VisitRecord {
        VisitRecord {
            crawl: CrawlId(crawl.to_string()),
            domain: domain.to_string(),
            rank,
            malicious_category: None,
            os,
            outcome: LoadOutcome::Success,
            loaded_at_ms: 400,
            events: vec![NetLogEvent {
                time: marker,
                event_type: EventType::UrlRequestStartJob,
                source: SourceRef {
                    id: 1,
                    kind: SourceType::UrlRequest,
                },
                phase: EventPhase::Begin,
                params: EventParams::UrlRequestStart {
                    url: format!("https://{domain}/"),
                    method: "GET".into(),
                    initiator: None,
                    load_flags: 0,
                },
            }],
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kt-snapstore-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn identical_content_across_snapshots_stores_once() {
        let mut store = SnapshotStore::new();
        // Same site content in two snapshots: different crawl ids and
        // ranks, identical events — one chunk, two manifest rows.
        let a = store.ingest(
            "snap00",
            &record("snap00", "a.example", Os::Linux, Some(3), 7),
            Some(3),
        );
        let b = store.ingest(
            "snap01",
            &record("snap01", "a.example", Os::Linux, Some(9), 7),
            Some(9),
        );
        assert!(a.fresh);
        assert!(!b.fresh);
        assert_eq!(a.hash, b.hash);
        assert_eq!(store.chunk_count(), 1);
        assert_eq!(store.snapshot_count(), 2);
        assert_eq!(store.logical_bytes(), 2 * store.stored_bytes());
        assert!((store.dedup_ratio() - 2.0).abs() < 1e-9);
        // The manifest keeps each snapshot's own rank.
        assert_eq!(
            store.record("snap00", "a.example", Os::Linux).unwrap().rank,
            Some(3)
        );
        assert_eq!(
            store.record("snap01", "a.example", Os::Linux).unwrap().rank,
            Some(9)
        );
        assert!(store.verify().is_empty());
    }

    #[test]
    fn changed_content_gets_its_own_chunk() {
        let mut store = SnapshotStore::new();
        store.ingest(
            "snap00",
            &record("snap00", "a.example", Os::Linux, None, 7),
            None,
        );
        let b = store.ingest(
            "snap01",
            &record("snap01", "a.example", Os::Linux, None, 8),
            None,
        );
        assert!(b.fresh, "different event bytes must not dedup");
        assert_eq!(store.chunk_count(), 2);
    }

    #[test]
    fn link_from_shares_the_chunk_by_reference() {
        let mut store = SnapshotStore::new();
        store.ingest(
            "snap00",
            &record("snap00", "a.example", Os::Windows, Some(1), 7),
            Some(1),
        );
        assert!(store.link_from("snap00", "snap01", "a.example", Os::Windows, Some(4)));
        assert!(!store.link_from("snap00", "snap01", "missing.example", Os::Windows, None));
        assert_eq!(store.chunk_count(), 1);
        let linked = store.record("snap01", "a.example", Os::Windows).unwrap();
        assert_eq!(linked.rank, Some(4));
        assert_eq!(linked.crawl.as_str(), "snap01");
        assert_eq!(
            linked.events,
            store
                .record("snap00", "a.example", Os::Windows)
                .unwrap()
                .events
        );
        assert!(store.verify().is_empty());
    }

    #[test]
    fn remove_and_gc_reclaim_unshared_chunks_only() {
        let mut store = SnapshotStore::new();
        store.ingest(
            "snap00",
            &record("snap00", "shared.example", Os::Linux, None, 1),
            None,
        );
        store.ingest(
            "snap00",
            &record("snap00", "only0.example", Os::Linux, None, 2),
            None,
        );
        store.link_from("snap00", "snap01", "shared.example", Os::Linux, None);
        store.ingest(
            "snap01",
            &record("snap01", "only1.example", Os::Linux, None, 3),
            None,
        );
        assert_eq!(store.chunk_count(), 3);
        assert!(store.remove_snapshot("snap00"));
        let report = store.gc();
        assert_eq!(report.chunks_dropped, 1, "only only0's chunk dies");
        assert!(report.bytes_reclaimed > 0);
        assert_eq!(store.chunk_count(), 2);
        assert!(store.get("snap01", "shared.example", Os::Linux).is_some());
        assert!(store.get("snap00", "shared.example", Os::Linux).is_none());
        assert!(store.verify().is_empty());
    }

    #[test]
    fn last_write_wins_per_snapshot_domain_os() {
        let mut store = SnapshotStore::new();
        store.ingest(
            "snap00",
            &record("snap00", "a.example", Os::Linux, None, 1),
            None,
        );
        store.ingest(
            "snap00",
            &record("snap00", "a.example", Os::Linux, None, 2),
            None,
        );
        assert_eq!(store.manifest("snap00").unwrap().entries.len(), 1);
        let report = store.gc();
        assert_eq!(report.chunks_dropped, 1, "the overwritten chunk is garbage");
        assert!(store.verify().is_empty());
    }

    #[test]
    fn save_open_roundtrip_under_both_segment_modes() {
        let mut store = SnapshotStore::new();
        for i in 0..30u64 {
            let domain = format!("site{i:02}.example");
            for os in [Os::Windows, Os::Linux, Os::MacOs] {
                store.ingest(
                    "snap00",
                    &record("snap00", &domain, os, Some(i as u32 + 1), i % 7),
                    Some(i as u32 + 1),
                );
                store.link_from("snap00", "snap01", &domain, os, Some(i as u32 + 2));
            }
        }
        let dir = tmp("roundtrip");
        let report = store.save(&dir).unwrap();
        assert_eq!(report.manifest_entries, 180);
        assert!(report.chunks > 0);
        for mode in [SegmentMode::Mmap, SegmentMode::Resident] {
            let loaded = SnapshotStore::open(&dir, mode).unwrap();
            assert_eq!(loaded.labels(), vec!["snap00", "snap01"]);
            assert_eq!(loaded.chunk_count(), store.chunk_count());
            assert_eq!(loaded.stored_bytes(), store.stored_bytes());
            assert_eq!(loaded.logical_bytes(), store.logical_bytes());
            for i in [0u64, 13, 29] {
                let domain = format!("site{i:02}.example");
                assert_eq!(
                    loaded.record("snap01", &domain, Os::Linux),
                    store.record("snap01", &domain, Os::Linux),
                    "mode {mode:?}"
                );
            }
            assert!(loaded.verify().is_empty());
        }
        assert!(snapshot_fsck(&dir).unwrap().clean());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_compacts_garbage_chunks() {
        let mut store = SnapshotStore::new();
        store.ingest(
            "snap00",
            &record("snap00", "a.example", Os::Linux, None, 1),
            None,
        );
        store.ingest(
            "snap00",
            &record("snap00", "b.example", Os::Linux, None, 2),
            None,
        );
        store.remove_snapshot("snap00");
        store.ingest(
            "snap01",
            &record("snap01", "a.example", Os::Linux, None, 1),
            None,
        );
        let dir = tmp("compact");
        let report = store.save(&dir).unwrap();
        assert_eq!(report.chunks, 1, "zero-ref chunks are not written");
        let loaded = SnapshotStore::open(&dir, SegmentMode::Resident).unwrap();
        assert_eq!(loaded.chunk_count(), 1);
        assert!(snapshot_fsck(&dir).unwrap().clean());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsck_finds_corruption_and_dangling_references() {
        let mut store = SnapshotStore::new();
        for i in 0..10u64 {
            let domain = format!("site{i}.example");
            store.ingest(
                "snap00",
                &record("snap00", &domain, Os::Linux, None, i),
                None,
            );
        }
        let dir = tmp("fsck-damage");
        store.save(&dir).unwrap();
        assert!(snapshot_fsck(&dir).unwrap().clean());

        // Flip one payload byte: the chunk no longer re-hashes.
        let seg_path = dir.join("chunks-0000.ktc");
        let mut bytes = fs::read(&seg_path).unwrap();
        let at = bytes.len() - 3;
        bytes[at] ^= 0xFF;
        fs::write(&seg_path, &bytes).unwrap();
        let report = snapshot_fsck(&dir).unwrap();
        assert!(!report.clean());
        assert!(report.hash_mismatches >= 1, "{report:?}");

        // Point a manifest row at a hash that does not exist.
        let manifest_path = dir.join("MANIFEST.json");
        let text = fs::read_to_string(&manifest_path).unwrap();
        let bogus = "0".repeat(32);
        let mut doc: ManifestDoc = serde_json::from_str(&text).unwrap();
        doc.snapshots[0].entries[0].hash = bogus;
        fs::write(&manifest_path, serde_json::to_string(&doc).unwrap()).unwrap();
        let report = snapshot_fsck(&dir).unwrap();
        assert!(report.dangling_refs >= 1, "{report:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsck_counts_refcount_drift_and_duplicates() {
        let mut store = SnapshotStore::new();
        store.ingest(
            "snap00",
            &record("snap00", "a.example", Os::Linux, None, 1),
            None,
        );
        let dir = tmp("fsck-refs");
        store.save(&dir).unwrap();
        let manifest_path = dir.join("MANIFEST.json");
        let mut doc: ManifestDoc =
            serde_json::from_str(&fs::read_to_string(&manifest_path).unwrap()).unwrap();
        // Inflate the declared refcount and duplicate the index row.
        doc.chunks[0].refs = 7;
        let dup = ChunkDoc {
            hash: doc.chunks[0].hash.clone(),
            seg: doc.chunks[0].seg,
            off: doc.chunks[0].off,
            len: doc.chunks[0].len,
            refs: 1,
        };
        doc.chunks.push(dup);
        fs::write(&manifest_path, serde_json::to_string(&doc).unwrap()).unwrap();
        let report = snapshot_fsck(&dir).unwrap();
        assert!(report.refcount_mismatches >= 1, "{report:?}");
        assert!(report.duplicate_chunks >= 1, "{report:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn content_hash_separates_close_inputs() {
        let a = ContentHash::of(b"abcdef");
        let b = ContentHash::of(b"abcdeg");
        let c = ContentHash::of(b"abcdef ");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, ContentHash::of(b"abcdef"));
        assert_eq!(ContentHash::from_hex(&a.to_hex()), Some(a));
        assert_eq!(ContentHash::from_hex("zz"), None);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for d in ["a.example", "b.example", "weird-domain.example"] {
            let s = shard_of(d);
            assert!(s < SNAPSHOT_SHARDS);
            assert_eq!(s, shard_of(d));
        }
    }
}
