//! The append-only telemetry store.
//!
//! Records are encoded into append-only byte segments; an in-memory
//! index maps `(crawl, domain, os)` to segment offsets. Workers on a
//! crawl pool append concurrently through an `RwLock`. Reads
//! decode on demand — the store keeps bytes, not structs, so memory
//! stays proportional to the (compact) encoded size.

use std::collections::HashMap;

use bytes::Bytes;
use kt_netbase::Os;
use std::sync::RwLock;

use crate::codec::{decode, encode, CodecError};
use crate::record::{CrawlId, VisitRecord};

/// Key of one visit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct VisitKey {
    crawl: String,
    domain: String,
    os: Os,
}

const SEGMENT_TARGET: usize = 4 << 20; // start a new segment near 4 MiB

#[derive(Default, Debug)]
struct Inner {
    segments: Vec<Vec<u8>>,
    /// (segment index, byte offset, byte length) per visit.
    index: HashMap<VisitKey, (usize, usize, usize)>,
    /// Insertion order, for stable full scans.
    order: Vec<VisitKey>,
}

/// Concurrent append-only store of visit records.
#[derive(Default, Debug)]
pub struct TelemetryStore {
    inner: RwLock<Inner>,
}

impl TelemetryStore {
    /// An empty store.
    pub fn new() -> TelemetryStore {
        TelemetryStore::default()
    }

    /// Append one record (last write wins per key).
    pub fn append(&self, record: &VisitRecord) {
        let encoded = encode(record);
        let key = VisitKey {
            crawl: record.crawl.as_str().to_string(),
            domain: record.domain.clone(),
            os: record.os,
        };
        let mut inner = self.inner.write().expect("store lock poisoned");
        if inner
            .segments
            .last()
            .map(|s| s.len() >= SEGMENT_TARGET)
            .unwrap_or(true)
        {
            inner.segments.push(Vec::with_capacity(SEGMENT_TARGET));
        }
        let seg_idx = inner.segments.len() - 1;
        let segment = &mut inner.segments[seg_idx];
        let offset = segment.len();
        segment.extend_from_slice(&encoded);
        let len = encoded.len();
        if inner
            .index
            .insert(key.clone(), (seg_idx, offset, len))
            .is_none()
        {
            inner.order.push(key);
        }
    }

    /// Number of stored visits.
    pub fn len(&self) -> usize {
        self.inner.read().expect("store lock poisoned").index.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded bytes.
    pub fn byte_size(&self) -> usize {
        self.inner
            .read()
            .expect("store lock poisoned")
            .segments
            .iter()
            .map(Vec::len)
            .sum()
    }

    /// Indexed point lookup.
    pub fn get(&self, crawl: &CrawlId, domain: &str, os: Os) -> Option<VisitRecord> {
        let inner = self.inner.read().expect("store lock poisoned");
        let key = VisitKey {
            crawl: crawl.as_str().to_string(),
            domain: domain.to_string(),
            os,
        };
        let &(seg, off, len) = inner.index.get(&key)?;
        let bytes = Bytes::copy_from_slice(&inner.segments[seg][off..off + len]);
        decode(bytes).ok()
    }

    /// All records of one crawl, in insertion order (decoded lazily
    /// into a vector — callers typically aggregate immediately).
    pub fn crawl_records(&self, crawl: &CrawlId) -> Vec<VisitRecord> {
        let inner = self.inner.read().expect("store lock poisoned");
        inner
            .order
            .iter()
            .filter(|k| k.crawl == crawl.as_str())
            .filter_map(|k| {
                let &(seg, off, len) = inner.index.get(k)?;
                let bytes = Bytes::copy_from_slice(&inner.segments[seg][off..off + len]);
                decode(bytes).ok()
            })
            .collect()
    }

    /// All records of one crawl on one OS.
    pub fn crawl_records_on(&self, crawl: &CrawlId, os: Os) -> Vec<VisitRecord> {
        self.crawl_records(crawl)
            .into_iter()
            .filter(|r| r.os == os)
            .collect()
    }

    /// Full scan over every stored record (the unindexed ablation
    /// path: decode every segment sequentially).
    pub fn scan_all(&self) -> Result<Vec<VisitRecord>, CodecError> {
        let inner = self.inner.read().expect("store lock poisoned");
        let mut out = Vec::with_capacity(inner.index.len());
        for key in &inner.order {
            let &(seg, off, len) = inner.index.get(key).ok_or(CodecError::Truncated)?;
            let bytes = Bytes::copy_from_slice(&inner.segments[seg][off..off + len]);
            out.push(decode(bytes)?);
        }
        Ok(out)
    }

    /// Export every record of a crawl as a JSON array string.
    pub fn export_json(&self, crawl: &CrawlId) -> String {
        serde_json::to_string(&self.crawl_records(crawl)).expect("records serialise")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LoadOutcome;

    fn rec(crawl: CrawlId, domain: &str, os: Os) -> VisitRecord {
        VisitRecord {
            crawl,
            domain: domain.to_string(),
            rank: Some(42),
            malicious_category: None,
            os,
            outcome: LoadOutcome::Success,
            loaded_at_ms: 300,
            events: Vec::new(),
        }
    }

    #[test]
    fn append_and_lookup() {
        let store = TelemetryStore::new();
        store.append(&rec(CrawlId::top2020(), "a.example", Os::Windows));
        store.append(&rec(CrawlId::top2020(), "a.example", Os::Linux));
        store.append(&rec(CrawlId::top2021(), "a.example", Os::Windows));
        assert_eq!(store.len(), 3);
        let got = store
            .get(&CrawlId::top2020(), "a.example", Os::Windows)
            .unwrap();
        assert_eq!(got.domain, "a.example");
        assert!(store
            .get(&CrawlId::top2020(), "a.example", Os::MacOs)
            .is_none());
    }

    #[test]
    fn crawl_partitioning() {
        let store = TelemetryStore::new();
        for i in 0..10 {
            store.append(&rec(
                CrawlId::top2020(),
                &format!("d{i}.example"),
                Os::Linux,
            ));
        }
        for i in 0..4 {
            store.append(&rec(
                CrawlId::malicious(),
                &format!("m{i}.example"),
                Os::Linux,
            ));
        }
        assert_eq!(store.crawl_records(&CrawlId::top2020()).len(), 10);
        assert_eq!(store.crawl_records(&CrawlId::malicious()).len(), 4);
        assert_eq!(store.crawl_records(&CrawlId::top2021()).len(), 0);
    }

    #[test]
    fn last_write_wins() {
        let store = TelemetryStore::new();
        let mut first = rec(CrawlId::top2020(), "dup.example", Os::Windows);
        first.loaded_at_ms = 1;
        store.append(&first);
        let mut second = first.clone();
        second.loaded_at_ms = 2;
        store.append(&second);
        assert_eq!(store.len(), 1);
        assert_eq!(
            store
                .get(&CrawlId::top2020(), "dup.example", Os::Windows)
                .unwrap()
                .loaded_at_ms,
            2
        );
    }

    #[test]
    fn scan_matches_indexed_reads() {
        let store = TelemetryStore::new();
        for i in 0..50 {
            store.append(&rec(
                CrawlId::top2020(),
                &format!("s{i}.example"),
                Os::MacOs,
            ));
        }
        let scanned = store.scan_all().unwrap();
        assert_eq!(scanned.len(), 50);
        for r in &scanned {
            let via_index = store.get(&r.crawl, &r.domain, r.os).unwrap();
            assert_eq!(&via_index, r);
        }
    }

    #[test]
    fn concurrent_appends() {
        use std::sync::Arc;
        let store = Arc::new(TelemetryStore::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    store.append(&rec(
                        CrawlId::top2020(),
                        &format!("t{t}-d{i}.example"),
                        Os::Linux,
                    ));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 400);
        assert!(store.byte_size() > 0);
    }

    #[test]
    fn json_export() {
        let store = TelemetryStore::new();
        store.append(&rec(CrawlId::top2020(), "j.example", Os::Windows));
        let json = store.export_json(&CrawlId::top2020());
        assert!(json.contains("j.example"));
        let parsed: Vec<VisitRecord> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn segments_roll_over() {
        let store = TelemetryStore::new();
        // Records with big event-free bodies via long domain names.
        let long = "x".repeat(200);
        for i in 0..40_000 {
            store.append(&rec(
                CrawlId::top2020(),
                &format!("{long}{i}.example"),
                Os::Linux,
            ));
        }
        let inner_segments = store.byte_size();
        assert!(inner_segments > SEGMENT_TARGET, "multiple segments filled");
        assert_eq!(store.len(), 40_000);
    }
}
