//! The append-only telemetry store.
//!
//! Records are encoded into append-only byte segments; an in-memory
//! index maps `(crawl, domain, os)` to segment offsets. The store is
//! built for a crawl pool hammering it from many workers at once:
//!
//! * **Lock striping** — keys are hashed across [`SHARD_COUNT`]
//!   shards, each behind its own `RwLock`, so concurrent appends from
//!   different workers almost never contend on the same lock, and the
//!   per-append critical section is a hash-map insert plus a byte
//!   copy (encoding happens outside the lock).
//! * **Interned crawl ids** — campaign names (`top2020`, …) are
//!   interned to a `u32` once per campaign, so the append hot path
//!   never clones the crawl-id `String`.
//! * **A filter-first index** — each shard indexes
//!   `crawl → domain → [per-OS slot]`, so per-crawl and per-OS reads
//!   select exactly the matching byte ranges *before* decoding
//!   anything, instead of string-comparing and decoding the world.
//! * **Zero-copy reads** — full segments are sealed into shared
//!   [`Bytes`]; reads slice the shared buffer instead of copying it.
//!   Bulk readers seal the in-flight segment first, so post-crawl
//!   analysis never copies segment bytes at all.
//!
//! Reads decode on demand — the store keeps bytes, not structs, so
//! memory stays proportional to the (compact) encoded size. Bulk
//! reads return records sorted by (domain, OS) in the paper's OS
//! column order, which is what makes downstream analysis reproducible
//! whatever the append interleaving was.

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;
use kt_netbase::Os;
use std::sync::RwLock;

use crate::codec::{decode, encode, CodecError};
use crate::record::{CrawlId, VisitRecord};
use crate::segment::{ShardSpill, SpillConfig};

/// Number of lock-striped shards. A small power of two: enough that an
/// 8-worker crawl pool rarely collides, small enough that per-shard
/// segments still fill.
pub const SHARD_COUNT: usize = 16;

/// OS slots per domain, in the paper's column order (W, L, M).
const N_OS: usize = 3;

/// Start a new segment once the active one reaches this size. The
/// target is per shard, so the whole store seals around
/// `SHARD_COUNT * SEGMENT_TARGET` bytes of buffered appends — which,
/// with spilling enabled, is also the store's whole steady-state heap
/// footprint for segment data.
pub const SEGMENT_TARGET: usize = 512 << 10;

/// The paper's OS column order doubles as the slot index.
fn os_slot(os: Os) -> usize {
    match os {
        Os::Windows => 0,
        Os::Linux => 1,
        Os::MacOs => 2,
    }
}

/// Location of one encoded record: logical segment number within its
/// shard, byte offset, byte length. Segments seal in order, so a
/// logical number `< sealed.len()` addresses a sealed segment and the
/// number `== sealed.len()` addresses the active buffer.
#[derive(Debug, Clone, Copy)]
struct Loc {
    seg: u32,
    off: u32,
    len: u32,
}

#[derive(Default, Debug)]
struct ShardInner {
    /// Immutable, shareable segments — reads slice these without
    /// copying. With spilling enabled these are mmap-backed (or
    /// resident-fallback) views of segment files instead of heap
    /// buffers.
    sealed: Vec<Bytes>,
    /// The in-flight segment; sealed when full or when a bulk reader
    /// needs a stable view.
    active: Vec<u8>,
    /// crawl → domain → per-OS record location.
    index: HashMap<u32, BTreeMap<String, [Option<Loc>; N_OS]>>,
    /// Number of `Some` slots in `index`.
    visits: usize,
    /// When set, sealed buffers are written to segment files and
    /// served back through [`crate::segment`] instead of staying on
    /// the heap.
    spill: Option<ShardSpill>,
    /// Sealed segments successfully spilled to disk.
    spilled: usize,
    /// Bytes of sealed segments still on the heap (spill disabled, or
    /// a spill write that failed and degraded to resident).
    sealed_heap_bytes: usize,
    /// Per-shard seal threshold override (`None` = [`SEGMENT_TARGET`]).
    target: Option<usize>,
}

impl ShardInner {
    /// Seal the active buffer into an immutable shared segment —
    /// spilled to a segment file when the shard has a spill target,
    /// kept on the heap otherwise (or when the spill write fails:
    /// spilling is a memory optimization, never load-bearing).
    fn seal(&mut self) {
        if self.active.is_empty() {
            return;
        }
        let buf = std::mem::take(&mut self.active);
        let segment = match &self.spill {
            Some(spill) => {
                let (bytes, spilled) = spill.spill(self.sealed.len(), buf);
                if spilled {
                    self.spilled += 1;
                } else {
                    self.sealed_heap_bytes += bytes.len();
                }
                bytes
            }
            None => {
                self.sealed_heap_bytes += buf.len();
                Bytes::from(buf)
            }
        };
        self.sealed.push(segment);
    }

    /// The bytes of one located record. Sealed segments are sliced
    /// (no copy); only records still in the active buffer pay a copy.
    fn read(&self, loc: Loc) -> Bytes {
        let (off, len) = (loc.off as usize, loc.len as usize);
        match self.sealed.get(loc.seg as usize) {
            Some(segment) => segment.slice(off..off + len),
            None => Bytes::copy_from_slice(&self.active[off..off + len]),
        }
    }

    /// Decode every record of `crawl` in this shard, in (domain, OS)
    /// order. Callers must have sealed first if they want zero-copy.
    fn crawl_records(&self, crawl: u32, os: Option<Os>) -> Vec<VisitRecord> {
        let Some(by_domain) = self.index.get(&crawl) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for slots in by_domain.values() {
            for (slot, loc) in slots.iter().enumerate() {
                if let Some(os) = os {
                    if os_slot(os) != slot {
                        continue;
                    }
                }
                if let Some(loc) = loc {
                    if let Ok(record) = decode(self.read(*loc)) {
                        out.push(record);
                    }
                }
            }
        }
        out
    }
}

#[derive(Default, Debug)]
struct Shard {
    inner: RwLock<ShardInner>,
}

/// The crawl-id interner: campaign names are few and long-lived, so
/// each is assigned a dense `u32` on first append and the hot path
/// only ever compares integers.
#[derive(Default, Debug)]
struct Interner {
    by_name: HashMap<String, u32>,
    names: Vec<CrawlId>,
}

/// Concurrent append-only store of visit records.
#[derive(Default, Debug)]
pub struct TelemetryStore {
    crawls: RwLock<Interner>,
    shards: [Shard; SHARD_COUNT],
}

/// FNV-1a over the interned crawl id, the domain, and the OS slot.
fn shard_of(crawl: u32, domain: &str, os: Os) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in crawl.to_le_bytes() {
        mix(b);
    }
    for b in domain.bytes() {
        mix(b);
    }
    mix(os_slot(os) as u8);
    (h % SHARD_COUNT as u64) as usize
}

impl TelemetryStore {
    /// An empty store.
    pub fn new() -> TelemetryStore {
        TelemetryStore::default()
    }

    /// An empty store that spills sealed segments to files under
    /// `config.dir`, reading them back in `config.mode` — the
    /// larger-than-RAM path: the heap only ever holds each shard's
    /// active buffer, so resident set stays flat however big the
    /// campaign grows. Creates the directory; fails only if it cannot.
    pub fn with_spill(config: SpillConfig) -> std::io::Result<TelemetryStore> {
        std::fs::create_dir_all(&config.dir)?;
        let store = TelemetryStore::default();
        for (i, shard) in store.shards.iter().enumerate() {
            let mut inner = shard.inner.write().expect("store lock poisoned");
            inner.spill = Some(ShardSpill {
                dir: config.dir.clone(),
                shard: i,
                mode: config.mode,
            });
            inner.target = config.segment_target;
        }
        Ok(store)
    }

    /// Seal every shard's active buffer (spilling it when spill is
    /// configured). Bulk readers do this lazily per shard; benches and
    /// the flat-memory gate call it explicitly to force the whole
    /// store out of the heap at a known point.
    pub fn seal_all(&self) {
        for shard in &self.shards {
            shard.inner.write().expect("store lock poisoned").seal();
        }
    }

    /// Sealed segments that were successfully spilled to disk.
    pub fn spilled_segments(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.inner.read().expect("store lock poisoned").spilled)
            .sum()
    }

    /// Heap bytes currently held in active (unsealed) buffers — with
    /// spilling enabled this is the store's whole heap footprint for
    /// segment data, and it is bounded by
    /// `SHARD_COUNT * SEGMENT_TARGET` however many records stream
    /// through.
    pub fn resident_segment_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let inner = s.inner.read().expect("store lock poisoned");
                inner.sealed_heap_bytes + inner.active.len()
            })
            .sum()
    }

    /// Intern a crawl id, assigning a dense `u32` on first sight.
    fn intern(&self, crawl: &CrawlId) -> u32 {
        if let Some(&id) = self
            .crawls
            .read()
            .expect("interner lock poisoned")
            .by_name
            .get(crawl.as_str())
        {
            return id;
        }
        let mut interner = self.crawls.write().expect("interner lock poisoned");
        if let Some(&id) = interner.by_name.get(crawl.as_str()) {
            return id;
        }
        let id = interner.names.len() as u32;
        interner.names.push(crawl.clone());
        interner.by_name.insert(crawl.as_str().to_string(), id);
        id
    }

    /// Borrowed-key lookup of an already-interned crawl id: never
    /// allocates, returns `None` for crawls the store has never seen.
    fn lookup(&self, crawl: &str) -> Option<u32> {
        self.crawls
            .read()
            .expect("interner lock poisoned")
            .by_name
            .get(crawl)
            .copied()
    }

    /// Append one record (last write wins per key).
    pub fn append(&self, record: &VisitRecord) {
        // Encode outside the lock: the critical section is only the
        // byte copy and the index insert.
        let encoded = encode(record);
        let crawl = self.intern(&record.crawl);
        let shard = &self.shards[shard_of(crawl, &record.domain, record.os)];
        let mut guard = shard.inner.write().expect("store lock poisoned");
        let inner = &mut *guard;
        if inner.active.len() >= inner.target.unwrap_or(SEGMENT_TARGET) {
            inner.seal();
        }
        let loc = Loc {
            seg: inner.sealed.len() as u32,
            off: inner.active.len() as u32,
            len: encoded.len() as u32,
        };
        inner.active.extend_from_slice(&encoded);
        let by_domain = inner.index.entry(crawl).or_default();
        // Clone the domain string only on first sight of the domain;
        // overwrites and same-domain other-OS appends borrow.
        if !by_domain.contains_key(record.domain.as_str()) {
            by_domain.insert(record.domain.clone(), [None; N_OS]);
        }
        let slots = by_domain
            .get_mut(record.domain.as_str())
            .expect("domain entry just ensured");
        let slot = &mut slots[os_slot(record.os)];
        if slot.is_none() {
            inner.visits += 1;
        }
        *slot = Some(loc);
    }

    /// Number of stored visits.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.inner.read().expect("store lock poisoned").visits)
            .sum()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded bytes.
    pub fn byte_size(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let inner = s.inner.read().expect("store lock poisoned");
                inner.sealed.iter().map(Bytes::len).sum::<usize>() + inner.active.len()
            })
            .sum()
    }

    /// Number of byte segments across all shards (sealed + active),
    /// an observability hook for benches and tests.
    pub fn segment_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let inner = s.inner.read().expect("store lock poisoned");
                inner.sealed.len() + usize::from(!inner.active.is_empty())
            })
            .sum()
    }

    /// Number of lock-striped shards (the parallel analysis driver
    /// streams records shard by shard).
    pub fn shard_count(&self) -> usize {
        SHARD_COUNT
    }

    /// Every crawl id the store has seen, sorted by name.
    pub fn crawl_ids(&self) -> Vec<CrawlId> {
        let mut ids = self
            .crawls
            .read()
            .expect("interner lock poisoned")
            .names
            .clone();
        ids.sort();
        ids
    }

    /// Indexed point lookup. The key path is allocation-free: the
    /// crawl resolves through the interner and the domain through a
    /// borrowed `&str` map lookup — no `String` or key struct is
    /// built per call.
    pub fn get(&self, crawl: &CrawlId, domain: &str, os: Os) -> Option<VisitRecord> {
        let crawl = self.lookup(crawl.as_str())?;
        let shard = &self.shards[shard_of(crawl, domain, os)];
        let inner = shard.inner.read().expect("store lock poisoned");
        let loc = (*inner.index.get(&crawl)?.get(domain)?)[os_slot(os)]?;
        decode(inner.read(loc)).ok()
    }

    /// All records of one crawl on one OS of one shard, in domain
    /// order — the unit the parallel analysis driver streams. Seals
    /// the shard's active segment so every returned record was sliced,
    /// not copied, out of shared segment memory.
    pub fn shard_records_on(
        &self,
        crawl: &CrawlId,
        shard: usize,
        os: Option<Os>,
    ) -> Vec<VisitRecord> {
        let Some(crawl) = self.lookup(crawl.as_str()) else {
            return Vec::new();
        };
        let mut inner = self.shards[shard]
            .inner
            .write()
            .expect("store lock poisoned");
        inner.seal();
        inner.crawl_records(crawl, os)
    }

    /// The encoded bytes of every record of one crawl on one OS of one
    /// shard, in the same (domain, OS) order as
    /// [`Self::shard_records_on`] — but *not decoded*. Seals the
    /// shard's active segment first, so every returned `Bytes` is a
    /// zero-copy slice of shared segment memory that outlives the
    /// shard lock; the caller decodes with
    /// [`decode_view`](crate::codec::decode_view) and borrows straight
    /// from the segment.
    pub fn shard_raw_on(&self, crawl: &CrawlId, shard: usize, os: Option<Os>) -> Vec<Bytes> {
        let Some(crawl) = self.lookup(crawl.as_str()) else {
            return Vec::new();
        };
        let mut inner = self.shards[shard]
            .inner
            .write()
            .expect("store lock poisoned");
        inner.seal();
        let Some(by_domain) = inner.index.get(&crawl) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for slots in by_domain.values() {
            for (slot, loc) in slots.iter().enumerate() {
                if let Some(os) = os {
                    if os_slot(os) != slot {
                        continue;
                    }
                }
                if let Some(loc) = loc {
                    out.push(inner.read(*loc));
                }
            }
        }
        out
    }

    /// All records of one crawl, sorted by (domain, OS) in the
    /// paper's OS column order. OS slots are selected from the index
    /// before anything is decoded.
    pub fn crawl_records(&self, crawl: &CrawlId) -> Vec<VisitRecord> {
        self.crawl_records_filtered(crawl, None)
    }

    /// All records of one crawl on one OS, sorted by domain. The OS
    /// filter is applied on the index, so only matching records are
    /// ever decoded.
    pub fn crawl_records_on(&self, crawl: &CrawlId, os: Os) -> Vec<VisitRecord> {
        self.crawl_records_filtered(crawl, Some(os))
    }

    fn crawl_records_filtered(&self, crawl: &CrawlId, os: Option<Os>) -> Vec<VisitRecord> {
        let mut out = Vec::new();
        for shard in 0..SHARD_COUNT {
            out.extend(self.shard_records_on(crawl, shard, os));
        }
        out.sort_by(|a, b| {
            a.domain
                .cmp(&b.domain)
                .then(os_slot(a.os).cmp(&os_slot(b.os)))
        });
        out
    }

    /// Full scan over every stored record, sorted by (crawl, domain,
    /// OS). Unlike [`Self::crawl_records`] this propagates decode
    /// errors — it is the persistence layer's integrity pass.
    pub fn scan_all(&self) -> Result<Vec<VisitRecord>, CodecError> {
        let mut out = Vec::with_capacity(self.len());
        for crawl in self.crawl_ids() {
            let crawl_u32 = self.lookup(crawl.as_str()).expect("listed crawl interned");
            let mut records = Vec::new();
            for shard in &self.shards {
                let mut inner = shard.inner.write().expect("store lock poisoned");
                inner.seal();
                let Some(by_domain) = inner.index.get(&crawl_u32) else {
                    continue;
                };
                for slots in by_domain.values() {
                    for loc in slots.iter().flatten() {
                        records.push(decode(inner.read(*loc))?);
                    }
                }
            }
            records.sort_by(|a, b| {
                a.domain
                    .cmp(&b.domain)
                    .then(os_slot(a.os).cmp(&os_slot(b.os)))
            });
            out.extend(records);
        }
        Ok(out)
    }

    /// Export every record of a crawl as a JSON array string.
    pub fn export_json(&self, crawl: &CrawlId) -> String {
        serde_json::to_string(&self.crawl_records(crawl)).expect("records serialise")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LoadOutcome;

    fn rec(crawl: CrawlId, domain: &str, os: Os) -> VisitRecord {
        VisitRecord {
            crawl,
            domain: domain.to_string(),
            rank: Some(42),
            malicious_category: None,
            os,
            outcome: LoadOutcome::Success,
            loaded_at_ms: 300,
            events: Vec::new(),
        }
    }

    #[test]
    fn append_and_lookup() {
        let store = TelemetryStore::new();
        store.append(&rec(CrawlId::top2020(), "a.example", Os::Windows));
        store.append(&rec(CrawlId::top2020(), "a.example", Os::Linux));
        store.append(&rec(CrawlId::top2021(), "a.example", Os::Windows));
        assert_eq!(store.len(), 3);
        let got = store
            .get(&CrawlId::top2020(), "a.example", Os::Windows)
            .unwrap();
        assert_eq!(got.domain, "a.example");
        assert!(store
            .get(&CrawlId::top2020(), "a.example", Os::MacOs)
            .is_none());
        assert!(store
            .get(&CrawlId::malicious(), "a.example", Os::Windows)
            .is_none());
    }

    #[test]
    fn crawl_partitioning() {
        let store = TelemetryStore::new();
        for i in 0..10 {
            store.append(&rec(
                CrawlId::top2020(),
                &format!("d{i}.example"),
                Os::Linux,
            ));
        }
        for i in 0..4 {
            store.append(&rec(
                CrawlId::malicious(),
                &format!("m{i}.example"),
                Os::Linux,
            ));
        }
        assert_eq!(store.crawl_records(&CrawlId::top2020()).len(), 10);
        assert_eq!(store.crawl_records(&CrawlId::malicious()).len(), 4);
        assert_eq!(store.crawl_records(&CrawlId::top2021()).len(), 0);
        assert_eq!(
            store.crawl_ids(),
            vec![CrawlId::malicious(), CrawlId::top2020()]
        );
    }

    #[test]
    fn bulk_reads_are_sorted_by_domain_then_os() {
        let store = TelemetryStore::new();
        // Appended deliberately out of order.
        store.append(&rec(CrawlId::top2020(), "zz.example", Os::MacOs));
        store.append(&rec(CrawlId::top2020(), "aa.example", Os::Linux));
        store.append(&rec(CrawlId::top2020(), "mm.example", Os::Windows));
        store.append(&rec(CrawlId::top2020(), "aa.example", Os::Windows));
        let records = store.crawl_records(&CrawlId::top2020());
        let keys: Vec<(String, Os)> = records.iter().map(|r| (r.domain.clone(), r.os)).collect();
        assert_eq!(
            keys,
            vec![
                ("aa.example".to_string(), Os::Windows),
                ("aa.example".to_string(), Os::Linux),
                ("mm.example".to_string(), Os::Windows),
                ("zz.example".to_string(), Os::MacOs),
            ]
        );
    }

    #[test]
    fn os_filter_applies_before_decode() {
        let store = TelemetryStore::new();
        for i in 0..6 {
            for os in Os::ALL {
                store.append(&rec(CrawlId::top2020(), &format!("s{i}.example"), os));
            }
        }
        let linux = store.crawl_records_on(&CrawlId::top2020(), Os::Linux);
        assert_eq!(linux.len(), 6);
        assert!(linux.iter().all(|r| r.os == Os::Linux));
        let domains: Vec<&str> = linux.iter().map(|r| r.domain.as_str()).collect();
        let mut sorted = domains.clone();
        sorted.sort();
        assert_eq!(domains, sorted, "domain-sorted");
    }

    #[test]
    fn shard_records_cover_the_crawl_exactly_once() {
        let store = TelemetryStore::new();
        for i in 0..40 {
            store.append(&rec(
                CrawlId::top2020(),
                &format!("s{i}.example"),
                Os::Linux,
            ));
        }
        let mut via_shards: Vec<VisitRecord> = (0..store.shard_count())
            .flat_map(|s| store.shard_records_on(&CrawlId::top2020(), s, None))
            .collect();
        via_shards.sort_by(|a, b| a.domain.cmp(&b.domain));
        assert_eq!(via_shards, store.crawl_records(&CrawlId::top2020()));
    }

    #[test]
    fn shard_raw_matches_decoded_shard_records() {
        let store = TelemetryStore::new();
        for i in 0..40 {
            let os = [Os::Windows, Os::Linux, Os::MacOs][i % 3];
            store.append(&rec(CrawlId::top2020(), &format!("s{i}.example"), os));
        }
        for shard in 0..store.shard_count() {
            for os in [None, Some(Os::Linux)] {
                let decoded = store.shard_records_on(&CrawlId::top2020(), shard, os);
                let raw = store.shard_raw_on(&CrawlId::top2020(), shard, os);
                let via_view: Vec<VisitRecord> = raw
                    .iter()
                    .map(|bytes| {
                        crate::codec::decode_view(bytes)
                            .expect("stored records decode")
                            .to_owned()
                    })
                    .collect();
                assert_eq!(via_view, decoded, "shard {shard} os {os:?}");
            }
        }
        assert!(store.shard_raw_on(&CrawlId::top2021(), 0, None).is_empty());
    }

    #[test]
    fn last_write_wins() {
        let store = TelemetryStore::new();
        let mut first = rec(CrawlId::top2020(), "dup.example", Os::Windows);
        first.loaded_at_ms = 1;
        store.append(&first);
        let mut second = first.clone();
        second.loaded_at_ms = 2;
        store.append(&second);
        assert_eq!(store.len(), 1);
        assert_eq!(
            store
                .get(&CrawlId::top2020(), "dup.example", Os::Windows)
                .unwrap()
                .loaded_at_ms,
            2
        );
    }

    #[test]
    fn scan_matches_indexed_reads() {
        let store = TelemetryStore::new();
        for i in 0..50 {
            store.append(&rec(
                CrawlId::top2020(),
                &format!("s{i}.example"),
                Os::MacOs,
            ));
        }
        let scanned = store.scan_all().unwrap();
        assert_eq!(scanned.len(), 50);
        for r in &scanned {
            let via_index = store.get(&r.crawl, &r.domain, r.os).unwrap();
            assert_eq!(&via_index, r);
        }
    }

    #[test]
    fn reads_interleaved_with_appends_stay_consistent() {
        // Bulk reads seal the active segment; appends after a seal
        // must land in a fresh segment without invalidating anything.
        let store = TelemetryStore::new();
        for i in 0..10 {
            store.append(&rec(
                CrawlId::top2020(),
                &format!("a{i}.example"),
                Os::Linux,
            ));
        }
        assert_eq!(store.crawl_records(&CrawlId::top2020()).len(), 10);
        for i in 0..10 {
            store.append(&rec(
                CrawlId::top2020(),
                &format!("b{i}.example"),
                Os::Linux,
            ));
        }
        assert_eq!(store.crawl_records(&CrawlId::top2020()).len(), 20);
        for i in 0..10 {
            assert!(store
                .get(&CrawlId::top2020(), &format!("a{i}.example"), Os::Linux)
                .is_some());
        }
    }

    #[test]
    fn concurrent_appends() {
        use std::sync::Arc;
        let store = Arc::new(TelemetryStore::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    store.append(&rec(
                        CrawlId::top2020(),
                        &format!("t{t}-d{i}.example"),
                        Os::Linux,
                    ));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 400);
        assert!(store.byte_size() > 0);
    }

    #[test]
    fn concurrent_appends_across_crawls_intern_once() {
        use std::sync::Arc;
        let store = Arc::new(TelemetryStore::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let crawl = if i % 2 == 0 {
                        CrawlId::top2020()
                    } else {
                        CrawlId::top2021()
                    };
                    store.append(&rec(crawl, &format!("t{t}-d{i}.example"), Os::Linux));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.crawl_ids().len(), 2);
        assert_eq!(store.len(), 200);
    }

    #[test]
    fn json_export() {
        let store = TelemetryStore::new();
        store.append(&rec(CrawlId::top2020(), "j.example", Os::Windows));
        let json = store.export_json(&CrawlId::top2020());
        assert!(json.contains("j.example"));
        let parsed: Vec<VisitRecord> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn segments_roll_over() {
        let store = TelemetryStore::new();
        // Records with big event-free bodies via long domain names.
        let long = "x".repeat(200);
        for i in 0..40_000 {
            store.append(&rec(
                CrawlId::top2020(),
                &format!("{long}{i}.example"),
                Os::Linux,
            ));
        }
        assert!(
            store.byte_size() > SEGMENT_TARGET,
            "multiple segments filled"
        );
        assert!(
            store.segment_count() > SHARD_COUNT,
            "at least one shard rolled its segment over"
        );
        assert_eq!(store.len(), 40_000);
    }

    fn spill_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kt-store-spill-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn spilled_store_reads_back_identically() {
        use crate::segment::SpillConfig;
        let dir = spill_dir("identical");
        let plain = TelemetryStore::new();
        let spilled =
            TelemetryStore::with_spill(SpillConfig::mmap(&dir).with_segment_target(2_048)).unwrap();
        for i in 0..500 {
            let r = rec(CrawlId::top2020(), &format!("s{i:04}.example"), Os::Linux);
            plain.append(&r);
            spilled.append(&r);
        }
        spilled.seal_all();
        assert!(
            spilled.spilled_segments() > 0,
            "a 2 KiB target spills a 500-record store"
        );
        assert_eq!(
            spilled.crawl_records(&CrawlId::top2020()),
            plain.crawl_records(&CrawlId::top2020()),
            "mmap-backed reads equal heap reads"
        );
        for i in (0..500).step_by(37) {
            assert_eq!(
                spilled.get(&CrawlId::top2020(), &format!("s{i:04}.example"), Os::Linux),
                plain.get(&CrawlId::top2020(), &format!("s{i:04}.example"), Os::Linux),
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spilling_keeps_the_heap_footprint_flat() {
        use crate::segment::SpillConfig;
        let dir = spill_dir("flat");
        let target = 4_096usize;
        let store = TelemetryStore::with_spill(SpillConfig::mmap(&dir).with_segment_target(target))
            .unwrap();
        let long = "x".repeat(120);
        for i in 0..2_000 {
            store.append(&rec(
                CrawlId::top2020(),
                &format!("{long}{i}.example"),
                Os::Linux,
            ));
        }
        store.seal_all();
        assert!(
            store.byte_size() > target * SHARD_COUNT,
            "well past the whole store's buffered-segment budget"
        );
        assert_eq!(
            store.resident_segment_bytes(),
            0,
            "after seal_all every segment lives on disk, not the heap"
        );
        assert_eq!(store.len(), 2_000, "nothing lost to spilling");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_modes_are_read_equivalent() {
        use crate::segment::{SegmentMode, SpillConfig};
        let dir_m = spill_dir("mode-mmap");
        let dir_r = spill_dir("mode-resident");
        let mmap_store =
            TelemetryStore::with_spill(SpillConfig::mmap(&dir_m).with_segment_target(1_024))
                .unwrap();
        let resident_store =
            TelemetryStore::with_spill(SpillConfig::resident(&dir_r).with_segment_target(1_024))
                .unwrap();
        assert_eq!(
            SpillConfig::resident(&dir_r).mode,
            SegmentMode::Resident,
            "constructor picks the explicit fallback mode"
        );
        for i in 0..300 {
            let os = Os::ALL[i % 3];
            let r = rec(CrawlId::top2020(), &format!("eq{i:03}.example"), os);
            mmap_store.append(&r);
            resident_store.append(&r);
        }
        assert_eq!(
            mmap_store.crawl_records(&CrawlId::top2020()),
            resident_store.crawl_records(&CrawlId::top2020()),
        );
        std::fs::remove_dir_all(&dir_m).ok();
        std::fs::remove_dir_all(&dir_r).ok();
    }
}
