//! On-disk persistence for the telemetry store.
//!
//! The paper's pipeline parsed 11 TB of NetLog into a database once and
//! queried it for months; a store that only lives in memory would force
//! re-crawling before every analysis. The format is deliberately dumb
//! and robust — a magic header followed by length-prefixed encoded
//! records — so a partially-written file (killed crawl) loads up to the
//! last complete record, mirroring the NetLog capture parser's
//! truncation recovery.
//!
//! ```text
//! file   = magic(8B = "KTSTORE1") record*
//! record = len(u32 LE) bytes[len]     (bytes = codec::encode output)
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::codec::{decode, encode, CodecError};
use crate::journal;

use crate::store::TelemetryStore;

/// File magic for store snapshots.
pub const MAGIC: &[u8; 8] = b"KTSTORE1";

/// Upper bound on one record's encoded length. A corrupted u32 length
/// field (e.g. `0xFFFF_FFFF`) must be rejected as corrupt, not turned
/// into a ~4 GB allocation before the first read.
pub const MAX_RECORD_LEN: usize = 16 << 20;

/// Result of loading a snapshot.
#[derive(Debug)]
pub struct LoadReport {
    /// The reconstructed store.
    pub store: TelemetryStore,
    /// Records successfully loaded.
    pub loaded: usize,
    /// True if the file ended mid-record (load stopped at the last
    /// complete one).
    pub truncated: bool,
    /// Records whose bytes failed to decode (skipped).
    pub corrupt: usize,
}

/// Result of writing a snapshot: how much went out and how hard it was
/// pushed to disk (the `LoadReport` counterpart for the write path).
#[derive(Debug, Clone, Copy)]
pub struct SaveReport {
    /// Records written.
    pub records: usize,
    /// Bytes written, including the magic.
    pub bytes: u64,
    /// `fsync` calls issued (file before rename, directory after).
    pub fsyncs: usize,
}

/// Persistence errors.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the store magic.
    BadMagic,
    /// An in-memory store scan failed while saving or comparing — a
    /// codec-level problem, not a file-format one.
    Scan(CodecError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a knock-talk store file"),
            PersistError::Scan(e) => write!(f, "in-memory store scan failed: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Write every record of the store to `path`, atomically: a temp file
/// fsynced before the rename (and the parent directory after), so a
/// power loss leaves either the old snapshot or the complete new one —
/// never an empty rename target.
pub fn save(store: &TelemetryStore, path: &Path) -> Result<SaveReport, PersistError> {
    let tmp = path.with_extension("tmp");
    let mut written = 0usize;
    let mut bytes_out = MAGIC.len() as u64;
    {
        let mut out = BufWriter::new(File::create(&tmp)?);
        out.write_all(MAGIC)?;
        for record in store.scan_all().map_err(PersistError::Scan)? {
            let bytes = encode(&record);
            out.write_all(&(bytes.len() as u32).to_le_bytes())?;
            out.write_all(&bytes)?;
            bytes_out += 4 + bytes.len() as u64;
            written += 1;
        }
        out.flush()?;
        out.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    journal::sync_parent_dir(path)?;
    Ok(SaveReport {
        records: written,
        bytes: bytes_out,
        fsyncs: 2,
    })
}

/// Load a snapshot, recovering from truncation and skipping corrupt
/// records.
pub fn load(path: &Path) -> Result<LoadReport, PersistError> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut input = BufReader::new(file);
    let mut magic = [0u8; 8];
    input
        .read_exact(&mut magic)
        .map_err(|_| PersistError::BadMagic)?;
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let store = TelemetryStore::new();
    let mut pos = MAGIC.len() as u64;
    let mut loaded = 0usize;
    let mut corrupt = 0usize;
    let mut truncated = false;
    loop {
        let mut len_bytes = [0u8; 4];
        match input.read_exact(&mut len_bytes) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        pos += 4;
        let len = u32::from_le_bytes(len_bytes) as usize;
        // A corrupted length field must never drive the allocation: cap
        // it against the sane record maximum and the bytes actually
        // left in the file. KTSTORE1 has no sync markers to resync on,
        // so a bad length ends the load (degraded, not fatal): an
        // oversized claim is corruption, a sane length that runs past
        // EOF is the familiar torn tail.
        let remaining = file_len.saturating_sub(pos);
        if len > MAX_RECORD_LEN {
            corrupt += 1;
            break;
        }
        if (len as u64) > remaining {
            truncated = true;
            break;
        }
        let mut bytes = vec![0u8; len];
        match input.read_exact(&mut bytes) {
            Ok(()) => pos += len as u64,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                truncated = true;
                break;
            }
            Err(e) => return Err(e.into()),
        }
        match decode(bytes::Bytes::from(bytes)) {
            Ok(record) => {
                store.append(&record);
                loaded += 1;
            }
            Err(_) => corrupt += 1,
        }
    }
    Ok(LoadReport {
        store,
        loaded,
        truncated,
        corrupt,
    })
}

/// Round-trip helper used by tests and the CLI: save, load, compare.
pub fn verify_round_trip(store: &TelemetryStore, path: &Path) -> Result<bool, PersistError> {
    save(store, path)?;
    let report = load(path)?;
    let a = store.scan_all().map_err(PersistError::Scan)?;
    let b = report.store.scan_all().map_err(PersistError::Scan)?;
    Ok(a == b && !report.truncated && report.corrupt == 0)
}

/// Load either store format by sniffing the magic: a `KTSTORE1`
/// snapshot loads directly, a `KTSTORE2` journal is replayed into a
/// store (valid visit frames only, idempotent dedup). This is what
/// read-side tools (`analyze`) use so both artifacts are queryable.
pub fn load_any(path: &Path) -> Result<LoadReport, PersistError> {
    if journal::is_journal(path) {
        let report = journal::replay(path).map_err(|e| match e {
            journal::JournalError::Io(io) => PersistError::Io(io),
            journal::JournalError::BadMagic => PersistError::BadMagic,
        })?;
        let loaded = report.visits.len();
        return Ok(LoadReport {
            store: report.store,
            loaded,
            truncated: report.truncated_tail,
            corrupt: report.corrupt_frames,
        });
    }
    load(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CrawlId, LoadOutcome, VisitRecord};
    use kt_netbase::Os;

    fn sample_store(n: usize) -> TelemetryStore {
        let store = TelemetryStore::new();
        for i in 0..n {
            store.append(&VisitRecord {
                crawl: CrawlId::top2020(),
                domain: format!("site{i}.example"),
                rank: Some(i as u32 + 1),
                malicious_category: None,
                os: Os::ALL[i % 3],
                outcome: LoadOutcome::Success,
                loaded_at_ms: 100 + i as u64,
                events: Vec::new(),
            });
        }
        store
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("kt-persist-{name}-{}", std::process::id()))
    }

    #[test]
    fn save_load_round_trip() {
        let store = sample_store(120);
        let path = tmp("roundtrip");
        assert!(verify_round_trip(&store, &path).unwrap());
        let report = load(&path).unwrap();
        assert_eq!(report.loaded, 120);
        assert!(!report.truncated);
        assert_eq!(report.corrupt, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_loads_prefix() {
        let store = sample_store(50);
        let path = tmp("trunc");
        save(&store, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() * 2 / 3]).unwrap();
        let report = load(&path).unwrap();
        assert!(report.truncated);
        assert!(report.loaded > 0 && report.loaded < 50);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTASTORE-file-contents").unwrap();
        assert!(matches!(load(&path), Err(PersistError::BadMagic)));
        std::fs::write(&path, b"KT").unwrap();
        assert!(matches!(load(&path), Err(PersistError::BadMagic)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_is_skipped_not_fatal() {
        let store = sample_store(10);
        let path = tmp("corrupt");
        save(&store, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the first record body (after magic+len).
        bytes[14] ^= 0xAA;
        std::fs::write(&path, &bytes).unwrap();
        let report = load(&path).unwrap();
        assert_eq!(report.loaded + report.corrupt, 10);
        assert!(report.corrupt >= 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store_round_trips() {
        let store = TelemetryStore::new();
        let path = tmp("empty");
        assert_eq!(save(&store, &path).unwrap().records, 0);
        let report = load(&path).unwrap();
        assert_eq!(report.loaded, 0);
        assert!(report.store.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_reports_bytes_and_fsyncs() {
        let store = sample_store(10);
        let path = tmp("savereport");
        let report = save(&store, &path).unwrap();
        assert_eq!(report.records, 10);
        assert_eq!(
            report.bytes,
            std::fs::metadata(&path).unwrap().len(),
            "reported bytes match the file"
        );
        assert_eq!(report.fsyncs, 2, "file before rename, directory after");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_length_field_does_not_allocate() {
        let store = sample_store(5);
        let path = tmp("hugelen");
        save(&store, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt the first record's length field to u32::MAX. Before
        // the cap this requested a ~4 GB allocation up front.
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let report = load(&path).unwrap();
        assert_eq!(report.loaded, 0);
        assert_eq!(report.corrupt, 1, "the oversized frame counts as corrupt");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sane_length_past_eof_is_truncation() {
        let store = sample_store(5);
        let path = tmp("pasteof");
        save(&store, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Claim a 1 MiB record (< MAX_RECORD_LEN) in a tiny file.
        bytes[8..12].copy_from_slice(&(1u32 << 20).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let report = load(&path).unwrap();
        assert!(report.truncated);
        assert_eq!(report.loaded, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_any_reads_both_formats() {
        use crate::journal::{JournalWriter, VisitDelta, FLAG_FINAL};
        let store = sample_store(8);
        let snap = tmp("any-snap");
        save(&store, &snap).unwrap();
        let report = load_any(&snap).unwrap();
        assert_eq!(report.loaded, 8);

        let jpath = tmp("any-journal");
        let w = JournalWriter::create(&jpath).unwrap();
        for record in store.scan_all().unwrap() {
            w.append_visit(&record, &VisitDelta::default(), FLAG_FINAL, false);
        }
        w.sync();
        let report = load_any(&jpath).unwrap();
        assert_eq!(report.loaded, 8);
        assert_eq!(
            report.store.scan_all().unwrap(),
            store.scan_all().unwrap(),
            "journal replay reconstructs the same records"
        );
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&jpath).ok();
    }
}
