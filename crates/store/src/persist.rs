//! On-disk persistence for the telemetry store.
//!
//! The paper's pipeline parsed 11 TB of NetLog into a database once and
//! queried it for months; a store that only lives in memory would force
//! re-crawling before every analysis. The format is deliberately dumb
//! and robust — a magic header followed by length-prefixed encoded
//! records — so a partially-written file (killed crawl) loads up to the
//! last complete record, mirroring the NetLog capture parser's
//! truncation recovery.
//!
//! ```text
//! file   = magic(8B = "KTSTORE1") record*
//! record = len(u32 LE) bytes[len]     (bytes = codec::encode output)
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::codec::{decode, encode};

use crate::store::TelemetryStore;

/// File magic for store snapshots.
pub const MAGIC: &[u8; 8] = b"KTSTORE1";

/// Result of loading a snapshot.
#[derive(Debug)]
pub struct LoadReport {
    /// The reconstructed store.
    pub store: TelemetryStore,
    /// Records successfully loaded.
    pub loaded: usize,
    /// True if the file ended mid-record (load stopped at the last
    /// complete one).
    pub truncated: bool,
    /// Records whose bytes failed to decode (skipped).
    pub corrupt: usize,
}

/// Persistence errors.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the store magic.
    BadMagic,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a knock-talk store file"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Write every record of the store to `path` (atomically enough for a
/// research pipeline: a temp file renamed into place).
pub fn save(store: &TelemetryStore, path: &Path) -> Result<usize, PersistError> {
    let tmp = path.with_extension("tmp");
    let mut written = 0usize;
    {
        let mut out = BufWriter::new(File::create(&tmp)?);
        out.write_all(MAGIC)?;
        for record in store.scan_all().map_err(|_| PersistError::BadMagic)? {
            let bytes = encode(&record);
            out.write_all(&(bytes.len() as u32).to_le_bytes())?;
            out.write_all(&bytes)?;
            written += 1;
        }
        out.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(written)
}

/// Load a snapshot, recovering from truncation and skipping corrupt
/// records.
pub fn load(path: &Path) -> Result<LoadReport, PersistError> {
    let mut input = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    input
        .read_exact(&mut magic)
        .map_err(|_| PersistError::BadMagic)?;
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let store = TelemetryStore::new();
    let mut loaded = 0usize;
    let mut corrupt = 0usize;
    let mut truncated = false;
    loop {
        let mut len_bytes = [0u8; 4];
        match input.read_exact(&mut len_bytes) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        let mut bytes = vec![0u8; len];
        match input.read_exact(&mut bytes) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                truncated = true;
                break;
            }
            Err(e) => return Err(e.into()),
        }
        match decode(bytes::Bytes::from(bytes)) {
            Ok(record) => {
                store.append(&record);
                loaded += 1;
            }
            Err(_) => corrupt += 1,
        }
    }
    Ok(LoadReport {
        store,
        loaded,
        truncated,
        corrupt,
    })
}

/// Round-trip helper used by tests and the CLI: save, load, compare.
pub fn verify_round_trip(store: &TelemetryStore, path: &Path) -> Result<bool, PersistError> {
    save(store, path)?;
    let report = load(path)?;
    let a = store.scan_all().map_err(|_| PersistError::BadMagic)?;
    let b = report
        .store
        .scan_all()
        .map_err(|_| PersistError::BadMagic)?;
    Ok(a == b && !report.truncated && report.corrupt == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CrawlId, LoadOutcome, VisitRecord};
    use kt_netbase::Os;

    fn sample_store(n: usize) -> TelemetryStore {
        let store = TelemetryStore::new();
        for i in 0..n {
            store.append(&VisitRecord {
                crawl: CrawlId::top2020(),
                domain: format!("site{i}.example"),
                rank: Some(i as u32 + 1),
                malicious_category: None,
                os: Os::ALL[i % 3],
                outcome: LoadOutcome::Success,
                loaded_at_ms: 100 + i as u64,
                events: Vec::new(),
            });
        }
        store
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("kt-persist-{name}-{}", std::process::id()))
    }

    #[test]
    fn save_load_round_trip() {
        let store = sample_store(120);
        let path = tmp("roundtrip");
        assert!(verify_round_trip(&store, &path).unwrap());
        let report = load(&path).unwrap();
        assert_eq!(report.loaded, 120);
        assert!(!report.truncated);
        assert_eq!(report.corrupt, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_loads_prefix() {
        let store = sample_store(50);
        let path = tmp("trunc");
        save(&store, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() * 2 / 3]).unwrap();
        let report = load(&path).unwrap();
        assert!(report.truncated);
        assert!(report.loaded > 0 && report.loaded < 50);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTASTORE-file-contents").unwrap();
        assert!(matches!(load(&path), Err(PersistError::BadMagic)));
        std::fs::write(&path, b"KT").unwrap();
        assert!(matches!(load(&path), Err(PersistError::BadMagic)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_is_skipped_not_fatal() {
        let store = sample_store(10);
        let path = tmp("corrupt");
        save(&store, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the first record body (after magic+len).
        bytes[14] ^= 0xAA;
        std::fs::write(&path, &bytes).unwrap();
        let report = load(&path).unwrap();
        assert_eq!(report.loaded + report.corrupt, 10);
        assert!(report.corrupt >= 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store_round_trips() {
        let store = TelemetryStore::new();
        let path = tmp("empty");
        assert_eq!(save(&store, &path).unwrap(), 0);
        let report = load(&path).unwrap();
        assert_eq!(report.loaded, 0);
        assert!(report.store.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
