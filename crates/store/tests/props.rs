//! Property tests: the binary codec round-trips arbitrary records, and
//! the journal's framing layer (sync marker + length + CRC32) recovers
//! the maximal clean subset of frames from flipped, truncated, and
//! spliced byte streams without ever panicking or mis-decoding.

use kt_netbase::Os;
use kt_netlog::{EventParams, EventPhase, EventType, NetError, NetLogEvent, SourceRef, SourceType};
use kt_store::codec::{decode, decode_view, encode};
use kt_store::journal::{self, FrameBody, JournalWriter, VisitDelta, FLAG_FINAL, JOURNAL_MAGIC};
use kt_store::segment::load_segment;
use kt_store::{CrawlId, LoadOutcome, SegmentMode, VisitRecord};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = (EventType, EventParams)> {
    prop_oneof![
        Just((EventType::RequestAlive, EventParams::None)),
        (
            "[ -~]{0,40}",
            "[A-Z]{3,7}",
            proptest::option::of("[ -~]{0,30}"),
            any::<u32>()
        )
            .prop_map(|(url, method, initiator, load_flags)| (
                EventType::UrlRequestStartJob,
                EventParams::UrlRequestStart {
                    url,
                    method,
                    initiator,
                    load_flags
                }
            )),
        "[ -~]{0,60}".prop_map(|l| (
            EventType::UrlRequestRedirected,
            EventParams::Redirect { location: l }
        )),
        "[ -~]{0,40}".prop_map(|h| (
            EventType::HostResolverImplJob,
            EventParams::DnsJob { host: h }
        )),
        "[ -~]{0,30}".prop_map(|a| (EventType::TcpConnect, EventParams::Connect { address: a })),
        any::<u16>().prop_map(|s| (
            EventType::HttpTransactionReadHeaders,
            EventParams::ResponseHeaders { status: s }
        )),
        "[ -~]{0,50}".prop_map(|u| (
            EventType::WebSocketSendRequestHeaders,
            EventParams::WebSocket { url: u }
        )),
        any::<u64>().prop_map(|l| (
            EventType::WebSocketRecvFrame,
            EventParams::WebSocketFrame { length: l }
        )),
        any::<i32>().prop_map(|e| (
            EventType::FailedRequest,
            EventParams::Failed { net_error: e }
        )),
    ]
}

fn arb_event() -> impl Strategy<Value = NetLogEvent> {
    (any::<u32>(), any::<u32>(), 0u32..6, 0u32..3, arb_params()).prop_map(
        |(time, id, src, phase, (event_type, params))| NetLogEvent {
            time: time as u64,
            event_type,
            source: SourceRef {
                id: id as u64,
                kind: SourceType::from_code(src).unwrap(),
            },
            phase: EventPhase::from_code(phase).unwrap(),
            params,
        },
    )
}

fn arb_record() -> impl Strategy<Value = VisitRecord> {
    (
        "[a-z0-9.]{1,40}",
        proptest::option::of(any::<u32>()),
        proptest::option::of(0u8..3),
        0usize..3,
        prop_oneof![
            Just(LoadOutcome::Success),
            (0usize..NetError::ALL.len()).prop_map(|i| LoadOutcome::Error(NetError::ALL[i])),
        ],
        any::<u32>(),
        proptest::collection::vec(arb_event(), 0..30),
        prop_oneof![Just("top2020"), Just("top2021"), Just("malicious")],
    )
        .prop_map(
            |(domain, rank, cat, os, outcome, loaded, events, crawl)| VisitRecord {
                crawl: CrawlId(crawl.to_string()),
                domain,
                rank,
                malicious_category: cat,
                os: Os::ALL[os],
                outcome,
                loaded_at_ms: loaded as u64,
                events,
            },
        )
}

proptest! {
    #[test]
    fn codec_round_trips(record in arb_record()) {
        let decoded = decode(encode(&record)).unwrap();
        prop_assert_eq!(decoded, record);
    }

    #[test]
    fn decoder_never_panics_on_noise(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode(bytes::Bytes::from(data));
    }

    #[test]
    fn truncated_records_error_not_panic(record in arb_record(), frac in 0.0f64..1.0) {
        let encoded = encode(&record);
        let cut = ((encoded.len() as f64) * frac) as usize;
        if cut < encoded.len() {
            prop_assert!(decode(encoded.slice(0..cut)).is_err());
        }
    }

    /// The borrowed decoder must agree with the owned decoder on every
    /// well-formed record: same value after `to_owned()`.
    #[test]
    fn decode_view_agrees_with_decode_on_records(record in arb_record()) {
        let encoded = encode(&record);
        let owned = decode(encoded.clone()).unwrap();
        let view = decode_view(&encoded).unwrap();
        prop_assert_eq!(&view.to_owned(), &owned);
        prop_assert_eq!(view.domain, owned.domain.as_str());
        prop_assert_eq!(view.crawl, owned.crawl.as_str());
        prop_assert_eq!(view.events.len(), owned.events.len());
        // A view of the owned record is the same view.
        prop_assert_eq!(owned.view(), view);
    }

    /// And it must reject exactly what the owned decoder rejects, with
    /// the same error, at *every* truncation point of a valid record.
    #[test]
    fn decode_view_rejects_same_truncations(record in arb_record()) {
        let encoded = encode(&record);
        for cut in 0..encoded.len() {
            match (decode(encoded.slice(0..cut)), decode_view(&encoded[..cut])) {
                (Ok(a), Ok(b)) => prop_assert_eq!(b.to_owned(), a, "cut {}", cut),
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "cut {}", cut),
                (a, b) => prop_assert!(
                    false,
                    "decoders disagree at cut {}: owned={:?} view={:?}",
                    cut, a, b
                ),
            }
        }
    }

    /// Same agreement on arbitrary noise and on valid records with a
    /// corrupted byte: accept together (same value) or reject together
    /// (same error).
    #[test]
    fn decode_view_agrees_on_noise(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        match (decode(bytes::Bytes::from(data.clone())), decode_view(&data)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(b.to_owned(), a),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "decoders disagree: owned={:?} view={:?}", a, b),
        }
    }

    #[test]
    fn decode_view_agrees_on_corrupted_records(
        record in arb_record(),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..,
    ) {
        let mut data = encode(&record).to_vec();
        if !data.is_empty() {
            let pos = ((data.len() as f64) * pos_frac) as usize % data.len();
            data[pos] ^= xor;
        }
        match (decode(bytes::Bytes::from(data.clone())), decode_view(&data)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(b.to_owned(), a),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "decoders disagree: owned={:?} view={:?}", a, b),
        }
    }
}

// ---------------------------------------------------- journal framing

/// Hand-encode one journal frame exactly as the writer lays it out:
/// `SYNC kind len:u32le payload crc32(kind‖len‖payload):u32le`. Built
/// here rather than through `JournalWriter` so the properties can use
/// arbitrary (unknown-kind) payloads without payload validation.
fn raw_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(payload.len() + 11);
    frame.extend_from_slice(&journal::SYNC);
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    let crc = journal::crc32(&frame[2..]);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

/// Magic plus every frame, returning the byte stream and each frame's
/// start offset.
fn raw_journal(frames: &[(u8, Vec<u8>)]) -> (Vec<u8>, Vec<usize>) {
    let mut data = JOURNAL_MAGIC.to_vec();
    let mut starts = Vec::with_capacity(frames.len());
    for (kind, payload) in frames {
        starts.push(data.len());
        data.extend_from_slice(&raw_frame(*kind, payload));
    }
    (data, starts)
}

/// Unknown-kind frames exercise the framing layer in isolation: the
/// scanner carries them verbatim (forward compatibility), so recovered
/// bytes can be compared against the originals exactly. Kinds start at
/// 10 to stay clear of the reserved visit/checkpoint/flush/meta kinds.
fn arb_unknown_frames() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    proptest::collection::vec(
        (10u8..251, proptest::collection::vec(any::<u8>(), 0..120)),
        1..10,
    )
}

fn unknown_bodies(report: &journal::ScanReport) -> Vec<(u8, Vec<u8>)> {
    report
        .frames
        .iter()
        .filter_map(|f| match &f.body {
            FrameBody::Unknown(kind, payload) => Some((*kind, payload.clone())),
            _ => None,
        })
        .collect()
}

/// Remove each survivor from the original multiset, failing if the
/// scanner reports a frame whose bytes were never written.
fn drain_survivors(originals: &[(u8, Vec<u8>)], survivors: &[(u8, Vec<u8>)]) -> Vec<(u8, Vec<u8>)> {
    let mut pool = originals.to_vec();
    for survivor in survivors {
        let at = pool
            .iter()
            .position(|original| original == survivor)
            .unwrap_or_else(|| panic!("scanner invented a frame: {survivor:?}"));
        pool.remove(at);
    }
    pool
}

proptest! {
    #[test]
    fn journal_scan_parses_every_clean_stream(frames in arb_unknown_frames()) {
        let (data, _) = raw_journal(&frames);
        let report = journal::scan(&data).unwrap();
        prop_assert_eq!(report.frames.len(), frames.len());
        prop_assert!(report.corrupt_spans.is_empty());
        prop_assert!(!report.truncated_tail);
        prop_assert_eq!(report.valid_end, data.len() as u64);
        for (scanned, original) in report.frames.iter().zip(&frames) {
            match &scanned.body {
                FrameBody::Unknown(kind, payload) => {
                    prop_assert_eq!(*kind, original.0);
                    prop_assert_eq!(payload, &original.1);
                }
                other => prop_assert!(false, "unexpected frame body {other:?}"),
            }
        }
    }

    #[test]
    fn journal_scan_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..400)) {
        let mut data = JOURNAL_MAGIC.to_vec();
        data.extend_from_slice(&noise);
        let report = journal::scan(&data).unwrap();
        prop_assert!(report.valid_end <= data.len() as u64);
        for frame in &report.frames {
            prop_assert!(frame.start >= JOURNAL_MAGIC.len() as u64);
            prop_assert!(frame.end <= data.len() as u64);
        }
        if !noise.starts_with(JOURNAL_MAGIC) {
            prop_assert!(journal::scan(&noise).is_err());
        }
    }

    #[test]
    fn a_flipped_byte_loses_exactly_the_covering_frame(
        frames in arb_unknown_frames(),
        frac in 0.0f64..1.0,
        xor in 1u8..255,
    ) {
        let (data, _) = raw_journal(&frames);
        let body_len = data.len() - JOURNAL_MAGIC.len();
        let off = JOURNAL_MAGIC.len() + ((body_len - 1) as f64 * frac) as usize;
        let mut bent = data.clone();
        bent[off] ^= xor;
        let report = journal::scan(&bent).unwrap();
        let survivors = unknown_bodies(&report);
        // One byte changed; CRC32 catches any single-byte error, so the
        // covering frame is dropped and every other frame survives.
        prop_assert_eq!(survivors.len() + 1, frames.len(), "flip at {}", off);
        drain_survivors(&frames, &survivors);
        prop_assert!(!report.corrupt_spans.is_empty() || report.truncated_tail);
    }

    #[test]
    fn spliced_noise_never_hides_intact_frames(
        frames in arb_unknown_frames(),
        noise in proptest::collection::vec(any::<u8>(), 1..60),
        at_frac in 0.0f64..1.0,
    ) {
        let (data, starts) = raw_journal(&frames);
        // Splice at a frame boundary: any start offset, or EOF.
        let mut boundaries = starts.clone();
        boundaries.push(data.len());
        let at = boundaries[((boundaries.len() - 1) as f64 * at_frac) as usize];
        let mut spliced = Vec::with_capacity(data.len() + noise.len());
        spliced.extend_from_slice(&data[..at]);
        spliced.extend_from_slice(&noise);
        spliced.extend_from_slice(&data[at..]);
        let report = journal::scan(&spliced).unwrap();
        let survivors = unknown_bodies(&report);
        // Resync must step over the garbage and recover every frame
        // whose own bytes are untouched.
        let missing = drain_survivors(&frames, &survivors);
        prop_assert!(missing.is_empty(), "intact frames lost to splice: {missing:?}");
    }

    #[test]
    fn random_truncation_keeps_the_clean_prefix(
        frames in arb_unknown_frames(),
        frac in 0.0f64..1.0,
    ) {
        let (data, _) = raw_journal(&frames);
        let span = data.len() - JOURNAL_MAGIC.len();
        let cut = JOURNAL_MAGIC.len() + (span as f64 * frac) as usize;
        let full = journal::scan(&data).unwrap();
        let report = journal::scan(&data[..cut]).unwrap();
        let keep = full.frames.iter().filter(|f| f.end <= cut as u64).count();
        prop_assert_eq!(report.frames.len(), keep, "cut at {}", cut);
        prop_assert!(report.corrupt_spans.is_empty());
        prop_assert!(report.valid_end <= cut as u64);
        let survivors = unknown_bodies(&report);
        prop_assert_eq!(&survivors[..], &frames[..keep]);
    }
}

// Exhaustive variants over a real visit journal written by
// `JournalWriter`: every offset, not a random sample, and payloads
// that must decode as records (the "never mis-decode" half of the
// guarantee — a damaged frame is dropped, never resurfaced mutated).

fn fixture_record(i: usize) -> VisitRecord {
    VisitRecord {
        crawl: CrawlId("top2020".to_string()),
        domain: format!("site-{i}.example"),
        rank: Some(i as u32 + 1),
        malicious_category: None,
        os: Os::ALL[i % Os::ALL.len()],
        outcome: if i.is_multiple_of(3) {
            LoadOutcome::Error(NetError::ALL[i % NetError::ALL.len()])
        } else {
            LoadOutcome::Success
        },
        loaded_at_ms: 1_000 + i as u64,
        events: vec![],
    }
}

fn fixture_journal(name: &str, n: usize) -> Vec<u8> {
    let path = std::env::temp_dir().join(format!(
        "kt-journal-props-{name}-{}.ktj",
        std::process::id()
    ));
    let writer = JournalWriter::create(&path).unwrap();
    for i in 0..n {
        let delta = VisitDelta {
            cost_ms: 21_000,
            attempted: 1,
            successful: u64::from(i % 3 != 0),
            failures: if i % 3 == 0 { vec![(-106, 1)] } else { vec![] },
            ..Default::default()
        };
        writer.append_visit(&fixture_record(i), &delta, FLAG_FINAL, false);
    }
    writer.sync();
    let data = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    data
}

fn visit_records(report: &journal::ScanReport) -> Vec<VisitRecord> {
    report
        .frames
        .iter()
        .filter_map(|f| match &f.body {
            FrameBody::Visit(v) => Some(v.record.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn truncation_at_every_offset_yields_the_clean_prefix() {
    let data = fixture_journal("trunc", 5);
    let full = journal::scan(&data).unwrap();
    assert_eq!(full.frames.len(), 5);
    let bounds: Vec<u64> = full.frames.iter().map(|f| f.end).collect();
    for cut in JOURNAL_MAGIC.len()..=data.len() {
        let report = journal::scan(&data[..cut]).unwrap();
        let keep = bounds.iter().filter(|&&b| b <= cut as u64).count();
        assert_eq!(report.frames.len(), keep, "cut at {cut}");
        assert!(report.corrupt_spans.is_empty(), "cut at {cut}");
        let at_boundary = cut == JOURNAL_MAGIC.len() || bounds.contains(&(cut as u64));
        assert_eq!(report.truncated_tail, !at_boundary, "cut at {cut}");
        let expect_end = if keep == 0 {
            JOURNAL_MAGIC.len() as u64
        } else {
            bounds[keep - 1]
        };
        assert_eq!(report.valid_end, expect_end, "cut at {cut}");
        let records = visit_records(&report);
        let originals: Vec<VisitRecord> = (0..keep).map(fixture_record).collect();
        assert_eq!(records, originals, "cut at {cut}");
    }
}

#[test]
fn a_flip_at_every_offset_never_forges_or_mutates_a_record() {
    let data = fixture_journal("flip", 5);
    let full = journal::scan(&data).unwrap();
    let originals: Vec<VisitRecord> = (0..5).map(fixture_record).collect();
    for off in JOURNAL_MAGIC.len()..data.len() {
        let mut bent = data.clone();
        bent[off] ^= 0x01;
        let report = journal::scan(&bent).unwrap();
        let lost = full
            .frames
            .iter()
            .position(|f| f.start as usize <= off && off < f.end as usize)
            .unwrap();
        let expected: Vec<VisitRecord> = originals
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != lost)
            .map(|(_, r)| r.clone())
            .collect();
        let records = visit_records(&report);
        assert_eq!(
            records, expected,
            "flip at {off} should drop frame {lost} only"
        );
        assert_eq!(report.frames.len(), 4, "flip at {off}");
        assert!(
            !report.corrupt_spans.is_empty() || report.truncated_tail,
            "flip at {off} left no damage marker"
        );
    }
}

proptest! {
    /// A sealed segment must read back byte-identically whether it is
    /// memory-mapped or loaded resident: the whole buffer, arbitrary
    /// zero-copy sub-slices, and record decode all agree, and the mmap
    /// keeps serving after the file is unlinked.
    #[test]
    fn mmap_and_resident_segment_reads_are_equivalent(
        payload in proptest::collection::vec(any::<u8>(), 0..4096),
        cuts in proptest::collection::vec((any::<u16>(), any::<u16>()), 0..8),
    ) {
        let path = std::env::temp_dir().join(format!(
            "kt-segment-props-{}-{:x}.seg",
            std::process::id(),
            payload.len()
        ));
        std::fs::write(&path, &payload).unwrap();
        let mapped = load_segment(&path, SegmentMode::Mmap).unwrap();
        let resident = load_segment(&path, SegmentMode::Resident).unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(mapped.as_ref(), &payload[..]);
        prop_assert_eq!(resident.as_ref(), &payload[..]);
        prop_assert_eq!(mapped.len(), resident.len());
        for (a, b) in cuts {
            let lo = (a as usize).min(payload.len());
            let hi = (b as usize).min(payload.len());
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            let m = mapped.slice(lo..hi);
            let r = resident.slice(lo..hi);
            prop_assert_eq!(m.as_ref(), r.as_ref(), "slice {}..{}", lo, hi);
        }
    }

    /// An encoded record spilled to a segment file decodes to the same
    /// view through both read paths.
    #[test]
    fn segment_mode_does_not_change_decoded_records(record in arb_record()) {
        let encoded = encode(&record);
        let path = std::env::temp_dir().join(format!(
            "kt-segment-props-rec-{}-{:x}.seg",
            std::process::id(),
            encoded.len()
        ));
        std::fs::write(&path, encoded.as_ref()).unwrap();
        let mapped = load_segment(&path, SegmentMode::Mmap).unwrap();
        let resident = load_segment(&path, SegmentMode::Resident).unwrap();
        let _ = std::fs::remove_file(&path);
        let via_map = decode(mapped.clone()).unwrap();
        let via_resident = decode(resident.clone()).unwrap();
        prop_assert_eq!(&via_map, &record);
        prop_assert_eq!(&via_resident, &record);
        prop_assert_eq!(
            decode_view(mapped.as_ref()).unwrap(),
            decode_view(resident.as_ref()).unwrap()
        );
    }
}
