//! Property tests: the binary codec round-trips arbitrary records.

use kt_netbase::Os;
use kt_netlog::{EventParams, EventPhase, EventType, NetError, NetLogEvent, SourceRef, SourceType};
use kt_store::codec::{decode, encode};
use kt_store::{CrawlId, LoadOutcome, VisitRecord};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = (EventType, EventParams)> {
    prop_oneof![
        Just((EventType::RequestAlive, EventParams::None)),
        (
            "[ -~]{0,40}",
            "[A-Z]{3,7}",
            proptest::option::of("[ -~]{0,30}"),
            any::<u32>()
        )
            .prop_map(|(url, method, initiator, load_flags)| (
                EventType::UrlRequestStartJob,
                EventParams::UrlRequestStart {
                    url,
                    method,
                    initiator,
                    load_flags
                }
            )),
        "[ -~]{0,60}".prop_map(|l| (
            EventType::UrlRequestRedirected,
            EventParams::Redirect { location: l }
        )),
        "[ -~]{0,40}".prop_map(|h| (
            EventType::HostResolverImplJob,
            EventParams::DnsJob { host: h }
        )),
        "[ -~]{0,30}".prop_map(|a| (EventType::TcpConnect, EventParams::Connect { address: a })),
        any::<u16>().prop_map(|s| (
            EventType::HttpTransactionReadHeaders,
            EventParams::ResponseHeaders { status: s }
        )),
        "[ -~]{0,50}".prop_map(|u| (
            EventType::WebSocketSendRequestHeaders,
            EventParams::WebSocket { url: u }
        )),
        any::<u64>().prop_map(|l| (
            EventType::WebSocketRecvFrame,
            EventParams::WebSocketFrame { length: l }
        )),
        any::<i32>().prop_map(|e| (
            EventType::FailedRequest,
            EventParams::Failed { net_error: e }
        )),
    ]
}

fn arb_event() -> impl Strategy<Value = NetLogEvent> {
    (any::<u32>(), any::<u32>(), 0u32..6, 0u32..3, arb_params()).prop_map(
        |(time, id, src, phase, (event_type, params))| NetLogEvent {
            time: time as u64,
            event_type,
            source: SourceRef {
                id: id as u64,
                kind: SourceType::from_code(src).unwrap(),
            },
            phase: EventPhase::from_code(phase).unwrap(),
            params,
        },
    )
}

fn arb_record() -> impl Strategy<Value = VisitRecord> {
    (
        "[a-z0-9.]{1,40}",
        proptest::option::of(any::<u32>()),
        proptest::option::of(0u8..3),
        0usize..3,
        prop_oneof![
            Just(LoadOutcome::Success),
            (0usize..NetError::ALL.len()).prop_map(|i| LoadOutcome::Error(NetError::ALL[i])),
        ],
        any::<u32>(),
        proptest::collection::vec(arb_event(), 0..30),
        prop_oneof![Just("top2020"), Just("top2021"), Just("malicious")],
    )
        .prop_map(
            |(domain, rank, cat, os, outcome, loaded, events, crawl)| VisitRecord {
                crawl: CrawlId(crawl.to_string()),
                domain,
                rank,
                malicious_category: cat,
                os: Os::ALL[os],
                outcome,
                loaded_at_ms: loaded as u64,
                events,
            },
        )
}

proptest! {
    #[test]
    fn codec_round_trips(record in arb_record()) {
        let decoded = decode(encode(&record)).unwrap();
        prop_assert_eq!(decoded, record);
    }

    #[test]
    fn decoder_never_panics_on_noise(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode(bytes::Bytes::from(data));
    }

    #[test]
    fn truncated_records_error_not_panic(record in arb_record(), frac in 0.0f64..1.0) {
        let encoded = encode(&record);
        let cut = ((encoded.len() as f64) * frac) as usize;
        if cut < encoded.len() {
            prop_assert!(decode(encoded.slice(0..cut)).is_err());
        }
    }
}
