//! Rendering tests for the table builders, on hand-built fixtures.

use kt_analysis::classify::ReasonClass;
use kt_analysis::detect::{LocalObservation, SiteLocalActivity};
use kt_analysis::report;
use kt_netbase::services::THREATMETRIX_PORTS;
use kt_netbase::{Locality, Os, OsSet, Scheme, ServiceRegistry, Url};

fn obs(os: Os, scheme: Scheme, host: &str, port: u16, path: &str) -> LocalObservation {
    let url = Url::parse(&format!("{scheme}://{host}:{port}{path}")).unwrap();
    LocalObservation {
        domain: String::new(),
        rank: None,
        malicious_category: None,
        os,
        scheme,
        port,
        path: url.path_and_query(),
        locality: url.locality(),
        websocket: scheme.is_websocket(),
        via_redirect: false,
        time_ms: 9_000,
        delay_ms: 8_500,
        url,
    }
}

fn site(domain: &str, rank: u32, observations: Vec<LocalObservation>) -> SiteLocalActivity {
    let mut localhost_os = OsSet::NONE;
    let mut lan_os = OsSet::NONE;
    for o in &observations {
        if o.locality == Locality::Loopback {
            localhost_os = localhost_os.with(o.os);
        } else {
            lan_os = lan_os.with(o.os);
        }
    }
    SiteLocalActivity {
        domain: domain.to_string(),
        rank: Some(rank),
        malicious_category: None,
        localhost_os,
        lan_os,
        observations,
    }
}

fn tm_site(domain: &str, rank: u32) -> SiteLocalActivity {
    let observations = THREATMETRIX_PORTS
        .iter()
        .map(|p| obs(Os::Windows, Scheme::Wss, "localhost", *p, "/"))
        .collect();
    site(domain, rank, observations)
}

#[test]
fn localhost_table_groups_by_reason_and_sorts_by_rank() {
    let sites = vec![
        site(
            "dev.example",
            900,
            vec![obs(
                Os::Linux,
                Scheme::Http,
                "localhost",
                8888,
                "/wp-content/uploads/2019/01/asset7.jpg",
            )],
        ),
        tm_site("shop-b.example", 500),
        tm_site("shop-a.example", 104),
    ];
    let (text, rows) = report::localhost_table(&sites);
    assert_eq!(rows.len(), 3);
    // Fraud rows first (class order), rank ascending inside the class.
    assert_eq!(rows[0].domain, "shop-a.example");
    assert_eq!(rows[0].reason, ReasonClass::FraudDetection);
    assert_eq!(rows[1].domain, "shop-b.example");
    assert_eq!(rows[2].reason, ReasonClass::DeveloperError);
    // Rendering contains the condensed TM port list and OS ticks.
    assert!(text.contains("5900-5903"));
    assert!(text.contains("✓ · ·"));
    assert!(text.contains("/wp-content/uploads/2019/01/*.jpg"));
}

#[test]
fn lan_table_reports_ip_and_port() {
    let sites = vec![site(
        "uni.example",
        56_325,
        vec![obs(
            Os::Windows,
            Scheme::Http,
            "192.168.64.160",
            80,
            "/wp-content/uploads/2019/10/photo7.jpg",
        )],
    )];
    let (text, rows) = report::lan_table(&sites);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].local_ip, "192.168.64.160");
    assert_eq!(rows[0].port, 80);
    assert!(text.contains("192.168.64.160"));
    assert!(text.contains("uni.example"));
}

#[test]
fn table3_splits_windows_and_nix_columns() {
    let sites = vec![
        tm_site("win-only.example", 10),
        site(
            "nix.example",
            20,
            vec![obs(
                Os::Linux,
                Scheme::Http,
                "localhost",
                6878,
                "/webui/api/service",
            )],
        ),
    ];
    let text = report::table3(&sites, 10);
    let header = text.lines().next().unwrap();
    assert!(header.contains("Windows"));
    assert!(header.contains("Linux and Mac"));
    assert!(text.contains("win-only.example"));
    assert!(text.contains("nix.example"));
}

#[test]
fn table4_contains_all_21_anti_abuse_ports() {
    let text = report::table4(&ServiceRegistry::standard());
    let rows = text.lines().count() - 2; // header + rule
    assert_eq!(rows, 21, "14 fraud + 7 bot ports");
    assert!(text.contains("TeamViewer"));
    assert!(text.contains("Microsoft Edge WebDriver"));
}

#[test]
fn table11_contains_only_dev_errors() {
    let sites = vec![
        tm_site("shop.example", 1),
        site(
            "dev.example",
            2,
            vec![obs(
                Os::MacOs,
                Scheme::Https,
                "localhost",
                9000,
                "/sockjs-node/info?t=1",
            )],
        ),
    ];
    let (text, rows) = report::table11(&sites);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].domain, "dev.example");
    assert!(!text.contains("shop.example"));
}

#[test]
fn reason_counts_tally() {
    let sites = vec![
        tm_site("a.example", 1),
        tm_site("b.example", 2),
        site(
            "c.example",
            3,
            vec![obs(
                Os::Linux,
                Scheme::Http,
                "localhost",
                35729,
                "/livereload.js",
            )],
        ),
    ];
    let counts = report::reason_counts(&sites);
    assert_eq!(counts[&ReasonClass::FraudDetection], 2);
    assert_eq!(counts[&ReasonClass::DeveloperError], 1);
}

#[test]
fn activity_diff_partitions() {
    let y2020 = vec![tm_site("stay.example", 1), tm_site("stop.example", 2)];
    let y2021 = vec![tm_site("stay.example", 1), tm_site("new.example", 3)];
    let diff = report::activity_diff(&y2020, &y2021);
    assert_eq!(diff.carried, vec!["stay.example"]);
    assert_eq!(diff.new, vec!["new.example"]);
    assert_eq!(diff.stopped, vec!["stop.example"]);
}

#[test]
fn empty_inputs_render_headers_only() {
    let (text, rows) = report::localhost_table(&[]);
    assert!(rows.is_empty());
    assert_eq!(text.lines().count(), 2, "header + rule");
    let (text, rows) = report::lan_table(&[]);
    assert!(rows.is_empty());
    assert_eq!(text.lines().count(), 2);
}
