//! Property tests for the analysis layer: the classifier is total and
//! deterministic, ECDFs obey CDF axioms, Venn regions partition, and
//! port condensation round-trips.

use kt_analysis::cdf::Ecdf;
use kt_analysis::classify::classify_site;
use kt_analysis::detect::{LocalObservation, SiteLocalActivity};
use kt_analysis::report::condense_ports;
use kt_analysis::venn::OsVenn;
use kt_netbase::{Locality, Os, OsSet, Scheme, Url};
use proptest::prelude::*;

fn arb_observation() -> impl Strategy<Value = LocalObservation> {
    (
        0usize..3, // os
        0usize..4, // scheme
        1u16..,    // port
        prop_oneof![
            Just("/".to_string()),
            Just("/wp-content/uploads/a.jpg".to_string()),
            Just("/livereload.js".to_string()),
            Just("/?v=1".to_string()),
            Just("/app_list.json".to_string()),
            "[a-z/]{1,20}".prop_map(|s| format!("/{s}")),
        ],
        any::<bool>(), // loopback vs private
        any::<bool>(), // websocket
        any::<bool>(), // via_redirect
        0u64..20_000,  // time
    )
        .prop_map(|(os, scheme, port, path, loopback, ws, redir, time)| {
            let scheme = Scheme::ALL[scheme];
            let host = if loopback {
                "localhost".to_string()
            } else {
                "192.168.1.7".to_string()
            };
            let url = Url::parse(&format!("{scheme}://{host}:{port}{path}")).unwrap();
            LocalObservation {
                domain: "prop.example".into(),
                rank: Some(1),
                malicious_category: None,
                os: Os::ALL[os],
                scheme,
                port,
                path: url.path_and_query(),
                locality: if loopback {
                    Locality::Loopback
                } else {
                    Locality::Private
                },
                websocket: ws,
                via_redirect: redir,
                time_ms: time,
                delay_ms: time,
                url,
            }
        })
}

fn site_of(observations: Vec<LocalObservation>) -> SiteLocalActivity {
    let mut localhost_os = OsSet::NONE;
    let mut lan_os = OsSet::NONE;
    for o in &observations {
        if o.locality.is_loopback() {
            localhost_os = localhost_os.with(o.os);
        } else {
            lan_os = lan_os.with(o.os);
        }
    }
    SiteLocalActivity {
        domain: "prop.example".into(),
        rank: Some(1),
        malicious_category: None,
        localhost_os,
        lan_os,
        observations,
    }
}

proptest! {
    #[test]
    fn classifier_is_total_and_deterministic(
        observations in proptest::collection::vec(arb_observation(), 1..40)
    ) {
        let site = site_of(observations);
        let a = classify_site(&site);
        let b = classify_site(&site);
        prop_assert_eq!(a, b);
        // label() must not panic for whatever class came out.
        prop_assert!(!a.label().is_empty());
    }

    #[test]
    fn classifier_is_permutation_invariant(
        observations in proptest::collection::vec(arb_observation(), 2..20)
    ) {
        let forward = classify_site(&site_of(observations.clone()));
        let mut reversed = observations;
        reversed.reverse();
        let backward = classify_site(&site_of(reversed));
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn ecdf_axioms(samples in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let ecdf = Ecdf::new(samples.clone());
        // Bounds.
        prop_assert_eq!(ecdf.eval(f64::NEG_INFINITY.min(-1.0)), 0.0);
        prop_assert_eq!(ecdf.eval(1e9), 1.0);
        // Monotone at sampled points.
        let lo = ecdf.min().unwrap();
        let hi = ecdf.max().unwrap();
        let mid = (lo + hi) / 2.0;
        prop_assert!(ecdf.eval(lo) <= ecdf.eval(mid) + 1e-12);
        prop_assert!(ecdf.eval(mid) <= ecdf.eval(hi) + 1e-12);
        // Quantile inverse-ish: F(quantile(q)) >= q.
        for q in [0.1, 0.5, 0.9] {
            let x = ecdf.quantile(q).unwrap();
            prop_assert!(ecdf.eval(x) + 1e-12 >= q);
        }
        // Median is within range.
        let med = ecdf.median().unwrap();
        prop_assert!((lo..=hi).contains(&med));
    }

    #[test]
    fn venn_regions_partition_the_sets(bits in proptest::collection::vec(0u8..8, 0..300)) {
        let sets: Vec<OsSet> = bits
            .iter()
            .map(|b| OsSet {
                windows: b & 1 != 0,
                linux: b & 2 != 0,
                macos: b & 4 != 0,
            })
            .collect();
        let venn = OsVenn::from_sets(sets.clone());
        let nonempty = sets.iter().filter(|s| !s.is_empty()).count();
        prop_assert_eq!(venn.total(), nonempty);
        prop_assert_eq!(venn.windows_total(), sets.iter().filter(|s| s.windows).count());
        prop_assert_eq!(venn.linux_total(), sets.iter().filter(|s| s.linux).count());
        prop_assert_eq!(venn.mac_total(), sets.iter().filter(|s| s.macos).count());
    }

    #[test]
    fn condensed_ports_expand_back(mut ports in proptest::collection::vec(1u16.., 0..40)) {
        let text = condense_ports(&ports);
        // Expand the notation and compare to the sorted dedup input.
        let mut expanded: Vec<u16> = Vec::new();
        for part in text.split(", ").filter(|p| !p.is_empty()) {
            match part.split_once('-') {
                Some((a, b)) => {
                    let (a, b): (u16, u16) = (a.parse().unwrap(), b.parse().unwrap());
                    expanded.extend(a..=b);
                }
                None => expanded.push(part.parse().unwrap()),
            }
        }
        ports.sort_unstable();
        ports.dedup();
        prop_assert_eq!(expanded, ports);
    }
}
