//! Defense evaluation (§5.3): what would Private Network Access block?
//!
//! The paper closes by endorsing the WICG PNA proposal — local fetches
//! require a secure initiating context plus a CORS preflight opt-in
//! from the local service — and stresses that any defence must
//! *preserve the legitimate native-application use case*. This module
//! replays observed telemetry under the proposal and tabulates, per
//! behaviour class, what survives under different adoption scenarios.

use kt_netbase::pna::{self, AddressSpace, PnaVerdict, PreflightResult};
use kt_netbase::services::is_native_app_port;
use kt_store::VisitRecord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::classify::{classify_site, ReasonClass};
use crate::detect::{aggregate_sites, detect_local_with_page, LocalObservation};
use crate::report::TextTable;

/// Which local services answer the PNA preflight affirmatively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdoptionScenario {
    /// No local service has been updated yet (the proposal's day one).
    NoOptIn,
    /// Native applications ship the opt-in header; anti-abuse scan
    /// targets (remote-desktop servers, malware) and stale dev servers
    /// do not. The paper's intended steady state.
    NativeAppsOptIn,
    /// Everything opts in (an upper bound — PNA reduced to the secure-
    /// context requirement).
    FullOptIn,
}

impl AdoptionScenario {
    /// All scenarios in presentation order.
    pub const ALL: [AdoptionScenario; 3] = [
        AdoptionScenario::NoOptIn,
        AdoptionScenario::NativeAppsOptIn,
        AdoptionScenario::FullOptIn,
    ];

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AdoptionScenario::NoOptIn => "no services opt in",
            AdoptionScenario::NativeAppsOptIn => "native apps opt in",
            AdoptionScenario::FullOptIn => "all services opt in",
        }
    }
}

/// The page's security and address space from its main-document URL
/// (none observed → a public, insecure page).
pub fn page_env(page_url: Option<&kt_netbase::Url>) -> (AddressSpace, bool) {
    match page_url {
        Some(url) => (AddressSpace::of_url(url), url.scheme().is_secure()),
        None => (AddressSpace::Public, false),
    }
}

/// One observation's PNA verdict under one adoption scenario, given
/// the page's `(address space, secure)` context. The unit both the
/// sequential [`evaluate`] and the parallel analysis driver replay —
/// one definition, two schedules.
pub fn verdict_for(
    page: (AddressSpace, bool),
    obs: &LocalObservation,
    scenario: AdoptionScenario,
) -> PnaVerdict {
    let preflight = match scenario {
        AdoptionScenario::NoOptIn => PreflightResult::Denied,
        AdoptionScenario::FullOptIn => PreflightResult::Approved,
        AdoptionScenario::NativeAppsOptIn => {
            if obs.locality.is_loopback() && is_native_app_port(obs.port) {
                PreflightResult::Approved
            } else {
                PreflightResult::Denied
            }
        }
    };
    // WebSockets: PNA gates them identically (a ws(s) URL to a
    // more-private space needs the same opt-in).
    pna::decide(page.0, page.1, &obs.url, preflight)
}

/// Replay one record under PNA; returns (verdict, observation) pairs.
pub fn replay_record(
    record: &VisitRecord,
    scenario: AdoptionScenario,
) -> Vec<(PnaVerdict, LocalObservation)> {
    let (observations, page_url) = detect_local_with_page(record);
    let page = page_env(page_url.as_ref());
    observations
        .into_iter()
        .map(|obs| (verdict_for(page, &obs, scenario), obs))
        .collect()
}

/// Per-class impact: how many *sites* keep at least one permitted local
/// request, and how many are fully silenced.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefenseImpact {
    /// (reason class, scenario) → (sites unaffected-or-partially-working,
    /// sites fully blocked).
    pub by_class: BTreeMap<(ReasonClass, String), (usize, usize)>,
}

/// Evaluate PNA over a whole crawl's records.
pub fn evaluate(records: &[VisitRecord]) -> DefenseImpact {
    let sites = aggregate_sites(records);
    let class_of: BTreeMap<&str, ReasonClass> = sites
        .iter()
        .map(|s| (s.domain.as_str(), classify_site(s)))
        .collect();
    let mut impact = DefenseImpact::default();
    for scenario in AdoptionScenario::ALL {
        // domain -> any permitted?
        let mut permitted: BTreeMap<String, bool> = BTreeMap::new();
        for record in records {
            let verdicts = replay_record(record, scenario);
            if verdicts.is_empty() {
                continue;
            }
            let entry = permitted.entry(record.domain.clone()).or_insert(false);
            if verdicts.iter().any(|(v, _)| v.permits()) {
                *entry = true;
            }
        }
        for (domain, any_permitted) in &permitted {
            let Some(class) = class_of.get(domain.as_str()) else {
                continue;
            };
            let slot = impact
                .by_class
                .entry((*class, scenario.label().to_string()))
                .or_insert((0, 0));
            if *any_permitted {
                slot.0 += 1;
            } else {
                slot.1 += 1;
            }
        }
    }
    impact
}

impl DefenseImpact {
    /// Render the impact table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(["Reason", "Scenario", "Still works", "Fully blocked"]);
        for ((class, scenario), (works, blocked)) in &self.by_class {
            table.row([
                class.label().to_string(),
                scenario.clone(),
                works.to_string(),
                blocked.to_string(),
            ]);
        }
        table.render()
    }

    /// Lookup helper: (works, blocked) for one class and scenario.
    pub fn get(&self, class: ReasonClass, scenario: AdoptionScenario) -> (usize, usize) {
        self.by_class
            .get(&(class, scenario.label().to_string()))
            .copied()
            .unwrap_or((0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_netbase::Os;
    use kt_netlog::{EventParams, EventPhase, EventType, NetLogEvent, SourceRef, SourceType};
    use kt_store::{CrawlId, LoadOutcome};

    fn record(domain: &str, page_url: &str, local_urls: &[(&str, bool)]) -> VisitRecord {
        let mut events = vec![NetLogEvent {
            time: 100,
            event_type: EventType::UrlRequestStartJob,
            source: SourceRef {
                id: 1,
                kind: SourceType::UrlRequest,
            },
            phase: EventPhase::Begin,
            params: EventParams::UrlRequestStart {
                url: page_url.into(),
                method: "GET".into(),
                initiator: None,
                load_flags: 0,
            },
        }];
        for (i, (url, ws)) in local_urls.iter().enumerate() {
            let id = 2 + i as u64;
            if *ws {
                events.push(NetLogEvent {
                    time: 9_000,
                    event_type: EventType::WebSocketSendRequestHeaders,
                    source: SourceRef {
                        id,
                        kind: SourceType::WebSocket,
                    },
                    phase: EventPhase::Begin,
                    params: EventParams::WebSocket {
                        url: url.to_string(),
                    },
                });
            } else {
                events.push(NetLogEvent {
                    time: 3_000,
                    event_type: EventType::UrlRequestStartJob,
                    source: SourceRef {
                        id,
                        kind: SourceType::UrlRequest,
                    },
                    phase: EventPhase::Begin,
                    params: EventParams::UrlRequestStart {
                        url: url.to_string(),
                        method: "GET".into(),
                        initiator: Some(page_url.to_string()),
                        load_flags: 0,
                    },
                });
            }
        }
        VisitRecord {
            crawl: CrawlId::top2020(),
            domain: domain.into(),
            rank: Some(1),
            malicious_category: None,
            os: Os::Windows,
            outcome: LoadOutcome::Success,
            loaded_at_ms: 100,
            events,
        }
    }

    #[test]
    fn insecure_page_blocked_in_every_scenario() {
        let rec = record(
            "http-site.example",
            "http://http-site.example/",
            &[("http://localhost:8888/wp-content/a.jpg", false)],
        );
        for scenario in AdoptionScenario::ALL {
            let verdicts = replay_record(&rec, scenario);
            assert_eq!(verdicts.len(), 1);
            assert_eq!(
                verdicts[0].0,
                PnaVerdict::BlockedInsecureContext,
                "{scenario:?}"
            );
        }
    }

    #[test]
    fn native_app_survives_native_opt_in() {
        let rec = record(
            "invite.example",
            "https://invite.example/",
            &[("ws://localhost:6463/?v=1", true)],
        );
        let v = replay_record(&rec, AdoptionScenario::NativeAppsOptIn);
        assert_eq!(v[0].0, PnaVerdict::Allowed);
        let v = replay_record(&rec, AdoptionScenario::NoOptIn);
        assert_eq!(v[0].0, PnaVerdict::BlockedPreflight);
    }

    #[test]
    fn anti_abuse_scan_blocked_under_native_opt_in() {
        let rec = record(
            "shop.example",
            "https://shop.example/",
            &[
                ("wss://localhost:3389/", true),
                ("wss://localhost:5939/", true),
            ],
        );
        let verdicts = replay_record(&rec, AdoptionScenario::NativeAppsOptIn);
        assert!(verdicts
            .iter()
            .all(|(v, _)| *v == PnaVerdict::BlockedPreflight));
        // Full opt-in (secure context only) lets it through.
        let verdicts = replay_record(&rec, AdoptionScenario::FullOptIn);
        assert!(verdicts.iter().all(|(v, _)| *v == PnaVerdict::Allowed));
    }

    #[test]
    fn evaluate_aggregates_per_class() {
        let records = vec![
            record(
                "invite.example",
                "https://invite.example/",
                &[
                    ("ws://localhost:6463/?v=1", true),
                    ("ws://localhost:6464/?v=1", true),
                ],
            ),
            record(
                "devsite.example",
                "https://devsite.example/",
                &[("http://localhost:35729/livereload.js", false)],
            ),
        ];
        let impact = evaluate(&records);
        let (works, blocked) = impact.get(
            ReasonClass::NativeApplication,
            AdoptionScenario::NativeAppsOptIn,
        );
        assert_eq!((works, blocked), (1, 0), "native app preserved");
        let (works, blocked) = impact.get(
            ReasonClass::DeveloperError,
            AdoptionScenario::NativeAppsOptIn,
        );
        assert_eq!((works, blocked), (0, 1), "dev error silenced");
        let text = impact.render();
        assert!(text.contains("native apps opt in"));
    }
}
