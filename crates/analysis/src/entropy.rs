//! Fingerprinting-entropy analysis (§5.2).
//!
//! The paper warns that the host profiling done for anti-abuse "can
//! naturally be extended for user fingerprinting and tracking": the
//! pattern of which localhost ports answer is a stable, high-entropy
//! feature of a machine. This module quantifies that: given the
//! port-response vectors of a population of simulated visitor machines,
//! it computes the Shannon entropy (and normalised entropy) of the
//! resulting fingerprint distribution — the standard measure used by
//! fingerprinting studies (Panopticlick et al.).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The fingerprint of one machine: for each probed port, whether a
/// service answered.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortFingerprint(pub Vec<(u16, bool)>);

impl PortFingerprint {
    /// Probe a simulated machine on the given ports.
    pub fn probe(env: &kt_simnet::HostEnv, ports: &[u16]) -> PortFingerprint {
        use kt_simnet::ServerBehavior;
        PortFingerprint(
            ports
                .iter()
                .map(|p| {
                    let answers = !matches!(
                        env.localhost_endpoint(*p).behavior,
                        ServerBehavior::Refused | ServerBehavior::Blackhole
                    );
                    (*p, answers)
                })
                .collect(),
        )
    }
}

/// Distribution statistics over a set of fingerprints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntropyReport {
    /// Machines sampled.
    pub population: usize,
    /// Distinct fingerprints observed.
    pub distinct: usize,
    /// Shannon entropy of the fingerprint distribution, in bits.
    pub shannon_bits: f64,
    /// Entropy normalised by `log2(population)` (1.0 = everyone
    /// unique).
    pub normalised: f64,
    /// The share of machines carrying the most common fingerprint
    /// (the anonymity-set ceiling).
    pub modal_share: f64,
}

/// Compute the entropy report for a collection of fingerprints.
pub fn entropy_of<I: IntoIterator<Item = PortFingerprint>>(fingerprints: I) -> EntropyReport {
    let mut counts: BTreeMap<PortFingerprint, usize> = BTreeMap::new();
    let mut n = 0usize;
    for fp in fingerprints {
        *counts.entry(fp).or_default() += 1;
        n += 1;
    }
    let mut shannon = 0.0;
    let mut modal = 0usize;
    for &c in counts.values() {
        let p = c as f64 / n.max(1) as f64;
        shannon -= p * p.log2();
        modal = modal.max(c);
    }
    let max_bits = (n.max(1) as f64).log2();
    EntropyReport {
        population: n,
        distinct: counts.len(),
        shannon_bits: shannon,
        normalised: if max_bits > 0.0 {
            shannon / max_bits
        } else {
            0.0
        },
        modal_share: modal as f64 / n.max(1) as f64,
    }
}

/// Convenience: sample `n` machines of one OS and measure the entropy
/// a scanner probing `ports` would harvest.
pub fn scan_entropy(os: kt_netbase::Os, ports: &[u16], n: usize, seed: u64) -> EntropyReport {
    entropy_of((0..n).map(|i| {
        let env = kt_simnet::HostEnv::sampled(os, seed.wrapping_add(i as u64));
        PortFingerprint::probe(&env, ports)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_netbase::services::THREATMETRIX_PORTS;
    use kt_netbase::Os;

    #[test]
    fn uniform_population_has_zero_entropy() {
        let fp = PortFingerprint(vec![(80, false), (443, false)]);
        let report = entropy_of(std::iter::repeat_n(fp, 100));
        assert_eq!(report.distinct, 1);
        assert!(report.shannon_bits.abs() < 1e-12);
        assert_eq!(report.modal_share, 1.0);
    }

    #[test]
    fn all_unique_population_has_max_entropy() {
        let report = entropy_of((0..64u16).map(|i| PortFingerprint(vec![(i, true)])));
        assert_eq!(report.distinct, 64);
        assert!((report.shannon_bits - 6.0).abs() < 1e-9);
        assert!((report.normalised - 1.0).abs() < 1e-9);
        assert!((report.modal_share - 1.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn threatmetrix_scan_yields_nonzero_entropy_on_windows() {
        // Some Windows machines run RDP/TeamViewer/Discord, so the
        // scan distinguishes machine groups — the §5.2 concern.
        let report = scan_entropy(Os::Windows, &THREATMETRIX_PORTS, 400, 7);
        assert_eq!(report.population, 400);
        assert!(report.distinct >= 2, "distinct {}", report.distinct);
        assert!(report.shannon_bits > 0.1, "bits {}", report.shannon_bits);
        // But nowhere near unique identification from 14 ports alone.
        assert!(report.normalised < 0.6, "normalised {}", report.normalised);
    }

    #[test]
    fn wider_scans_harvest_more_entropy() {
        let narrow = scan_entropy(Os::Windows, &[3389], 400, 7);
        let wide = scan_entropy(Os::Windows, &[3389, 5939, 6463], 400, 7);
        assert!(wide.shannon_bits >= narrow.shannon_bits);
    }

    #[test]
    fn empty_population() {
        let report = entropy_of(std::iter::empty());
        assert_eq!(report.population, 0);
        assert_eq!(report.distinct, 0);
        assert_eq!(report.shannon_bits, 0.0);
    }
}
