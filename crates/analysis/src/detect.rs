//! RQ1 — which requests are locally destined?
//!
//! Detection walks each visit's NetLog flows (grouped by source ID),
//! drops browser-internal sources, and classifies every request URL —
//! including redirect targets, since "websites can send a request to a
//! local resource, even if they can never receive the response"
//! (§3.1). A destination is *localhost* if it is the `localhost` name
//! or a loopback address, and *LAN* if it is in the RFC 1918 /
//! unique-local ranges.

use crate::intern::DomainInterner;
use kt_netbase::{Host, HostView, Locality, Os, OsSet, Scheme, Url, UrlView};
use kt_netlog::{FlowSet, FlowSetView};
use kt_store::{VisitRecord, VisitView};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One locally-destined request observed in telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalObservation {
    /// Visited site.
    pub domain: String,
    /// Site rank (top-list crawls).
    pub rank: Option<u32>,
    /// Malicious category code, if from the malicious crawl.
    pub malicious_category: Option<u8>,
    /// OS of the crawl that observed it.
    pub os: Os,
    /// The local destination URL.
    pub url: Url,
    /// Scheme (http/https/ws/wss — the Figure 4 axis).
    pub scheme: Scheme,
    /// Destination port.
    pub port: u16,
    /// Path plus query, as the paper tabulates.
    pub path: String,
    /// Loopback or Private.
    pub locality: Locality,
    /// True if the request was a WebSocket connection.
    pub websocket: bool,
    /// True if the local URL was reached via a redirect.
    pub via_redirect: bool,
    /// When the request was first observed, ms on the visit clock.
    pub time_ms: u64,
    /// Delay after the landing page finished loading, ms
    /// (the Figures 5–7 quantity).
    pub delay_ms: u64,
}

/// Split an ICE candidate `host:port` (or `[v6]:port`) address into its
/// host text and port without allocating. Returns `None` when the port
/// is missing or malformed — real candidate lines always carry one.
fn split_ice_address(address: &str) -> Option<(&str, u16)> {
    let colon = if address.starts_with('[') {
        let end = address.find(']')?;
        if !address[end + 1..].starts_with(':') {
            return None;
        }
        end + 1
    } else {
        address.rfind(':')?
    };
    let host = &address[..colon];
    if host.is_empty() {
        return None;
    }
    let port: u16 = address[colon + 1..].parse().ok()?;
    Some((host, port))
}

/// Materialise a [`LocalObservation`] for one already-classified local
/// ICE candidate. The candidate is surfaced as a `ws://` socket URL:
/// WebRTC rendezvous is a socket channel, not an HTTP fetch, and this
/// keeps the knock-request scheme statistics clean. Shared by the owned
/// and view detection paths so their output stays byte-identical.
#[allow(clippy::too_many_arguments)]
fn ice_observation(
    domain: String,
    rank: Option<u32>,
    malicious_category: Option<u8>,
    os: Os,
    address: &str,
    port: u16,
    locality: Locality,
    time_ms: u64,
    loaded_at_ms: u64,
) -> Option<LocalObservation> {
    let url = Url::parse(&format!("ws://{address}/")).ok()?;
    Some(LocalObservation {
        domain,
        rank,
        malicious_category,
        os,
        scheme: url.scheme(),
        port,
        path: url.path_and_query(),
        locality,
        websocket: true,
        via_redirect: false,
        time_ms,
        delay_ms: time_ms.saturating_sub(loaded_at_ms),
        url,
    })
}

/// Extract all local observations from one visit record.
pub fn detect_local(record: &VisitRecord) -> Vec<LocalObservation> {
    detect_local_with_page(record).0
}

/// Detection plus the visit's main-document URL (the first page flow
/// whose direct URL parses) from a single flow reconstruction. The
/// parallel analysis driver fans one decoded record out to every
/// classifier, and the §5.3 defense replay needs the page context —
/// this returns both without walking the events twice.
pub fn detect_local_with_page(record: &VisitRecord) -> (Vec<LocalObservation>, Option<Url>) {
    detect_local_with_page_view(&record.view())
}

/// Extract all local observations from a borrowed record view.
pub fn detect_local_view(view: &VisitView<'_>) -> Vec<LocalObservation> {
    detect_local_with_page_view(view).0
}

/// The pre-zero-copy reference implementation of
/// [`detect_local_with_page`]: owned flow reconstruction (every event
/// cloned into a [`FlowSet`]), owned candidate strings, and an owned
/// [`Url`] parse for every URL. Retained verbatim as the ablation
/// baseline the decode+detect bench measures against and the ground
/// truth the equivalence tests pin [`detect_local_with_page_view`] to,
/// byte for byte.
pub fn detect_local_with_page_owned(record: &VisitRecord) -> (Vec<LocalObservation>, Option<Url>) {
    let flows = FlowSet::from_events(record.events.iter().cloned());
    let mut out = Vec::new();
    let mut page_url: Option<Url> = None;
    for flow in flows.page_flows() {
        // Direct request URL.
        let mut candidates: Vec<(String, bool)> = Vec::new();
        if let Some(u) = flow.url() {
            candidates.push((u.to_string(), false));
        }
        for loc in flow.redirect_chain() {
            candidates.push((loc.to_string(), true));
        }
        for (text, via_redirect) in candidates {
            let Ok(url) = Url::parse(&text) else {
                continue;
            };
            if page_url.is_none() && !via_redirect {
                page_url = Some(url.clone());
            }
            let locality = url.locality();
            if !locality.is_local() {
                continue;
            }
            out.push(LocalObservation {
                domain: record.domain.clone(),
                rank: record.rank,
                malicious_category: record.malicious_category,
                os: record.os,
                scheme: url.scheme(),
                port: url.port(),
                path: url.path_and_query(),
                locality,
                websocket: flow.is_websocket() || url.scheme().is_websocket(),
                via_redirect,
                time_ms: flow.start_time(),
                delay_ms: flow.start_time().saturating_sub(record.loaded_at_ms),
                url,
            });
        }
        // WebRTC ICE candidates: a second local-discovery channel. The
        // candidate address is a bare `host:port`, not a URL — classify
        // the host directly, then surface local ones as observations.
        for (address, _candidate_type) in flow.ice_candidates() {
            let Some((host_text, port)) = split_ice_address(address) else {
                continue;
            };
            let Ok(host) = Host::parse(host_text) else {
                continue;
            };
            let locality = Locality::of_host(&host);
            if !locality.is_local() {
                continue;
            }
            out.extend(ice_observation(
                record.domain.clone(),
                record.rank,
                record.malicious_category,
                record.os,
                address,
                port,
                locality,
                flow.start_time(),
                record.loaded_at_ms,
            ));
        }
    }
    (out, page_url)
}

/// The zero-copy detection core: flows are reconstructed over borrowed
/// [`kt_netlog::EventView`]s and every candidate URL is parsed as a
/// borrowed [`UrlView`]. Nothing is copied out of the backing buffer
/// until a URL actually classifies as local (< 1% of requests) or
/// becomes the page URL — only then is an owned [`Url`] materialised.
pub fn detect_local_with_page_view(view: &VisitView<'_>) -> (Vec<LocalObservation>, Option<Url>) {
    let flows = FlowSetView::from_events(view.events.iter().copied());
    let mut out = Vec::new();
    let mut page_url: Option<Url> = None;
    for flow in flows.page_flows() {
        // Direct request URL first, then any redirect targets — all
        // borrowed from the flow's events.
        let direct = flow.url().map(|u| (u, false));
        let candidates = direct
            .into_iter()
            .chain(flow.redirects().map(|loc| (loc, true)));
        for (text, via_redirect) in candidates {
            let Ok(url) = UrlView::parse(text) else {
                continue;
            };
            if page_url.is_none() && !via_redirect {
                page_url = Some(url.to_owned());
            }
            let locality = url.locality();
            if !locality.is_local() {
                continue;
            }
            let url = url.to_owned();
            out.push(LocalObservation {
                domain: view.domain.to_string(),
                rank: view.rank,
                malicious_category: view.malicious_category,
                os: view.os,
                scheme: url.scheme(),
                port: url.port(),
                path: url.path_and_query(),
                locality,
                websocket: flow.is_websocket() || url.scheme().is_websocket(),
                via_redirect,
                time_ms: flow.start_time(),
                delay_ms: flow.start_time().saturating_sub(view.loaded_at_ms),
                url,
            });
        }
        // WebRTC ICE candidates, classified allocation-free: the host
        // text is parsed as a borrowed [`HostView`] and judged by
        // [`Locality::of_host_view`]; nothing is materialised unless
        // the candidate actually classifies as local.
        for (address, _candidate_type) in flow.ice_candidates() {
            let Some((host_text, port)) = split_ice_address(address) else {
                continue;
            };
            let Ok(host) = HostView::parse(host_text) else {
                continue;
            };
            let locality = Locality::of_host_view(&host);
            if !locality.is_local() {
                continue;
            }
            out.extend(ice_observation(
                view.domain.to_string(),
                view.rank,
                view.malicious_category,
                view.os,
                address,
                port,
                locality,
                flow.start_time(),
                view.loaded_at_ms,
            ));
        }
    }
    (out, page_url)
}

/// Per-site aggregation across OS crawls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteLocalActivity {
    /// The site.
    pub domain: String,
    /// Rank, if any.
    pub rank: Option<u32>,
    /// Malicious category code, if any.
    pub malicious_category: Option<u8>,
    /// OSes with loopback-destined traffic.
    pub localhost_os: OsSet,
    /// OSes with LAN-destined traffic.
    pub lan_os: OsSet,
    /// Every observation, all OSes.
    pub observations: Vec<LocalObservation>,
}

impl SiteLocalActivity {
    /// True if any loopback traffic was seen.
    pub fn has_localhost(&self) -> bool {
        !self.localhost_os.is_empty()
    }

    /// True if any LAN traffic was seen.
    pub fn has_lan(&self) -> bool {
        !self.lan_os.is_empty()
    }

    /// Distinct (scheme, port) pairs observed, sorted.
    pub fn scheme_ports(&self) -> Vec<(Scheme, u16)> {
        let mut v: Vec<(Scheme, u16)> = self
            .observations
            .iter()
            .map(|o| (o.scheme, o.port))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Distinct paths observed, sorted. Allocates one `String` per
    /// observation; classifiers on the hot path should prefer
    /// [`SiteLocalActivity::path_refs`].
    pub fn paths(&self) -> Vec<String> {
        self.path_refs().into_iter().map(str::to_string).collect()
    }

    /// Distinct paths observed, sorted, borrowed from the
    /// observations — the clone-free counterpart of
    /// [`SiteLocalActivity::paths`].
    pub fn path_refs(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.observations.iter().map(|o| o.path.as_str()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The earliest local-request delay on one OS, if any (the
    /// Figure 5 sample point for this site).
    pub fn first_delay_on(&self, os: Os, loopback: bool) -> Option<u64> {
        self.observations
            .iter()
            .filter(|o| o.os == os)
            .filter(|o| o.locality.is_loopback() == loopback)
            .map(|o| o.delay_ms)
            .min()
    }
}

/// Aggregate observations from many visit records into per-site
/// activity summaries, sorted by domain.
///
/// Sites are keyed through a [`DomainInterner`] so the per-observation
/// cost is a borrowed hash lookup, not a `String` clone; the domain is
/// copied once per distinct site.
pub fn aggregate_sites(records: &[VisitRecord]) -> Vec<SiteLocalActivity> {
    let mut interner = DomainInterner::new();
    let mut slots: HashMap<crate::intern::Symbol, usize> = HashMap::new();
    let mut sites: Vec<SiteLocalActivity> = Vec::new();
    for record in records {
        for obs in detect_local(record) {
            let sym = interner.intern(&obs.domain);
            let slot = *slots.entry(sym).or_insert_with(|| {
                sites.push(SiteLocalActivity {
                    domain: obs.domain.clone(),
                    rank: obs.rank,
                    malicious_category: obs.malicious_category,
                    localhost_os: OsSet::NONE,
                    lan_os: OsSet::NONE,
                    observations: Vec::new(),
                });
                sites.len() - 1
            });
            let entry = &mut sites[slot];
            if obs.locality.is_loopback() {
                entry.localhost_os = entry.localhost_os.with(obs.os);
            } else if obs.locality.is_private() {
                entry.lan_os = entry.lan_os.with(obs.os);
            }
            entry.observations.push(obs);
        }
    }
    sites.sort_by(|a, b| a.domain.cmp(&b.domain));
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_netlog::{EventParams, EventPhase, EventType, NetLogEvent, SourceRef, SourceType};
    use kt_store::{CrawlId, LoadOutcome};

    fn record_with_events(domain: &str, os: Os, events: Vec<NetLogEvent>) -> VisitRecord {
        VisitRecord {
            crawl: CrawlId::top2020(),
            domain: domain.to_string(),
            rank: Some(104),
            malicious_category: None,
            os,
            outcome: LoadOutcome::Success,
            loaded_at_ms: 400,
            events,
        }
    }

    fn url_request(id: u64, time: u64, url: &str) -> Vec<NetLogEvent> {
        vec![NetLogEvent {
            time,
            event_type: EventType::UrlRequestStartJob,
            source: SourceRef {
                id,
                kind: SourceType::UrlRequest,
            },
            phase: EventPhase::Begin,
            params: EventParams::UrlRequestStart {
                url: url.into(),
                method: "GET".into(),
                initiator: None,
                load_flags: 0,
            },
        }]
    }

    fn ws_request(id: u64, time: u64, url: &str) -> Vec<NetLogEvent> {
        vec![NetLogEvent {
            time,
            event_type: EventType::WebSocketSendRequestHeaders,
            source: SourceRef {
                id,
                kind: SourceType::WebSocket,
            },
            phase: EventPhase::Begin,
            params: EventParams::WebSocket { url: url.into() },
        }]
    }

    fn ice_candidate(id: u64, time: u64, address: &str) -> Vec<NetLogEvent> {
        vec![NetLogEvent {
            time,
            event_type: EventType::IceCandidateGathered,
            source: SourceRef {
                id,
                kind: SourceType::P2pSocket,
            },
            phase: EventPhase::None,
            params: EventParams::IceCandidate {
                address: address.into(),
                candidate_type: "host".into(),
            },
        }]
    }

    #[test]
    fn detects_loopback_and_lan_not_public() {
        let mut events = url_request(1, 500, "https://cdn.example/lib.js");
        events.extend(url_request(
            2,
            5_400,
            "http://localhost:8888/wp-content/uploads/a.jpg",
        ));
        events.extend(url_request(3, 6_000, "http://10.0.0.200/b.mp4"));
        let record = record_with_events("site.example", Os::Linux, events);
        let obs = detect_local(&record);
        assert_eq!(obs.len(), 2);
        assert!(obs[0].locality.is_loopback());
        assert_eq!(obs[0].delay_ms, 5_000);
        assert!(obs[1].locality.is_private());
        assert_eq!(obs[1].port, 80);
    }

    #[test]
    fn browser_internal_traffic_is_excluded() {
        let events = vec![NetLogEvent {
            time: 100,
            event_type: EventType::UrlRequestStartJob,
            source: SourceRef {
                id: 9,
                kind: SourceType::BrowserInternal,
            },
            phase: EventPhase::Begin,
            params: EventParams::UrlRequestStart {
                url: "http://127.0.0.1:5000/browser-housekeeping".into(),
                method: "GET".into(),
                initiator: None,
                load_flags: 0,
            },
        }];
        let record = record_with_events("site.example", Os::Windows, events);
        assert!(detect_local(&record).is_empty());
    }

    #[test]
    fn websocket_flag_and_scheme() {
        let events = ws_request(1, 9_000, "wss://localhost:3389/");
        let record = record_with_events("shop.example", Os::Windows, events);
        let obs = detect_local(&record);
        assert_eq!(obs.len(), 1);
        assert!(obs[0].websocket);
        assert_eq!(obs[0].scheme, Scheme::Wss);
        assert_eq!(obs[0].port, 3389);
        assert_eq!(obs[0].path, "/");
    }

    #[test]
    fn redirect_targets_count() {
        let mut events = url_request(1, 700, "http://romadecade.example/");
        events.push(NetLogEvent {
            time: 800,
            event_type: EventType::UrlRequestRedirected,
            source: SourceRef {
                id: 1,
                kind: SourceType::UrlRequest,
            },
            phase: EventPhase::None,
            params: EventParams::Redirect {
                location: "http://127.0.0.1/".into(),
            },
        });
        let record = record_with_events("romadecade.example", Os::MacOs, events);
        let obs = detect_local(&record);
        assert_eq!(obs.len(), 1);
        assert!(obs[0].via_redirect);
        assert!(obs[0].locality.is_loopback());
    }

    #[test]
    fn ice_candidates_are_a_second_local_channel() {
        // An mDNS-obfuscated candidate, a raw private-IP candidate, a
        // public srflx candidate, and a malformed one (no port).
        let mut events = ice_candidate(1, 4_400, "f0ae4f9a-2d4c-4a91.local:9000");
        events.extend(ice_candidate(2, 4_500, "192.168.1.20:56100"));
        events.extend(ice_candidate(3, 4_600, "203.0.113.9:56100"));
        events.extend(ice_candidate(4, 4_700, "no-port.local"));
        let record = record_with_events("rtc.example", Os::Linux, events);
        let obs = detect_local(&record);
        assert_eq!(obs.len(), 2);
        // The .local name classifies Private (link-local resolution),
        // same as the raw RFC 1918 address it stands in for.
        assert!(obs[0].locality.is_private());
        assert_eq!(obs[0].port, 9000);
        assert!(obs[0].websocket);
        assert!(!obs[0].via_redirect);
        assert_eq!(obs[0].delay_ms, 4_000);
        assert!(obs[1].locality.is_private());
        assert_eq!(obs[1].port, 56100);
    }

    #[test]
    fn ipv6_loopback_detected() {
        let events = url_request(1, 1_000, "http://[::1]:9000/status");
        let record = record_with_events("v6.example", Os::Linux, events);
        let obs = detect_local(&record);
        assert_eq!(obs.len(), 1);
        assert!(obs[0].locality.is_loopback());
    }

    #[test]
    fn aggregation_merges_oses() {
        let win = record_with_events(
            "multi.example",
            Os::Windows,
            ws_request(1, 9_000, "wss://localhost:3389/"),
        );
        let linux = record_with_events(
            "multi.example",
            Os::Linux,
            url_request(1, 2_000, "http://10.1.2.3/x.png"),
        );
        let sites = aggregate_sites(&[win, linux]);
        assert_eq!(sites.len(), 1);
        let s = &sites[0];
        assert_eq!(s.localhost_os, OsSet::WINDOWS_ONLY);
        assert_eq!(s.lan_os, OsSet::LINUX_ONLY);
        assert!(s.has_localhost() && s.has_lan());
        assert_eq!(s.first_delay_on(Os::Windows, true), Some(8_600));
        assert_eq!(s.first_delay_on(Os::Windows, false), None);
    }

    #[test]
    fn malformed_urls_are_skipped_not_fatal() {
        let events = url_request(1, 1_000, "not a url at all");
        let record = record_with_events("weird.example", Os::Linux, events);
        assert!(detect_local(&record).is_empty());
    }

    #[test]
    fn view_detection_matches_owned_reference_byte_for_byte() {
        let mut events = url_request(1, 500, "https://cdn.example/lib.js");
        events.extend(url_request(
            2,
            5_400,
            "http://LOCALHOST:8888/wp-content/a.jpg",
        ));
        events.extend(url_request(3, 6_000, "http://10.0.0.200/b.mp4"));
        events.extend(ws_request(4, 9_000, "wss://localhost:3389/"));
        events.extend(url_request(5, 1_000, "not a url at all"));
        events.extend(ice_candidate(6, 4_400, "f0ae4f9a-2d4c-4a91.local:9000"));
        events.extend(ice_candidate(7, 4_500, "[::1]:9001"));
        events.extend(ice_candidate(8, 4_600, "203.0.113.9:56100"));
        events.extend(ice_candidate(9, 4_700, "garbage"));
        events.push(NetLogEvent {
            time: 800,
            event_type: EventType::UrlRequestRedirected,
            source: SourceRef {
                id: 1,
                kind: SourceType::UrlRequest,
            },
            phase: EventPhase::None,
            params: EventParams::Redirect {
                location: "http://127.0.0.1/redir?x=1".into(),
            },
        });
        for os in [Os::Windows, Os::Linux] {
            let record = record_with_events("equiv.example", os, events.clone());
            let owned = detect_local_with_page_owned(&record);
            let via_wrapper = detect_local_with_page(&record);
            let via_view = detect_local_with_page_view(&record.view());
            assert_eq!(owned, via_wrapper);
            assert_eq!(owned, via_view);
            assert!(!owned.0.is_empty() && owned.1.is_some());
        }
    }

    #[test]
    fn scheme_ports_and_paths_dedup() {
        let mut events = ws_request(1, 1_000, "ws://localhost:6463/?v=1");
        events.extend(ws_request(2, 1_100, "ws://localhost:6463/?v=1"));
        events.extend(ws_request(3, 1_200, "ws://localhost:6464/?v=1"));
        let record = record_with_events("discordy.example", Os::MacOs, events);
        let sites = aggregate_sites(&[record]);
        assert_eq!(
            sites[0].scheme_ports(),
            vec![(Scheme::Ws, 6463), (Scheme::Ws, 6464)]
        );
        assert_eq!(sites[0].paths(), vec!["/?v=1".to_string()]);
    }
}
