//! Figures 4 and 8 — the OS → scheme → port sunburst data.
//!
//! The figures in the paper are three-ring sunbursts: the centre is an
//! OS with its total localhost request count, the middle ring splits
//! by scheme, the outer ring by port. This module computes exactly
//! those nested counts; the repro binary renders them as indented
//! text.

use kt_netbase::{Os, Scheme};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::detect::LocalObservation;

/// Nested request counts for one OS.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OsRing {
    /// Total localhost requests on this OS.
    pub total: usize,
    /// scheme → (total, port → count).
    pub by_scheme: BTreeMap<Scheme, SchemeRing>,
}

/// Counts for one scheme within one OS.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeRing {
    /// Requests over this scheme.
    pub total: usize,
    /// Port → request count.
    pub by_port: BTreeMap<u16, usize>,
}

/// The full figure: one ring set per OS.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortRings {
    /// OS → nested counts.
    pub by_os: BTreeMap<Os, OsRing>,
}

impl PortRings {
    /// Tally localhost observations (the paper's Figure 4 counts
    /// requests, not sites). LAN observations are excluded — the
    /// figure covers localhost traffic only.
    pub fn from_observations<'a, I>(observations: I) -> PortRings
    where
        I: IntoIterator<Item = &'a LocalObservation>,
    {
        let mut rings = PortRings::default();
        for obs in observations {
            if !obs.locality.is_loopback() {
                continue;
            }
            let os_ring = rings.by_os.entry(obs.os).or_default();
            os_ring.total += 1;
            let scheme_ring = os_ring.by_scheme.entry(obs.scheme).or_default();
            scheme_ring.total += 1;
            *scheme_ring.by_port.entry(obs.port).or_default() += 1;
        }
        rings
    }

    /// The dominant scheme on one OS, if any traffic exists.
    pub fn dominant_scheme(&self, os: Os) -> Option<(Scheme, f64)> {
        let ring = self.by_os.get(&os)?;
        let (scheme, counts) = ring.by_scheme.iter().max_by_key(|(_, r)| r.total)?;
        Some((*scheme, counts.total as f64 / ring.total.max(1) as f64))
    }

    /// Render as the indented text version of the sunburst.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (os, ring) in &self.by_os {
            out.push_str(&format!("{} ({} requests)\n", os.name(), ring.total));
            for (scheme, sring) in &ring.by_scheme {
                out.push_str(&format!("  {scheme} ({})\n", sring.total));
                let ports: Vec<String> = sring
                    .by_port
                    .iter()
                    .map(|(p, n)| {
                        if *n > 1 {
                            format!("{p}×{n}")
                        } else {
                            p.to_string()
                        }
                    })
                    .collect();
                out.push_str(&format!("    ports: {}\n", ports.join(" ")));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_netbase::{Locality, Url};

    fn obs(os: Os, scheme: Scheme, port: u16, loopback: bool) -> LocalObservation {
        let host = if loopback { "localhost" } else { "10.0.0.5" };
        let url = Url::parse(&format!("{scheme}://{host}:{port}/")).unwrap();
        LocalObservation {
            domain: "x.example".into(),
            rank: None,
            malicious_category: None,
            os,
            scheme,
            port,
            path: "/".into(),
            locality: if loopback {
                Locality::Loopback
            } else {
                Locality::Private
            },
            websocket: scheme.is_websocket(),
            via_redirect: false,
            time_ms: 0,
            delay_ms: 0,
            url,
        }
    }

    #[test]
    fn nested_counts() {
        let observations = vec![
            obs(Os::Windows, Scheme::Wss, 3389, true),
            obs(Os::Windows, Scheme::Wss, 3389, true),
            obs(Os::Windows, Scheme::Wss, 5939, true),
            obs(Os::Windows, Scheme::Http, 80, true),
            obs(Os::Linux, Scheme::Http, 80, true),
        ];
        let rings = PortRings::from_observations(&observations);
        let win = &rings.by_os[&Os::Windows];
        assert_eq!(win.total, 4);
        assert_eq!(win.by_scheme[&Scheme::Wss].total, 3);
        assert_eq!(win.by_scheme[&Scheme::Wss].by_port[&3389], 2);
        assert_eq!(rings.by_os[&Os::Linux].total, 1);
    }

    #[test]
    fn lan_observations_excluded() {
        let observations = vec![
            obs(Os::MacOs, Scheme::Http, 80, true),
            obs(Os::MacOs, Scheme::Http, 80, false), // LAN: not counted
        ];
        let rings = PortRings::from_observations(&observations);
        assert_eq!(rings.by_os[&Os::MacOs].total, 1);
    }

    #[test]
    fn dominant_scheme() {
        let observations = vec![
            obs(Os::Windows, Scheme::Wss, 3389, true),
            obs(Os::Windows, Scheme::Wss, 5900, true),
            obs(Os::Windows, Scheme::Http, 80, true),
        ];
        let rings = PortRings::from_observations(&observations);
        let (scheme, share) = rings.dominant_scheme(Os::Windows).unwrap();
        assert_eq!(scheme, Scheme::Wss);
        assert!((share - 2.0 / 3.0).abs() < 1e-9);
        assert!(rings.dominant_scheme(Os::Linux).is_none());
    }

    #[test]
    fn render_shape() {
        let observations = vec![obs(Os::Linux, Scheme::Ws, 28337, true)];
        let rings = PortRings::from_observations(&observations);
        let text = rings.render();
        assert!(text.contains("Linux (1 requests)"));
        assert!(text.contains("ws (1)"));
        assert!(text.contains("28337"));
    }
}
