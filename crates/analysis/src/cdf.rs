//! Empirical CDFs: the engine behind Figures 3, 5, 6, 7 and 9.

use serde::{Deserialize, Serialize};

/// An empirical CDF over f64 samples.
///
/// ```
/// use kt_analysis::Ecdf;
///
/// let delays = Ecdf::new(vec![2.0, 5.0, 9.0, 12.0]);
/// assert_eq!(delays.median(), Some(5.0));
/// assert_eq!(delays.eval(9.0), 0.75);
/// assert_eq!(delays.max(), Some(12.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (order irrelevant; NaNs rejected).
    pub fn new(mut samples: Vec<f64>) -> Ecdf {
        assert!(
            samples.iter().all(|v| !v.is_nan()),
            "ECDF samples must not contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// F(x): fraction of samples ≤ x.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point gives the count of samples <= x.
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (0 ≤ q ≤ 1), by the nearest-rank method.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// Median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Evenly-spaced plot points `(x, F(x))` for rendering the curve.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let (lo, hi) = (self.sorted[0], self.sorted[self.sorted.len() - 1]);
        (0..=points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / points as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.0), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(e.median(), Some(3.0));
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(1.0), Some(5.0));
        assert_eq!(e.quantile(0.2), Some(1.0));
        assert_eq!(e.quantile(0.21), Some(2.0));
        assert_eq!(e.min(), Some(1.0));
        assert_eq!(e.max(), Some(5.0));
    }

    #[test]
    fn empty_cdf() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.eval(1.0), 0.0);
        assert_eq!(e.median(), None);
        assert!(e.curve(10).is_empty());
    }

    #[test]
    fn curve_is_monotone() {
        let e = Ecdf::new((0..100).map(|i| (i * i % 37) as f64).collect());
        let curve = e.curve(50);
        assert_eq!(curve.len(), 51);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be nondecreasing");
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Ecdf::new(vec![1.0, f64::NAN]);
    }
}
