//! Streaming longitudinal diff over a content-addressed snapshot
//! series.
//!
//! [`longitudinal::transitions`] compares the paper's two crawls from
//! fully-materialised [`SiteLocalActivity`] lists. A rolling series of
//! N snapshots can't afford that: this module walks N manifests of a
//! [`SnapshotStore`] *shard-parallel* — workers claim domain-hash
//! shards off an atomic ticket, decode each referenced chunk through
//! the borrowed [`decode_view`] path, classify on the fly, and emit
//! per-domain timelines. The merge is a deterministic fold over sorted
//! partials, so the rendered tables are byte-identical across worker
//! counts, exactly like [`par::analyze_crawl_par`].
//!
//! Three longitudinal tables come out (the paper's §4.1/§4.3 views,
//! generalised from one pair to every consecutive pair):
//!
//! * **behaviour-class churn** — a [`TransitionMatrix`] per pair;
//! * **adoption curves** — per-snapshot localhost/LAN site counts and
//!   the per-class split (ThreatMetrix and BIG-IP adoption over time);
//! * **flows** — sites that entered, exited, or persisted in the
//!   local-traffic population at each step.
//!
//! [`longitudinal::transitions`]: crate::longitudinal::transitions
//! [`par::analyze_crawl_par`]: crate::par::analyze_crawl_par
//! [`decode_view`]: kt_store::decode_view

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use kt_netbase::OsSet;
use kt_store::decode_view;
use kt_store::snapshot::{shard_of, slot_os, SnapshotStore, SNAPSHOT_SHARDS};
use kt_trace::{names, Labels, Trace};

use crate::classify::{classify_site, ReasonClass};
use crate::detect::{detect_local_view, SiteLocalActivity};
use crate::longitudinal::{Transition, TransitionMatrix};
use crate::report::TextTable;

/// One site's state in one snapshot, as the diff walker sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SiteState {
    listed: bool,
    localhost: bool,
    lan: bool,
    /// Classification, present only for localhost-active sites (the
    /// same filter [`crate::longitudinal::transitions`] applies).
    class: Option<ReasonClass>,
}

const UNLISTED: SiteState = SiteState {
    listed: false,
    localhost: false,
    lan: false,
    class: None,
};

/// Per-snapshot population counts (one adoption-curve sample).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AdoptionRow {
    /// Snapshot label.
    pub label: String,
    /// Sites listed in this snapshot's manifest.
    pub sites: usize,
    /// Sites with loopback-destined traffic.
    pub localhost: usize,
    /// Sites with LAN-destined traffic.
    pub lan: usize,
    /// Localhost-active sites by classified reason.
    pub by_class: BTreeMap<ReasonClass, usize>,
}

impl AdoptionRow {
    /// Count for one class.
    pub fn class(&self, class: ReasonClass) -> usize {
        self.by_class.get(&class).copied().unwrap_or(0)
    }
}

/// Local-traffic population flow across one consecutive pair.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlowRow {
    /// Earlier snapshot label.
    pub from: String,
    /// Later snapshot label.
    pub to: String,
    /// Locally active in `to` but not in `from`.
    pub entered: usize,
    /// Locally active in `from` but not in `to`.
    pub exited: usize,
    /// Locally active in both.
    pub persisted: usize,
}

/// The full longitudinal diff over N snapshots.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotDiff {
    /// Snapshot labels, oldest first.
    pub labels: Vec<String>,
    /// One adoption sample per snapshot.
    pub adoption: Vec<AdoptionRow>,
    /// One churn matrix per consecutive pair.
    pub churn: Vec<TransitionMatrix>,
    /// One flow row per consecutive pair.
    pub flows: Vec<FlowRow>,
    /// Manifest rows decoded (chunk views walked).
    pub rows_walked: u64,
}

/// Diff `labels` (oldest first) with `workers` threads. Panics if a
/// label is absent from the store.
pub fn diff_snapshots(store: &SnapshotStore, labels: &[&str], workers: usize) -> SnapshotDiff {
    diff_snapshots_traced(store, labels, workers, None)
}

/// [`diff_snapshots`] reporting the rows-walked counter into a trace.
pub fn diff_snapshots_traced(
    store: &SnapshotStore,
    labels: &[&str],
    workers: usize,
    trace: Option<&Trace>,
) -> SnapshotDiff {
    let manifests: Vec<_> = labels
        .iter()
        .map(|l| {
            store
                .manifest(l)
                .unwrap_or_else(|| panic!("snapshot {l:?} not in store"))
        })
        .collect();
    let workers = workers.max(1);

    // Workers claim domain-hash shards off an atomic ticket and fold
    // each shard's domains into a local partial. A domain's rows live
    // in exactly one shard across every manifest, so each worker sees
    // a site's whole timeline and can classify it without cross-worker
    // state. Partials merge into a BTreeMap, erasing claim order.
    let ticket = AtomicUsize::new(0);
    let mut timelines: BTreeMap<String, Vec<SiteState>> = BTreeMap::new();
    let mut rows_walked: u64 = 0;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let ticket = &ticket;
            let manifests = &manifests;
            handles.push(scope.spawn(move || {
                let mut partial: Vec<(String, Vec<SiteState>)> = Vec::new();
                let mut walked: u64 = 0;
                loop {
                    let shard = ticket.fetch_add(1, Ordering::Relaxed);
                    if shard >= SNAPSHOT_SHARDS {
                        break;
                    }
                    walk_shard(store, manifests, shard, &mut partial, &mut walked);
                }
                (partial, walked)
            }));
        }
        for handle in handles {
            let (partial, walked) = handle.join().expect("diff worker panicked");
            rows_walked += walked;
            for (domain, timeline) in partial {
                timelines.insert(domain, timeline);
            }
        }
    });

    let diff = assemble(labels, &manifests, &timelines, rows_walked);
    if let Some(t) = trace {
        t.inc_counter(
            names::LOCAL_OBSERVATIONS_TOTAL,
            Labels::new(&[("crawl", "snapshot-diff")]),
            diff.adoption.iter().map(|r| r.localhost as u64).sum(),
        );
    }
    diff
}

/// Classify every domain of one shard across all manifests.
fn walk_shard(
    store: &SnapshotStore,
    manifests: &[&kt_store::snapshot::SnapshotManifest],
    shard: usize,
    partial: &mut Vec<(String, Vec<SiteState>)>,
    walked: &mut u64,
) {
    // Distinct shard domains across every manifest, sorted (BTreeMap
    // keys are sorted already, so a BTreeMap merge keeps determinism).
    let mut domains: BTreeMap<&str, ()> = BTreeMap::new();
    for manifest in manifests {
        for (domain, _) in manifest.entries.keys() {
            if shard_of(domain) == shard {
                domains.insert(domain.as_str(), ());
            }
        }
    }
    for (domain, ()) in domains {
        let mut timeline = Vec::with_capacity(manifests.len());
        for manifest in manifests {
            timeline.push(site_state(store, manifest, domain, walked));
        }
        partial.push((domain.to_string(), timeline));
    }
}

/// Decode one site's rows in one snapshot and classify them.
fn site_state(
    store: &SnapshotStore,
    manifest: &kt_store::snapshot::SnapshotManifest,
    domain: &str,
    walked: &mut u64,
) -> SiteState {
    let mut listed = false;
    let mut activity: Option<SiteLocalActivity> = None;
    for slot in 0u8..3 {
        let key = (domain.to_string(), slot);
        let Some(entry) = manifest.entries.get(&key) else {
            continue;
        };
        listed = true;
        let Some(bytes) = store.chunk(entry.hash) else {
            continue;
        };
        *walked += 1;
        let Ok(view) = decode_view(&bytes) else {
            continue;
        };
        let os = slot_os(slot).expect("slot in 0..3");
        debug_assert_eq!(view.os, os, "manifest slot disagrees with record OS");
        for obs in detect_local_view(&view) {
            let site = activity.get_or_insert_with(|| SiteLocalActivity {
                domain: domain.to_string(),
                rank: entry.rank,
                malicious_category: obs.malicious_category,
                localhost_os: OsSet::NONE,
                lan_os: OsSet::NONE,
                observations: Vec::new(),
            });
            if obs.locality.is_loopback() {
                site.localhost_os = site.localhost_os.with(obs.os);
            } else if obs.locality.is_private() {
                site.lan_os = site.lan_os.with(obs.os);
            }
            site.observations.push(obs);
        }
    }
    match activity {
        Some(site) => SiteState {
            listed,
            localhost: site.has_localhost(),
            lan: site.has_lan(),
            class: site.has_localhost().then(|| classify_site(&site)),
        },
        None => SiteState { listed, ..UNLISTED },
    }
}

/// Sequential deterministic fold of the merged timelines into tables.
fn assemble(
    labels: &[&str],
    manifests: &[&kt_store::snapshot::SnapshotManifest],
    timelines: &BTreeMap<String, Vec<SiteState>>,
    rows_walked: u64,
) -> SnapshotDiff {
    let mut diff = SnapshotDiff {
        labels: labels.iter().map(|l| l.to_string()).collect(),
        rows_walked,
        ..SnapshotDiff::default()
    };
    for (k, label) in labels.iter().enumerate() {
        let mut row = AdoptionRow {
            label: label.to_string(),
            sites: manifests[k].domains().len(),
            ..AdoptionRow::default()
        };
        for timeline in timelines.values() {
            let state = timeline[k];
            if state.localhost {
                row.localhost += 1;
            }
            if state.lan {
                row.lan += 1;
            }
            if let Some(class) = state.class {
                *row.by_class.entry(class).or_default() += 1;
            }
        }
        diff.adoption.push(row);
    }
    for k in 1..labels.len() {
        let mut matrix = TransitionMatrix::default();
        let mut flow = FlowRow {
            from: labels[k - 1].to_string(),
            to: labels[k].to_string(),
            ..FlowRow::default()
        };
        for timeline in timelines.values() {
            let (a, b) = (timeline[k - 1], timeline[k]);
            match (a.localhost, b.localhost) {
                (true, true) => flow.persisted += 1,
                (true, false) => flow.exited += 1,
                (false, true) => flow.entered += 1,
                (false, false) => {}
            }
            let cell = match (a.class, b.class) {
                (Some(x), Some(y)) if x == y => Some((x, Transition::Carried)),
                (Some(x), Some(_)) => Some((x, Transition::Reclassified)),
                (Some(x), None) => Some((x, Transition::Stopped)),
                (None, Some(y)) => Some((y, Transition::Started)),
                (None, None) => None,
            };
            if let Some((class, transition)) = cell {
                *matrix.counts.entry((class, transition)).or_default() += 1;
                *matrix.totals.entry(transition).or_default() += 1;
            }
        }
        diff.churn.push(matrix);
        diff.flows.push(flow);
    }
    diff
}

impl SnapshotDiff {
    /// Render every table: the adoption curve, the per-pair flows, and
    /// each pair's churn matrix. Byte-identical across worker counts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== Local-traffic adoption per snapshot ==\n");
        let mut adoption = TextTable::new([
            "Snapshot",
            "sites",
            "localhost",
            "LAN",
            "fraud detection",
            "bot detection",
            "native app",
            "developer error",
            "unknown",
        ]);
        for row in &self.adoption {
            adoption.row([
                row.label.clone(),
                row.sites.to_string(),
                row.localhost.to_string(),
                row.lan.to_string(),
                row.class(ReasonClass::FraudDetection).to_string(),
                row.class(ReasonClass::BotDetection).to_string(),
                row.class(ReasonClass::NativeApplication).to_string(),
                row.class(ReasonClass::DeveloperError).to_string(),
                row.class(ReasonClass::Unknown).to_string(),
            ]);
        }
        out.push_str(&adoption.render());
        out.push_str("\n== Local-traffic population flow ==\n");
        let mut flows = TextTable::new(["Step", "entered", "exited", "persisted"]);
        for flow in &self.flows {
            flows.row([
                format!("{} -> {}", flow.from, flow.to),
                flow.entered.to_string(),
                flow.exited.to_string(),
                flow.persisted.to_string(),
            ]);
        }
        out.push_str(&flows.render());
        for (k, matrix) in self.churn.iter().enumerate() {
            out.push_str(&format!(
                "\n== Behaviour churn {} -> {} ==\n",
                self.labels[k],
                self.labels[k + 1]
            ));
            out.push_str(&matrix.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_netbase::{DomainName, Os};
    use kt_store::snapshot::CANONICAL_CRAWL;
    use kt_store::{CrawlId, TelemetryStore};
    use kt_webgen::{Availability, Behavior, DevError, NativeApp, PlantedBehavior, WebSite};
    use proptest::prelude::*;

    /// Crawl a tiny planted population and ingest it as one snapshot.
    fn plant_snapshot(store: &mut SnapshotStore, label: &str, tm: &[&str], dev: &[&str]) {
        use kt_crawler::{run_crawl, CrawlConfig, CrawlJob};
        let mut sites: Vec<WebSite> = Vec::new();
        let mk = |domain: &str| DomainName::parse(domain).unwrap();
        for (i, domain) in tm.iter().enumerate() {
            let mut site = WebSite::plain(mk(domain), None, 2);
            site.behaviors.push(PlantedBehavior {
                behavior: Behavior::ThreatMetrix {
                    vendor: mk("online-metrix.net"),
                },
                os_set: OsSet::ALL,
                base_delay_ms: 5_000 + i as u64,
            });
            site.set_availability_all(Availability::Up);
            sites.push(site);
        }
        for (i, domain) in dev.iter().enumerate() {
            let mut site = WebSite::plain(mk(domain), None, 2);
            site.behaviors.push(PlantedBehavior {
                behavior: Behavior::NativeApp(NativeApp::Discord),
                os_set: OsSet::ALL,
                base_delay_ms: 3_000 + i as u64,
            });
            site.set_availability_all(Availability::Up);
            sites.push(site);
        }
        let jobs: Vec<CrawlJob<'_>> = sites
            .iter()
            .map(|site| CrawlJob {
                site,
                malicious_category: None,
            })
            .collect();
        let telemetry = TelemetryStore::new();
        let crawl = CrawlId(label.to_string());
        for os in [Os::Windows, Os::Linux] {
            let cfg = CrawlConfig::paper(crawl.clone(), os, 77);
            run_crawl(&jobs, &cfg, &telemetry);
        }
        for record in telemetry.crawl_records(&crawl) {
            store.ingest(label, &record, None);
        }
    }

    fn two_snapshot_store() -> SnapshotStore {
        let mut store = SnapshotStore::new();
        // snap00: a+b run ThreatMetrix, c runs a native app.
        plant_snapshot(
            &mut store,
            "snap00",
            &["a.example", "b.example"],
            &["c.example"],
        );
        // snap01: b dropped TM (exits), c persists, d enters.
        plant_snapshot(
            &mut store,
            "snap01",
            &["a.example"],
            &["c.example", "d.example"],
        );
        store
    }

    #[test]
    fn diff_finds_adoption_flows_and_churn() {
        let store = two_snapshot_store();
        let diff = diff_snapshots(&store, &["snap00", "snap01"], 2);
        assert_eq!(diff.labels, vec!["snap00", "snap01"]);
        assert_eq!(diff.adoption[0].localhost, 3);
        assert_eq!(diff.adoption[0].class(ReasonClass::FraudDetection), 2);
        assert_eq!(diff.adoption[1].class(ReasonClass::FraudDetection), 1);
        assert_eq!(diff.adoption[1].class(ReasonClass::NativeApplication), 2);
        let flow = &diff.flows[0];
        assert_eq!((flow.entered, flow.exited, flow.persisted), (1, 1, 2));
        let matrix = &diff.churn[0];
        assert_eq!(
            matrix.get(ReasonClass::FraudDetection, Transition::Carried),
            1
        );
        assert_eq!(
            matrix.get(ReasonClass::FraudDetection, Transition::Stopped),
            1
        );
        assert_eq!(
            matrix.get(ReasonClass::NativeApplication, Transition::Started),
            1
        );
        assert!(diff.rows_walked > 0);
    }

    #[test]
    fn linked_rows_diff_identically_to_ingested_rows() {
        // A snapshot built by reference-linking must be
        // indistinguishable from one built by re-ingesting the same
        // records — the incremental path's correctness in miniature.
        let mut ingested = two_snapshot_store();
        plant_snapshot(
            &mut ingested,
            "snap02",
            &["a.example"],
            &["c.example", "d.example"],
        );
        let mut linked = two_snapshot_store();
        for domain in ["a.example", "c.example", "d.example"] {
            for os in [Os::Windows, Os::Linux] {
                assert!(linked.link_from("snap01", "snap02", domain, os, None));
            }
        }
        let labels = ["snap00", "snap01", "snap02"];
        let a = diff_snapshots(&ingested, &labels, 2).render();
        let b = diff_snapshots(&linked, &labels, 2).render();
        assert_eq!(a, b);
    }

    #[test]
    fn diff_is_worker_count_invariant() {
        let store = two_snapshot_store();
        let baseline = diff_snapshots(&store, &["snap00", "snap01"], 1);
        for workers in [2, 4, 8] {
            let diff = diff_snapshots(&store, &["snap00", "snap01"], workers);
            assert_eq!(diff, baseline, "{workers}-worker diff differs");
            assert_eq!(diff.render(), baseline.render());
        }
    }

    #[test]
    fn canonical_chunks_decode_under_the_canonical_crawl() {
        // The walker reads canonicalised bytes; sanity-check the crawl
        // id it sees is the canonical one, not a snapshot label.
        let store = two_snapshot_store();
        let bytes = store.get("snap00", "a.example", Os::Windows).unwrap();
        let view = decode_view(&bytes).unwrap();
        assert_eq!(view.crawl, CANONICAL_CRAWL);
        assert_eq!(view.rank, None);
    }

    proptest! {
        #[test]
        fn empty_and_single_label_diffs_are_total(workers in 1usize..9) {
            let store = two_snapshot_store();
            let single = diff_snapshots(&store, &["snap01"], workers);
            prop_assert_eq!(single.churn.len(), 0);
            prop_assert_eq!(single.flows.len(), 0);
            prop_assert_eq!(single.adoption.len(), 1);
            prop_assert_eq!(single.adoption[0].localhost, 3);
        }
    }

    #[test]
    fn dev_error_sites_classify_in_adoption() {
        let mut store = SnapshotStore::new();
        use kt_crawler::{run_crawl, CrawlConfig, CrawlJob};
        let mut site = WebSite::plain(DomainName::parse("lr.example").unwrap(), None, 1);
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::DevError(DevError::LiveReload {
                scheme: kt_netbase::Scheme::Ws,
                port: 35729,
            }),
            os_set: OsSet::ALL,
            base_delay_ms: 2_000,
        });
        site.set_availability_all(Availability::Up);
        let sites = [site];
        let jobs: Vec<CrawlJob<'_>> = sites
            .iter()
            .map(|site| CrawlJob {
                site,
                malicious_category: None,
            })
            .collect();
        let telemetry = TelemetryStore::new();
        let crawl = CrawlId("snap00".to_string());
        let cfg = CrawlConfig::paper(crawl.clone(), Os::Linux, 5);
        run_crawl(&jobs, &cfg, &telemetry);
        for record in telemetry.crawl_records(&crawl) {
            store.ingest("snap00", &record, Some(1));
        }
        let diff = diff_snapshots(&store, &["snap00"], 1);
        assert_eq!(diff.adoption[0].class(ReasonClass::DeveloperError), 1);
    }
}
