//! Measurement bias: what the crawler's own detectability costs it.
//!
//! The paper's prevalence numbers implicitly assume a site behaves the
//! same under an instrumented headless Chrome as under a real user.
//! The sensor-planted population (see [`kt_webgen::sensor`]) breaks
//! that assumption on purpose, with exact ground truth: every site
//! that *would* talk to the local network is known at generation time.
//! This module crawls that population once per [`CrawlerProfile`],
//! runs the unchanged passive pipeline over each capture, and compares
//! observed against true rates — the per-profile bias the paper could
//! not measure because the real web's ground truth is unknowable.
//!
//! Everything here is worker-count invariant: the crawls key every
//! sampled quantity on `(seed, domain)`, the analysis merges
//! deterministically, and the report renders from sorted sets — CI
//! byte-diffs the table across `--workers 1` and `--workers 8`.

use std::collections::BTreeSet;

use kt_crawler::{run_crawl, CrawlConfig, CrawlJob};
use kt_netbase::Os;
use kt_store::{CrawlId, TelemetryStore};
use kt_trace::metrics::{Labels, Registry};
use kt_trace::names;
use kt_webgen::{CrawlerProfile, PopulationConfig, SensorArchetype, WebPopulation, WebSite};

use crate::par::analyze_crawl_par;

/// Configuration of one bias sweep.
#[derive(Debug, Clone, Copy)]
pub struct BiasConfig {
    /// Run seed: keys the population, the sensor verdicts and the
    /// crawls — the whole sweep is a pure function of it.
    pub seed: u64,
    /// Worker threads for each crawl and each analysis pass. Any
    /// value renders the identical report.
    pub workers: usize,
}

impl BiasConfig {
    /// Default sweep for a seed.
    pub fn new(seed: u64) -> BiasConfig {
        BiasConfig { seed, workers: 4 }
    }
}

/// One archetype's confusion cell under one profile: of the sensored
/// ground-truth sites running this archetype, how many gated the
/// behaviour and how many the pipeline still observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchetypeCell {
    /// The deployed sensor archetype.
    pub archetype: SensorArchetype,
    /// Sensored ground-truth sites running this archetype.
    pub sites: u64,
    /// Sites whose gate suppressed the in-window behaviour for this
    /// profile (recomputed from the seed; matches the crawl exactly).
    pub gated: u64,
    /// Sites the passive pipeline observed as locally active anyway.
    pub observed: u64,
}

impl ArchetypeCell {
    /// Sites this archetype hid from the profile.
    pub fn hidden(&self) -> u64 {
        self.sites - self.observed
    }
}

/// Observed-vs-true local activity for one crawler profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileBias {
    /// The profile the crawl presented.
    pub profile: CrawlerProfile,
    /// Ground-truth locally-active sites in the population
    /// (profile-invariant by construction).
    pub true_sites: u64,
    /// Ground-truth sites the crawl observed as locally active.
    pub observed_sites: u64,
    /// Ground-truth sites the crawl missed.
    pub suppressed: u64,
    /// The observed ground-truth domains, sorted.
    pub observed_domains: Vec<String>,
    /// Per-archetype confusion cells, in [`SensorArchetype::ALL`] order.
    pub cells: Vec<ArchetypeCell>,
}

impl ProfileBias {
    /// observed / true — the headline bias figure (1.0 = unbiased).
    pub fn observed_ratio(&self) -> f64 {
        if self.true_sites == 0 {
            return 1.0;
        }
        self.observed_sites as f64 / self.true_sites as f64
    }
}

/// The full sweep result: one row per profile over the same population.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasReport {
    /// Run seed.
    pub seed: u64,
    /// The crawling OS (all profiles crawl the same one).
    pub os: Os,
    /// Sites in the crawled population.
    pub population_sites: u64,
    /// One row per profile, in [`CrawlerProfile::ALL`] order.
    pub rows: Vec<ProfileBias>,
}

impl BiasReport {
    /// Row for one profile.
    pub fn row(&self, profile: CrawlerProfile) -> Option<&ProfileBias> {
        self.rows.iter().find(|r| r.profile == profile)
    }

    /// Deterministic text rendering — the artifact CI diffs across
    /// worker counts.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bias sweep: os={} seed={} sites={}",
            self.os.name(),
            self.seed,
            self.population_sites,
        );
        let _ = writeln!(
            out,
            "  {:<18} {:>6} {:>9} {:>11} {:>7}",
            "profile", "true", "observed", "suppressed", "ratio"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "  {:<18} {:>6} {:>9} {:>11} {:>7.3}",
                row.profile.name(),
                row.true_sites,
                row.observed_sites,
                row.suppressed,
                row.observed_ratio(),
            );
        }
        let _ = writeln!(out, "  archetype cells (sites gated observed hidden):");
        for row in &self.rows {
            for cell in &row.cells {
                if cell.sites == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {:<18} {:<16} {:>5} {:>5} {:>8} {:>6}",
                    row.profile.name(),
                    cell.archetype.name(),
                    cell.sites,
                    cell.gated,
                    cell.observed,
                    cell.hidden(),
                );
            }
        }
        out
    }
}

/// Ground-truth domains of a population's 2020 snapshot: every site
/// that would emit locally-destined traffic for *some* profile.
fn truth_sites(population: &WebPopulation) -> Vec<&WebSite> {
    population
        .sites2020
        .iter()
        .filter(|s| s.has_local_ground_truth())
        .collect()
}

/// Crawl the sensor-planted population once per profile and compare
/// each crawl's observed locally-active set against the planted truth.
pub fn run_bias_sweep(cfg: &BiasConfig) -> BiasReport {
    let population = WebPopulation::generate(PopulationConfig::bias_scale(cfg.seed));
    let os = Os::Windows;
    let truth = truth_sites(&population);

    let mut rows = Vec::new();
    for profile in CrawlerProfile::ALL {
        let store = TelemetryStore::new();
        let crawl = CrawlId(format!("bias-{}", profile.name()));
        let mut config = CrawlConfig::paper(crawl.clone(), os, cfg.seed);
        config.workers = cfg.workers;
        config.profile = profile;
        let jobs: Vec<CrawlJob<'_>> = population
            .sites2020
            .iter()
            .map(|site| CrawlJob {
                site,
                malicious_category: None,
            })
            .collect();
        run_crawl(&jobs, &config, &store);

        let analysis = analyze_crawl_par(&store, &crawl, cfg.workers);
        let active: BTreeSet<&str> = analysis.sites.iter().map(|s| s.domain.as_str()).collect();
        let observed: BTreeSet<&str> = truth
            .iter()
            .map(|s| s.domain.as_str())
            .filter(|d| active.contains(d))
            .collect();

        let cells = SensorArchetype::ALL
            .iter()
            .map(|&archetype| {
                let mut cell = ArchetypeCell {
                    archetype,
                    sites: 0,
                    gated: 0,
                    observed: 0,
                };
                for site in &truth {
                    let Some(sensor) = site.sensor.filter(|s| s.archetype == archetype) else {
                        continue;
                    };
                    let domain = site.domain.as_str();
                    cell.sites += 1;
                    if sensor.gate(cfg.seed, profile, domain).suppresses_behavior() {
                        cell.gated += 1;
                    }
                    if observed.contains(domain) {
                        cell.observed += 1;
                    }
                }
                cell
            })
            .collect();

        rows.push(ProfileBias {
            profile,
            true_sites: truth.len() as u64,
            observed_sites: observed.len() as u64,
            suppressed: (truth.len() - observed.len()) as u64,
            observed_domains: observed.iter().map(|d| d.to_string()).collect(),
            cells,
        });
    }

    BiasReport {
        seed: cfg.seed,
        os,
        population_sites: population.sites2020.len() as u64,
        rows,
    }
}

/// Export the sweep under the `bias_*` schema, labelled by profile
/// (and archetype for the hidden-site cells).
pub fn record_bias_metrics(report: &BiasReport, reg: &mut Registry) {
    for row in &report.rows {
        let labels = Labels::new(&[("profile", row.profile.name())]);
        for (name, count) in [
            (names::BIAS_TRUE_SITES_TOTAL, row.true_sites),
            (names::BIAS_OBSERVED_SITES_TOTAL, row.observed_sites),
            (names::BIAS_SUPPRESSED_SITES_TOTAL, row.suppressed),
        ] {
            if count > 0 {
                reg.inc_counter(name, labels.clone(), count);
            }
        }
        reg.set_gauge(names::BIAS_OBSERVED_RATIO, labels, row.observed_ratio());
        for cell in &row.cells {
            if cell.hidden() > 0 {
                reg.inc_counter(
                    names::BIAS_HIDDEN_SITES_TOTAL,
                    Labels::new(&[
                        ("archetype", cell.archetype.name()),
                        ("profile", row.profile.name()),
                    ]),
                    cell.hidden(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(workers: usize) -> BiasReport {
        run_bias_sweep(&BiasConfig { seed: 7, workers })
    }

    #[test]
    fn report_is_worker_count_invariant() {
        assert_eq!(sweep(1).render(), sweep(8).render());
    }

    #[test]
    fn planted_truth_is_profile_invariant_but_observations_are_not() {
        let report = sweep(2);
        let naive = report.row(CrawlerProfile::Naive).expect("naive row");
        let stealth = report.row(CrawlerProfile::Stealth).expect("stealth row");
        assert!(naive.true_sites > 0, "the population must plant truth");
        assert!(
            report.rows.iter().all(|r| r.true_sites == naive.true_sites),
            "ground truth cannot depend on how the crawler presents"
        );
        assert!(
            naive.observed_sites < stealth.observed_sites,
            "a detectable crawler must observe less: naive={} stealth={}",
            naive.observed_sites,
            stealth.observed_sites,
        );
        assert!(
            naive.suppressed > 0,
            "sensors must hide sites from the naive crawler"
        );
    }

    #[test]
    fn stealth_observes_a_strict_superset_of_naive() {
        let report = sweep(2);
        let naive = report.row(CrawlerProfile::Naive).expect("naive row");
        let stealth = report.row(CrawlerProfile::Stealth).expect("stealth row");
        let naive_set: BTreeSet<&str> = naive.observed_domains.iter().map(String::as_str).collect();
        let stealth_set: BTreeSet<&str> = stealth
            .observed_domains
            .iter()
            .map(String::as_str)
            .collect();
        assert!(
            naive_set.is_subset(&stealth_set),
            "monotone sensors: everything naive sees, stealth sees"
        );
        assert!(
            naive_set.len() < stealth_set.len(),
            "and stealth must see strictly more"
        );
    }

    #[test]
    fn webrtc_probes_are_swapped_never_hidden() {
        let report = sweep(2);
        for row in &report.rows {
            let cell = row
                .cells
                .iter()
                .find(|c| c.archetype == SensorArchetype::WebRtcProbe)
                .expect("webrtc cell");
            assert!(cell.sites > 0, "the population plants WebRTC probes");
            assert_eq!(
                cell.hidden(),
                0,
                "ICE candidates are gathered for every visitor ({})",
                row.profile.name()
            );
            assert_eq!(cell.gated, 0, "the Ice gate swaps, it does not suppress");
        }
    }

    #[test]
    fn metrics_label_by_profile_and_archetype() {
        let report = sweep(2);
        let mut reg = Registry::new();
        kt_trace::names::describe_defaults(&mut reg);
        record_bias_metrics(&report, &mut reg);
        let text = reg.render_prometheus();
        assert!(
            text.contains("bias_observed_sites_total{profile=\"naive\"}"),
            "per-profile observed counter missing:\n{text}"
        );
        assert!(
            text.contains("bias_observed_sites_total{profile=\"human-replay\"}"),
            "per-profile observed counter missing:\n{text}"
        );
        assert!(
            text.contains(
                "bias_hidden_sites_total{archetype=\"navigator-probe\",profile=\"naive\"}"
            ) || text.contains(
                "bias_hidden_sites_total{profile=\"naive\",archetype=\"navigator-probe\"}"
            ),
            "hidden cells must label by archetype and profile:\n{text}"
        );
        assert!(text.contains("bias_observed_ratio{profile=\"stealth\"}"));
    }
}
