//! A small string interner for per-crawl aggregation keys.
//!
//! The aggregation layer used to key its maps by `domain.clone()` —
//! one heap `String` per observation per map. At crawl scale (100K
//! sites × 3 OSes) those clones dominate the aggregation profile. A
//! [`DomainInterner`] assigns each distinct domain a dense `u32`
//! [`Symbol`] on first sight; hot-path maps key on the `Symbol`
//! (4 bytes, `Copy`, hashes in one multiply) and resolve back to the
//! string only when a report is rendered.
//!
//! Determinism note: symbol *values* depend on first-sight order, which
//! under the parallel driver depends on thread interleaving. Consumers
//! must therefore never order output by raw symbol — they sort by the
//! resolved string (see `par::analyze_crawl_par`), which restores the
//! byte-identical table order regardless of worker count.

use std::collections::HashMap;

/// An interned domain: a dense index into the interner's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interns domain strings to dense [`Symbol`]s for the lifetime of one
/// crawl analysis.
#[derive(Debug, Default)]
pub struct DomainInterner {
    by_name: HashMap<String, Symbol>,
    names: Vec<String>,
}

impl DomainInterner {
    /// An empty interner.
    pub fn new() -> DomainInterner {
        DomainInterner::default()
    }

    /// The symbol for `name`, allocating the string only on first
    /// sight. Repeat interning of a known name is a borrowed map
    /// lookup — no allocation.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), sym);
        sym
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// If `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut i = DomainInterner::new();
        let a = i.intern("a.example");
        let b = i.intern("b.example");
        assert_ne!(a, b);
        assert_eq!(i.intern("a.example"), a);
        assert_eq!(i.intern("b.example"), b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), "a.example");
        assert_eq!(i.resolve(b), "b.example");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn empty_interner() {
        let i = DomainInterner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
