//! The parallel analysis driver: one decode, every classifier.
//!
//! The sequential pipeline decodes a crawl's records several times —
//! once per table that wants them — and classifies on a single thread.
//! [`analyze_crawl_par`] streams the store shard by shard across scoped
//! worker threads instead, and the decode is *borrowed*: workers pull
//! raw segment bytes with [`TelemetryStore::shard_raw_on`], decode each
//! record once as a [`VisitView`] (string fields are slices into the
//! segment, never copied), and fan it out to every consumer in one
//! pass (local-traffic detection, the §5.3 PNA defense replay, the
//! Figure 4/8 port rings, and the Table 2 outcome tally). Each record's
//! domain is interned to a [`Symbol`] through a shared
//! [`DomainInterner`] — one short lock per record — so the partial
//! aggregates carry 4-byte `Copy` keys instead of cloned `String`s.
//!
//! Determinism: symbol values depend on which worker interned a domain
//! first, so after the join the merged entries are sorted by the
//! *resolved* `(domain, OS)` key — exactly the order
//! [`TelemetryStore::crawl_records`] returns and the sequential
//! [`aggregate_sites`] consumes. Every aggregate built from the sorted
//! entries is therefore byte-identical to the sequential path whatever
//! the worker count or shard claim interleaving. The equivalence tests
//! below and the Study-level table comparison prove it.
//!
//! [`aggregate_sites`]: crate::detect::aggregate_sites

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use kt_netbase::{Os, OsSet};
use kt_store::{decode_view, CrawlId, TelemetryStore, VisitView};
use kt_trace::{names, Labels, Trace, WorkerSink};

use crate::classify::{classify_site, ReasonClass};
use crate::defense::{page_env, verdict_for, AdoptionScenario, DefenseImpact};
use crate::detect::{detect_local_with_page_view, SiteLocalActivity};
use crate::intern::{DomainInterner, Symbol};
use crate::rings::PortRings;

/// Success/total visit counts for one (malicious category, OS) cell of
/// Table 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeTally {
    /// Visits attempted.
    pub total: usize,
    /// Visits that loaded successfully.
    pub ok: usize,
}

/// Everything one crawl's telemetry yields, computed in one pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrawlAnalysis {
    /// Records analysed (one per (domain, OS) pair).
    pub visits: usize,
    /// Per-site local activity, identical to
    /// `aggregate_sites(&store.crawl_records(crawl))`.
    pub sites: Vec<SiteLocalActivity>,
    /// Figure 4/8 localhost port rings over all observations.
    pub rings: PortRings,
    /// §5.3 PNA impact, identical to `defense::evaluate`.
    pub defense: DefenseImpact,
    /// (malicious category, OS) → success tally (the Table 2 rates).
    pub outcomes: BTreeMap<(u8, Os), OutcomeTally>,
}

/// Everything one decoded record contributes, computed where the
/// record was decoded so nothing downstream touches events again.
/// Shared with the online-aggregation path ([`crate::online`]), whose
/// partials hold the same yields keyed by owned domain strings.
#[derive(Debug, Clone)]
pub(crate) struct RecordYield {
    pub(crate) malicious_category: Option<u8>,
    pub(crate) os: Os,
    pub(crate) success: bool,
    pub(crate) observations: Vec<crate::detect::LocalObservation>,
    /// Per adoption scenario (in [`AdoptionScenario::ALL`] order):
    /// does any observation's PNA verdict permit the request?
    pub(crate) any_permitted: [bool; 3],
}

/// The store's OS column order (W/L/M — [`Os::ALL`]), which is also
/// how bulk reads sort records within a domain.
pub(crate) fn os_slot(os: Os) -> u8 {
    match os {
        Os::Windows => 0,
        Os::Linux => 1,
        Os::MacOs => 2,
    }
}

pub(crate) fn fan_out(view: &VisitView<'_>) -> RecordYield {
    let (observations, page_url) = detect_local_with_page_view(view);
    let page = page_env(page_url.as_ref());
    let mut any_permitted = [false; 3];
    for (i, scenario) in AdoptionScenario::ALL.into_iter().enumerate() {
        any_permitted[i] = observations
            .iter()
            .any(|obs| verdict_for(page, obs, scenario).permits());
    }
    RecordYield {
        malicious_category: view.malicious_category,
        os: view.os,
        success: view.outcome.is_success(),
        observations,
        any_permitted,
    }
}

/// Analyse one crawl's telemetry with `workers` threads, decoding each
/// record exactly once — as a borrowed view over the store's own
/// bytes. Produces the same sites, rings, and defense impact as the
/// sequential `aggregate_sites` / `PortRings` / `defense::evaluate`
/// calls over `store.crawl_records(crawl)`.
pub fn analyze_crawl_par(store: &TelemetryStore, crawl: &CrawlId, workers: usize) -> CrawlAnalysis {
    analyze_crawl_traced(store, crawl, workers, None)
}

/// Deterministic per-element stage costs, in simulated microseconds.
/// The `analysis_stage_seconds` histogram is fed from these — not from
/// `Instant` — so its buckets, sum, and count are a pure function of
/// the record set: byte-identical across worker counts, machines, and
/// kill/resume cycles. (Real wall time lives in `knocktalk profile`,
/// which is never byte-compared.) The constants approximate the
/// measured per-element costs in BENCH_pipeline.json at nominal
/// hardware speed; their absolute accuracy doesn't matter, their
/// determinism does.
const SIM_DECODE_BASE_US: u64 = 2;
const SIM_DECODE_PER_EVENT_US: u64 = 1;
const SIM_DETECT_BASE_US: u64 = 1;
const SIM_DETECT_PER_OBS_US: u64 = 3;
const SIM_ASSEMBLE_PER_ENTRY_US: u64 = 5;

/// Per-worker analysis instrumentation: the stage histogram handles
/// plus the local-observation counter, pre-registered so the per-record
/// hot path is two vector-index adds.
struct StageSink {
    sink: WorkerSink,
    decode: kt_trace::HistogramId,
    detect: kt_trace::HistogramId,
    observations: kt_trace::CounterId,
}

impl StageSink {
    fn new(crawl: &CrawlId) -> StageSink {
        let mut sink = WorkerSink::new();
        let stage = |stage| Labels::new(&[("crawl", crawl.as_str()), ("stage", stage)]);
        let decode = sink.histogram(&names::ANALYSIS_STAGE_SECONDS, stage("decode"));
        let detect = sink.histogram(&names::ANALYSIS_STAGE_SECONDS, stage("detect"));
        let observations = sink.counter(
            names::LOCAL_OBSERVATIONS_TOTAL,
            Labels::new(&[("crawl", crawl.as_str())]),
        );
        StageSink {
            sink,
            decode,
            detect,
            observations,
        }
    }
}

/// [`analyze_crawl_par`] reporting into a [`Trace`]: workers record
/// per-record decode/detect costs (under the deterministic sim-cost
/// model above) and local-observation counts into private sinks merged
/// at join; the supervisor adds the assemble stage and the derived
/// site/record gauges. Tracing never changes the returned analysis.
pub fn analyze_crawl_traced(
    store: &TelemetryStore,
    crawl: &CrawlId,
    workers: usize,
    trace: Option<&Trace>,
) -> CrawlAnalysis {
    let shards = store.shard_count();
    let workers = workers.max(1).min(shards);
    // Workers claim shards off an atomic ticket (same self-scheduling
    // shape as the crawl pool) and build disjoint partial vectors.
    let ticket = AtomicUsize::new(0);
    let interner = Mutex::new(DomainInterner::new());
    let mut entries: Vec<((Symbol, u8), RecordYield)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let ticket = &ticket;
                let interner = &interner;
                scope.spawn(move || {
                    let mut stage_sink = trace.map(|_| StageSink::new(crawl));
                    let mut partial: Vec<((Symbol, u8), RecordYield)> = Vec::new();
                    loop {
                        let shard = ticket.fetch_add(1, Ordering::Relaxed);
                        if shard >= shards {
                            break;
                        }
                        for raw in store.shard_raw_on(crawl, shard, None) {
                            // Undecodable segments cannot occur for
                            // records the store itself encoded; skip
                            // defensively all the same.
                            let Ok(view) = decode_view(&raw) else {
                                continue;
                            };
                            let events = view.events.len() as u64;
                            let yielded = fan_out(&view);
                            if let Some(obs) = stage_sink.as_mut() {
                                obs.sink.observe(
                                    obs.decode,
                                    SIM_DECODE_BASE_US + events * SIM_DECODE_PER_EVENT_US,
                                );
                                obs.sink.observe(
                                    obs.detect,
                                    SIM_DETECT_BASE_US
                                        + yielded.observations.len() as u64 * SIM_DETECT_PER_OBS_US,
                                );
                                obs.sink
                                    .add(obs.observations, yielded.observations.len() as u64);
                            }
                            let sym = interner
                                .lock()
                                .expect("interner lock poisoned")
                                .intern(view.domain);
                            partial.push(((sym, os_slot(view.os)), yielded));
                        }
                    }
                    (partial, stage_sink)
                })
            })
            .collect();
        for handle in handles {
            // Disjoint keys: each (domain, OS) lives in exactly one
            // shard, and each shard is claimed by exactly one worker.
            let (partial, stage_sink) = handle.join().expect("analysis worker panicked");
            entries.extend(partial);
            if let (Some(trace), Some(obs)) = (trace, stage_sink) {
                trace.merge_sink(&obs.sink);
            }
        }
    });
    let interner = interner.into_inner().expect("interner lock poisoned");
    // Symbol values depend on interleaving; resolved names do not.
    // Keys are unique, so this sort fully determines the order.
    entries.sort_unstable_by(|((a_sym, a_os), _), ((b_sym, b_os), _)| {
        interner
            .resolve(*a_sym)
            .cmp(interner.resolve(*b_sym))
            .then(a_os.cmp(b_os))
    });
    let entry_count = entries.len() as u64;
    let analysis = assemble(entries, &interner);
    if let Some(trace) = trace {
        trace.observe(
            &names::ANALYSIS_STAGE_SECONDS,
            Labels::new(&[("crawl", crawl.as_str()), ("stage", "assemble")]),
            entry_count * SIM_ASSEMBLE_PER_ENTRY_US,
        );
        let crawl_labels = Labels::new(&[("crawl", crawl.as_str())]);
        trace.set_gauge(names::STORE_RECORDS, crawl_labels, analysis.visits as f64);
        let localhost = analysis
            .sites
            .iter()
            .filter(|s| !s.localhost_os.is_empty())
            .count();
        let lan = analysis
            .sites
            .iter()
            .filter(|s| !s.lan_os.is_empty())
            .count();
        trace.set_gauge(
            names::LOCAL_SITES,
            Labels::new(&[("crawl", crawl.as_str()), ("locality", "localhost")]),
            localhost as f64,
        );
        trace.set_gauge(
            names::LOCAL_SITES,
            Labels::new(&[("crawl", crawl.as_str()), ("locality", "lan")]),
            lan as f64,
        );
    }
    analysis
}

/// Fold the `(domain, OS)`-ordered per-record yields into the final
/// aggregates. Entries arrive sorted by resolved key, so a site's OS
/// rows are adjacent and every aggregate below is a pure function of
/// the record *set*.
pub(crate) fn assemble(
    entries: Vec<((Symbol, u8), RecordYield)>,
    interner: &DomainInterner,
) -> CrawlAnalysis {
    let visits = entries.len();
    // Outcome tally and per-scenario defense verdicts (borrow pass).
    // `permitted` merges a domain's OS rows by run — no keying needed.
    let mut outcomes: BTreeMap<(u8, Os), OutcomeTally> = BTreeMap::new();
    let mut permitted: Vec<(Symbol, [bool; 3])> = Vec::new();
    for ((sym, _), yielded) in &entries {
        if let Some(code) = yielded.malicious_category {
            let tally = outcomes.entry((code, yielded.os)).or_default();
            tally.total += 1;
            if yielded.success {
                tally.ok += 1;
            }
        }
        if !yielded.observations.is_empty() {
            if permitted.last().map(|(s, _)| s != sym).unwrap_or(true) {
                permitted.push((*sym, [false; 3]));
            }
            let (_, flags) = permitted.last_mut().expect("just pushed");
            for (scenario, any) in flags.iter_mut().enumerate() {
                *any |= yielded.any_permitted[scenario];
            }
        }
    }
    // Site aggregation (consuming pass): identical logic and identical
    // input order to `aggregate_sites` over a sorted record slice; the
    // sorted entries make each site one contiguous run, so sites build
    // directly into their final vector.
    let mut sites: Vec<SiteLocalActivity> = Vec::new();
    let mut site_sym: Option<Symbol> = None;
    for ((sym, _), yielded) in entries {
        for obs in yielded.observations {
            if site_sym != Some(sym) {
                sites.push(SiteLocalActivity {
                    domain: obs.domain.clone(),
                    rank: obs.rank,
                    malicious_category: obs.malicious_category,
                    localhost_os: OsSet::NONE,
                    lan_os: OsSet::NONE,
                    observations: Vec::new(),
                });
                site_sym = Some(sym);
            }
            let entry = sites.last_mut().expect("just pushed a site");
            if obs.locality.is_loopback() {
                entry.localhost_os = entry.localhost_os.with(obs.os);
            } else if obs.locality.is_private() {
                entry.lan_os = entry.lan_os.with(obs.os);
            }
            entry.observations.push(obs);
        }
    }
    // Defense impact from the per-record verdicts plus the final site
    // classification — the same per-domain OR `defense::evaluate`
    // computes record by record.
    let class_of: BTreeMap<&str, ReasonClass> = sites
        .iter()
        .map(|s| (s.domain.as_str(), classify_site(s)))
        .collect();
    let mut defense = DefenseImpact::default();
    for (i, scenario) in AdoptionScenario::ALL.into_iter().enumerate() {
        for (sym, flags) in &permitted {
            let Some(class) = class_of.get(interner.resolve(*sym)) else {
                continue;
            };
            let slot = defense
                .by_class
                .entry((*class, scenario.label().to_string()))
                .or_insert((0, 0));
            if flags[i] {
                slot.0 += 1;
            } else {
                slot.1 += 1;
            }
        }
    }
    let rings = PortRings::from_observations(sites.iter().flat_map(|s| s.observations.iter()));
    CrawlAnalysis {
        visits,
        sites,
        rings,
        defense,
        outcomes,
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::defense::evaluate;
    use crate::detect::{aggregate_sites, detect_local};
    use kt_netlog::{EventParams, EventPhase, EventType, NetLogEvent, SourceRef, SourceType};
    use kt_store::{LoadOutcome, VisitRecord};

    fn url_request(id: u64, time: u64, url: &str) -> NetLogEvent {
        NetLogEvent {
            time,
            event_type: EventType::UrlRequestStartJob,
            source: SourceRef {
                id,
                kind: SourceType::UrlRequest,
            },
            phase: EventPhase::Begin,
            params: EventParams::UrlRequestStart {
                url: url.into(),
                method: "GET".into(),
                initiator: None,
                load_flags: 0,
            },
        }
    }

    fn ws_request(id: u64, time: u64, url: &str) -> NetLogEvent {
        NetLogEvent {
            time,
            event_type: EventType::WebSocketSendRequestHeaders,
            source: SourceRef {
                id,
                kind: SourceType::WebSocket,
            },
            phase: EventPhase::Begin,
            params: EventParams::WebSocket { url: url.into() },
        }
    }

    /// A store with a spread of behaviours: native-app WebSockets,
    /// dev-error fetches, LAN probes, quiet sites, failures, and a
    /// malicious crawl with category codes — enough that every
    /// aggregate in `CrawlAnalysis` is non-trivial.
    pub(crate) fn populated_store() -> (TelemetryStore, CrawlId) {
        let store = TelemetryStore::new();
        let crawl = CrawlId::top2020();
        for i in 0..40 {
            let domain = format!("site{i:02}.example");
            for os in Os::ALL {
                let page = format!("https://{domain}/");
                let mut events = vec![url_request(1, 100, &page)];
                match i % 5 {
                    0 => events.push(ws_request(2, 9_000, "ws://localhost:6463/?v=1")),
                    1 => events.push(url_request(
                        2,
                        3_000,
                        "http://localhost:35729/livereload.js",
                    )),
                    2 if os == Os::Windows => {
                        events.push(url_request(2, 4_000, "http://10.0.0.20/probe"));
                    }
                    _ => {}
                }
                store.append(&VisitRecord {
                    crawl: crawl.clone(),
                    domain: domain.clone(),
                    rank: Some(i + 1),
                    malicious_category: Some((i % 3) as u8),
                    os,
                    outcome: if i % 7 == 6 {
                        LoadOutcome::Error(kt_netlog::NetError::ConnectionReset)
                    } else {
                        LoadOutcome::Success
                    },
                    loaded_at_ms: 400,
                    events,
                });
            }
        }
        // A second crawl that must not leak into the analysis.
        store.append(&VisitRecord {
            crawl: CrawlId::top2021(),
            domain: "site00.example".into(),
            rank: Some(1),
            malicious_category: None,
            os: Os::Linux,
            outcome: LoadOutcome::Success,
            loaded_at_ms: 400,
            events: vec![
                url_request(1, 100, "https://site00.example/"),
                ws_request(2, 9_000, "ws://localhost:6463/?v=1"),
            ],
        });
        (store, crawl)
    }

    #[test]
    fn par_analysis_matches_sequential_exactly() {
        let (store, crawl) = populated_store();
        let records = store.crawl_records(&crawl);
        let seq_sites = aggregate_sites(&records);
        let seq_obs: Vec<_> = records.iter().flat_map(detect_local).collect();
        let seq_rings = PortRings::from_observations(&seq_obs);
        let seq_defense = evaluate(&records);
        for workers in [1, 2, 8] {
            let analysis = analyze_crawl_par(&store, &crawl, workers);
            assert_eq!(analysis.visits, records.len(), "workers={workers}");
            assert_eq!(analysis.sites, seq_sites, "workers={workers}");
            assert_eq!(analysis.rings, seq_rings, "workers={workers}");
            assert_eq!(analysis.defense, seq_defense, "workers={workers}");
        }
    }

    #[test]
    fn outcome_tally_matches_record_filtering() {
        let (store, crawl) = populated_store();
        let records = store.crawl_records(&crawl);
        let analysis = analyze_crawl_par(&store, &crawl, 4);
        for code in 0..3u8 {
            for os in Os::ALL {
                let of_cat: Vec<_> = records
                    .iter()
                    .filter(|r| r.malicious_category == Some(code) && r.os == os)
                    .collect();
                let ok = of_cat.iter().filter(|r| r.outcome.is_success()).count();
                let tally = analysis
                    .outcomes
                    .get(&(code, os))
                    .copied()
                    .unwrap_or_default();
                assert_eq!(
                    (tally.total, tally.ok),
                    (of_cat.len(), ok),
                    "code={code} os={os:?}"
                );
            }
        }
    }

    #[test]
    fn worker_counts_agree_with_each_other() {
        let (store, crawl) = populated_store();
        let one = analyze_crawl_par(&store, &crawl, 1);
        for workers in [3, 16, 64] {
            assert_eq!(analyze_crawl_par(&store, &crawl, workers), one);
        }
    }

    #[test]
    fn unknown_crawl_yields_empty_analysis() {
        let (store, _) = populated_store();
        let analysis = analyze_crawl_par(&store, &CrawlId("nope".into()), 4);
        assert_eq!(analysis, CrawlAnalysis::default());
    }
}
