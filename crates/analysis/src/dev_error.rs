//! Appendix B — sub-classification of developer errors.
//!
//! The paper breaks its developer-error class into recognisable
//! shapes: local file-server fetches, the `xook.js` pen-test remnant,
//! `LiveReload.js`, loopback redirects, SockJS-node, "other local
//! services", and (in the malicious tables) the
//! `NonExistentImage*.gif` pattern. This module recovers the same
//! sub-classes from telemetry, enabling the Appendix-B breakdown of
//! Table 11.

use serde::{Deserialize, Serialize};

use crate::detect::SiteLocalActivity;

/// The Appendix-B developer-error shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DevErrorKind {
    /// Fetching files (images, CSS, JS) from a local file server,
    /// typically a `wp-content` path.
    LocalFileServer,
    /// The OWASP Xenotix `xook.js` fetch.
    PenTest,
    /// `livereload.js`.
    LiveReload,
    /// A top-level redirect to `http://127.0.0.1/`.
    Redirect,
    /// `/sockjs-node/info` fetches.
    SockJsNode,
    /// The `NonExistentImageNNNN.gif` pattern.
    NonExistentImage,
    /// A LAN-hosted resource fetch.
    LanResource,
    /// Some other local service endpoint left enabled.
    OtherLocalService,
}

impl DevErrorKind {
    /// All kinds, in the Appendix-B presentation order.
    pub const ALL: [DevErrorKind; 8] = [
        DevErrorKind::LocalFileServer,
        DevErrorKind::PenTest,
        DevErrorKind::LiveReload,
        DevErrorKind::Redirect,
        DevErrorKind::SockJsNode,
        DevErrorKind::NonExistentImage,
        DevErrorKind::LanResource,
        DevErrorKind::OtherLocalService,
    ];

    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            DevErrorKind::LocalFileServer => "Local file server",
            DevErrorKind::PenTest => "Pen test (xook.js)",
            DevErrorKind::LiveReload => "LiveReload.js",
            DevErrorKind::Redirect => "Redirect to 127.0.0.1",
            DevErrorKind::SockJsNode => "SockJS-node",
            DevErrorKind::NonExistentImage => "NonExistentImage*.gif",
            DevErrorKind::LanResource => "LAN resource fetch",
            DevErrorKind::OtherLocalService => "Other local service",
        }
    }
}

/// File-ish suffixes marking a static-resource fetch.
const FILE_SUFFIXES: &[&str] = &[
    ".jpg", ".jpeg", ".png", ".gif", ".ico", ".mp4", ".ogg", ".css", ".html", ".txt",
];

/// Sub-classify a site already known (or suspected) to be a developer
/// error. The most specific signature wins; sites whose only local
/// traffic is LAN-destined classify as [`DevErrorKind::LanResource`].
pub fn classify_dev_error(site: &SiteLocalActivity) -> DevErrorKind {
    let paths = site.path_refs();
    let has = |needle: &str| paths.iter().any(|p| p.contains(needle));
    if has("xook.js") {
        return DevErrorKind::PenTest;
    }
    if has("livereload.js") {
        return DevErrorKind::LiveReload;
    }
    if has("/sockjs-node/") {
        return DevErrorKind::SockJsNode;
    }
    if has("NonExistentImage") {
        return DevErrorKind::NonExistentImage;
    }
    if site
        .observations
        .iter()
        .any(|o| o.via_redirect && o.locality.is_loopback())
    {
        return DevErrorKind::Redirect;
    }
    // LAN-only sites.
    if !site.has_localhost() && site.has_lan() {
        return DevErrorKind::LanResource;
    }
    // File fetches from a localhost server.
    let file_fetch = site.observations.iter().any(|o| {
        let path_only = o.path.split('?').next().unwrap_or(&o.path);
        o.locality.is_loopback()
            && (o.path.contains("/wp-content/")
                || FILE_SUFFIXES.iter().any(|s| path_only.ends_with(s)))
    });
    if file_fetch {
        return DevErrorKind::LocalFileServer;
    }
    DevErrorKind::OtherLocalService
}

/// Breakdown counts for a set of sites, counting only those whose
/// top-level class is `DeveloperError`.
pub fn breakdown(sites: &[SiteLocalActivity]) -> Vec<(DevErrorKind, usize)> {
    use crate::classify::{classify_site, ReasonClass};
    let mut counts = std::collections::BTreeMap::new();
    for site in sites {
        if !site.has_localhost() && !site.has_lan() {
            continue;
        }
        if classify_site(site) != ReasonClass::DeveloperError {
            continue;
        }
        *counts.entry(classify_dev_error(site)).or_insert(0usize) += 1;
    }
    DevErrorKind::ALL
        .iter()
        .filter_map(|k| counts.get(k).map(|n| (*k, *n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::LocalObservation;
    use kt_netbase::{Os, OsSet, Scheme, Url};

    fn obs(host: &str, port: u16, path: &str) -> LocalObservation {
        let url = Url::parse(&format!("http://{host}:{port}{path}")).unwrap();
        LocalObservation {
            domain: "d.example".into(),
            rank: None,
            malicious_category: None,
            os: Os::Linux,
            scheme: Scheme::Http,
            port,
            path: url.path_and_query(),
            locality: url.locality(),
            websocket: false,
            via_redirect: false,
            time_ms: 1_000,
            delay_ms: 800,
            url,
        }
    }

    fn site(observations: Vec<LocalObservation>) -> SiteLocalActivity {
        let mut localhost_os = OsSet::NONE;
        let mut lan_os = OsSet::NONE;
        for o in &observations {
            if o.locality.is_loopback() {
                localhost_os = localhost_os.with(o.os);
            } else {
                lan_os = lan_os.with(o.os);
            }
        }
        SiteLocalActivity {
            domain: "d.example".into(),
            rank: None,
            malicious_category: None,
            localhost_os,
            lan_os,
            observations,
        }
    }

    #[test]
    fn each_signature_maps_to_its_kind() {
        assert_eq!(
            classify_dev_error(&site(vec![obs("localhost", 5005, "/xook.js")])),
            DevErrorKind::PenTest
        );
        assert_eq!(
            classify_dev_error(&site(vec![obs("localhost", 35729, "/livereload.js")])),
            DevErrorKind::LiveReload
        );
        assert_eq!(
            classify_dev_error(&site(vec![obs("localhost", 9000, "/sockjs-node/info?t=1")])),
            DevErrorKind::SockJsNode
        );
        assert_eq!(
            classify_dev_error(&site(vec![obs(
                "localhost",
                5140,
                "/NonExistentImage5.gif"
            )])),
            DevErrorKind::NonExistentImage
        );
        assert_eq!(
            classify_dev_error(&site(vec![obs(
                "localhost",
                8888,
                "/wp-content/uploads/2018/06/a.jpg"
            )])),
            DevErrorKind::LocalFileServer
        );
        assert_eq!(
            classify_dev_error(&site(vec![obs(
                "10.0.0.200",
                80,
                "/wordpress/wp-content/x.mp4"
            )])),
            DevErrorKind::LanResource
        );
        assert_eq!(
            classify_dev_error(&site(vec![obs("localhost", 1931, "/record/state")])),
            DevErrorKind::OtherLocalService
        );
    }

    #[test]
    fn redirect_detection() {
        let mut o = obs("127.0.0.1", 80, "/");
        o.via_redirect = true;
        assert_eq!(classify_dev_error(&site(vec![o])), DevErrorKind::Redirect);
    }

    #[test]
    fn most_specific_signature_wins() {
        // A site with both a wp-content fetch and a livereload fetch:
        // LiveReload is the more specific marker.
        let s = site(vec![
            obs("localhost", 8888, "/wp-content/uploads/a.jpg"),
            obs("localhost", 35729, "/livereload.js"),
        ]);
        assert_eq!(classify_dev_error(&s), DevErrorKind::LiveReload);
    }

    #[test]
    fn breakdown_counts_only_dev_errors() {
        let sites = vec![
            site(vec![obs("localhost", 8888, "/wp-content/uploads/a.jpg")]),
            site(vec![obs("localhost", 35729, "/livereload.js")]),
            site(vec![obs("localhost", 35729, "/livereload.js")]),
        ];
        let b = breakdown(&sites);
        assert_eq!(
            b,
            vec![
                (DevErrorKind::LocalFileServer, 1),
                (DevErrorKind::LiveReload, 2)
            ]
        );
    }
}
