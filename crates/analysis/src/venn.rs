//! Figure 2 — per-OS overlap of locally-active sites.

use kt_netbase::OsSet;
use serde::{Deserialize, Serialize};

/// The seven regions of a three-set Venn diagram over {W, L, M}.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OsVenn {
    /// Windows only.
    pub w_only: usize,
    /// Linux only.
    pub l_only: usize,
    /// Mac only.
    pub m_only: usize,
    /// Windows ∩ Linux, not Mac.
    pub wl: usize,
    /// Windows ∩ Mac, not Linux.
    pub wm: usize,
    /// Linux ∩ Mac, not Windows.
    pub lm: usize,
    /// All three.
    pub wlm: usize,
}

impl OsVenn {
    /// Tally a collection of per-site OS sets.
    pub fn from_sets<I: IntoIterator<Item = OsSet>>(sets: I) -> OsVenn {
        let mut v = OsVenn::default();
        for s in sets {
            match (s.windows, s.linux, s.macos) {
                (true, false, false) => v.w_only += 1,
                (false, true, false) => v.l_only += 1,
                (false, false, true) => v.m_only += 1,
                (true, true, false) => v.wl += 1,
                (true, false, true) => v.wm += 1,
                (false, true, true) => v.lm += 1,
                (true, true, true) => v.wlm += 1,
                (false, false, false) => {}
            }
        }
        v
    }

    /// Total sites on Windows.
    pub fn windows_total(&self) -> usize {
        self.w_only + self.wl + self.wm + self.wlm
    }

    /// Total sites on Linux.
    pub fn linux_total(&self) -> usize {
        self.l_only + self.wl + self.lm + self.wlm
    }

    /// Total sites on Mac.
    pub fn mac_total(&self) -> usize {
        self.m_only + self.wm + self.lm + self.wlm
    }

    /// Total sites anywhere.
    pub fn total(&self) -> usize {
        self.w_only + self.l_only + self.m_only + self.wl + self.wm + self.lm + self.wlm
    }

    /// Render the region counts as a small text block.
    pub fn render(&self) -> String {
        format!(
            "W-only {:>4}   L-only {:>4}   M-only {:>4}\n\
             W∩L    {:>4}   W∩M    {:>4}   L∩M    {:>4}\n\
             W∩L∩M  {:>4}   (totals: W={} L={} M={}, all={})",
            self.w_only,
            self.l_only,
            self.m_only,
            self.wl,
            self.wm,
            self.lm,
            self.wlm,
            self.windows_total(),
            self.linux_total(),
            self.mac_total(),
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_partition() {
        let sets = vec![
            OsSet::WINDOWS_ONLY,
            OsSet::WINDOWS_ONLY,
            OsSet::ALL,
            OsSet::LINUX_MAC,
            OsSet::MAC_ONLY,
            OsSet::NONE, // ignored
        ];
        let v = OsVenn::from_sets(sets);
        assert_eq!(v.w_only, 2);
        assert_eq!(v.wlm, 1);
        assert_eq!(v.lm, 1);
        assert_eq!(v.m_only, 1);
        assert_eq!(v.total(), 5);
        assert_eq!(v.windows_total(), 3);
        assert_eq!(v.linux_total(), 2);
        assert_eq!(v.mac_total(), 3);
    }

    #[test]
    fn totals_are_consistent_with_regions() {
        let sets: Vec<OsSet> = (0..128)
            .map(|i| OsSet {
                windows: i & 1 != 0,
                linux: i & 2 != 0,
                macos: i & 4 != 0,
            })
            .collect();
        let v = OsVenn::from_sets(sets.clone());
        let windows = sets.iter().filter(|s| s.windows).count();
        assert_eq!(v.windows_total(), windows);
        let nonempty = sets.iter().filter(|s| !s.is_empty()).count();
        assert_eq!(v.total(), nonempty);
    }

    #[test]
    fn render_contains_counts() {
        let v = OsVenn::from_sets(vec![OsSet::ALL; 41]);
        let text = v.render();
        assert!(text.contains("41"));
        assert!(text.contains("W∩L∩M"));
    }
}
