//! # kt-analysis
//!
//! The measurement instrument: everything the paper computes *from*
//! telemetry lives here, and none of it knows how the telemetry was
//! produced — it would run unchanged over parsed captures from a real
//! Chrome crawl.
//!
//! * [`bias`] — the measurement-bias sweep: crawl the sensor-planted
//!   population once per crawler profile and compare observed against
//!   planted-true local-activity rates (the bias the paper could not
//!   measure, §3.4's limitation);
//! * [`detect`] — find locally-destined requests in visit records
//!   (RQ1): flow reconstruction, browser-traffic filtering, loopback /
//!   RFC 1918 classification, redirect-target accounting;
//! * [`classify`] — recover *why* a site talks to local destinations
//!   (RQ3): ThreatMetrix / BIG-IP signatures, native-app fingerprints,
//!   developer-error heuristics, unknown cases;
//! * [`cdf`] — empirical CDFs for ranks (Figures 3, 9) and request
//!   timing (Figures 5–7);
//! * [`venn`] — per-OS overlap regions (Figure 2);
//! * [`rings`] — OS → scheme → port aggregation (Figures 4, 8);
//! * [`report`] — renderers that regenerate every table of the paper;
//! * [`dev_error`] — the Appendix-B sub-classification of developer
//!   errors;
//! * [`diff`] — the streaming longitudinal diff over N
//!   content-addressed snapshots: behaviour-class churn, adoption
//!   curves, and local-traffic population flows, shard-parallel and
//!   worker-count invariant;
//! * [`defense`] — replay telemetry under the WICG Private Network
//!   Access proposal (§5.3) across adoption scenarios;
//! * [`entropy`] — the §5.2 fingerprinting-entropy measurement over
//!   simulated visitor machines;
//! * [`intern`] — the per-crawl domain interner backing the clone-free
//!   aggregation keys;
//! * [`online`] — mergeable incremental partials for the resident
//!   campaign service: absorb visit records as they stream in, merge
//!   in any order, assemble mid-flight — byte-identical to the batch
//!   driver;
//! * [`par`] — the parallel analysis driver: stream the store shard
//!   by shard across threads, decode each record once, fan it out to
//!   every classifier, and merge deterministically.

#![warn(missing_docs)]

pub mod bias;
pub mod cdf;
pub mod classify;
pub mod crossval;
pub mod defense;
pub mod detect;
pub mod dev_error;
pub mod diff;
pub mod entropy;
pub mod intern;
pub mod longitudinal;
pub mod online;
pub mod par;
pub mod report;
pub mod rings;
pub mod venn;

pub use bias::{
    record_bias_metrics, run_bias_sweep, ArchetypeCell, BiasConfig, BiasReport, ProfileBias,
};
pub use cdf::Ecdf;
pub use classify::{classify_site, ReasonClass};
pub use crossval::{
    crossval_population, record_agreement_metrics, run_cross_validation, AgreementCell,
    AgreementMatrix, CrossCase, CrossValidation, PASSIVE_WINDOW_MS,
};
pub use defense::{AdoptionScenario, DefenseImpact};
pub use detect::{
    detect_local, detect_local_view, detect_local_with_page_owned, LocalObservation,
    SiteLocalActivity,
};
pub use dev_error::{classify_dev_error, DevErrorKind};
pub use diff::{diff_snapshots, diff_snapshots_traced, AdoptionRow, FlowRow, SnapshotDiff};
pub use entropy::{scan_entropy, EntropyReport, PortFingerprint};
pub use intern::{DomainInterner, Symbol};
pub use longitudinal::{transitions, Transition, TransitionMatrix};
pub use online::{OnlinePartial, UpdatePass};
pub use par::{analyze_crawl_par, analyze_crawl_traced, CrawlAnalysis, OutcomeTally};
pub use rings::PortRings;
pub use venn::OsVenn;
