//! Online incremental aggregation: mergeable per-campaign partials.
//!
//! The batch driver ([`crate::par`]) sees a finished crawl's whole
//! record set at once. A resident campaign service sees visit results
//! one at a time, out of order, possibly twice (a resumed campaign
//! replays its journal prefix), and wants per-campaign tables *before*
//! the campaign finishes. [`OnlinePartial`] is the bridge: each
//! absorbed record is decoded once and fanned out to the same
//! [`RecordYield`] the batch path computes, keyed by the owned
//! `(domain, OS slot)` pair in a `BTreeMap` — so iteration order *is*
//! the batch sort order, and [`OnlinePartial::assemble`] can reuse the
//! batch [`assemble`] fold verbatim.
//!
//! Determinism contract (proptested below): for any partition of a
//! crawl's records into partials, any merge order, and any duplicated
//! replay prefix, `assemble()` equals [`analyze_crawl_par`] over the
//! same store. Three properties make that hold:
//!
//! - **Purity**: a visit's record is a pure function of `(seed, domain,
//!   attempt)`, so absorbing the same `(domain, OS, pass)` twice
//!   overwrites an entry with an identical yield;
//! - **Pass precedence**: a recrawl-pass record supersedes the pool
//!   record for the same key, mirroring how the batch store's
//!   append-then-recrawl sequence leaves the recrawl outcome as the
//!   surviving row;
//! - **Key-ordered fold**: `BTreeMap` iteration yields entries sorted
//!   by resolved `(domain, os_slot)`, exactly the order the batch
//!   driver sorts into before assembling.
//!
//! [`analyze_crawl_par`]: crate::par::analyze_crawl_par

use std::collections::BTreeMap;

use kt_store::{codec, decode_view, VisitRecord};

use crate::intern::DomainInterner;
use crate::par::{assemble, fan_out, os_slot, CrawlAnalysis, RecordYield};

/// Which crawl pass produced a record. Recrawl outcomes supersede pool
/// outcomes for the same `(domain, OS)` key, matching the batch store
/// where the recrawl append is the row the analyzer reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum UpdatePass {
    /// The main worker-pool pass (including in-place retries).
    Pool,
    /// The end-of-campaign recrawl pass.
    Recrawl,
}

impl UpdatePass {
    fn rank(self) -> u8 {
        match self {
            UpdatePass::Pool => 0,
            UpdatePass::Recrawl => 1,
        }
    }
}

/// A mergeable, incrementally-built partial aggregate of one crawl.
///
/// Absorb records as they arrive, merge partials in any order, and
/// [`assemble`](OnlinePartial::assemble) at any point for a full
/// [`CrawlAnalysis`] over everything seen so far.
#[derive(Debug, Default, Clone)]
pub struct OnlinePartial {
    /// `(domain, OS slot)` → `(pass rank, yield)`. Owned domain keys:
    /// a partial outlives any store segment, and the map must iterate
    /// in resolved-name order.
    entries: BTreeMap<(String, u8), (u8, RecordYield)>,
}

impl OnlinePartial {
    /// An empty partial.
    pub fn new() -> OnlinePartial {
        OnlinePartial::default()
    }

    /// Fold one visit record in. The record is round-tripped through
    /// the store codec so the yield is computed from exactly the bytes
    /// the batch analyzer would decode.
    pub fn absorb(&mut self, record: &VisitRecord, pass: UpdatePass) {
        let raw = codec::encode(record);
        let view = decode_view(&raw).expect("store codec round-trip");
        let yielded = fan_out(&view);
        let key = (view.domain.to_owned(), os_slot(view.os));
        let rank = pass.rank();
        match self.entries.get(&key) {
            // A lower-precedence (or equal, hence identical-by-purity)
            // arrival never displaces what's there.
            Some((existing, _)) if *existing > rank => {}
            _ => {
                self.entries.insert(key, (rank, yielded));
            }
        }
    }

    /// Build a partial from a finished record set (e.g. a store read
    /// back after a drain). Bulk reads return post-recrawl rows, so
    /// every record carries recrawl precedence.
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a VisitRecord>) -> OnlinePartial {
        let mut partial = OnlinePartial::new();
        for record in records {
            partial.absorb(record, UpdatePass::Recrawl);
        }
        partial
    }

    /// Merge another partial in. Commutative and associative up to the
    /// pass-precedence rule, so any merge interleaving converges.
    pub fn merge(&mut self, other: OnlinePartial) {
        for (key, (rank, yielded)) in other.entries {
            match self.entries.get(&key) {
                Some((existing, _)) if *existing > rank => {}
                _ => {
                    self.entries.insert(key, (rank, yielded));
                }
            }
        }
    }

    /// Records currently folded in (one per `(domain, OS)` key).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Assemble the full analysis over everything seen so far —
    /// byte-identical to [`analyze_crawl_par`] over a store holding
    /// the same surviving records.
    ///
    /// [`analyze_crawl_par`]: crate::par::analyze_crawl_par
    pub fn assemble(&self) -> CrawlAnalysis {
        // Interning the BTreeMap keys in iteration order assigns
        // symbols in resolved-name order, so the entry vector is
        // already in the batch driver's post-sort order.
        let mut interner = DomainInterner::new();
        let entries = self
            .entries
            .iter()
            .map(|((domain, slot), (_, yielded))| {
                ((interner.intern(domain), *slot), yielded.clone())
            })
            .collect();
        assemble(entries, &interner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::analyze_crawl_par;
    use crate::par::tests::populated_store;
    use proptest::prelude::*;

    fn batch() -> CrawlAnalysis {
        let (store, crawl) = populated_store();
        analyze_crawl_par(&store, &crawl, 4)
    }

    fn crawl_records() -> Vec<VisitRecord> {
        let (store, crawl) = populated_store();
        store.crawl_records(&crawl)
    }

    #[test]
    fn single_partial_matches_batch() {
        let records = crawl_records();
        let partial = OnlinePartial::from_records(&records);
        assert_eq!(partial.len(), records.len());
        assert_eq!(partial.assemble(), batch());
    }

    #[test]
    fn recrawl_pass_supersedes_pool_and_not_vice_versa() {
        let records = crawl_records();
        let mut partial = OnlinePartial::new();
        // Pool first, then recrawl: recrawl row wins.
        partial.absorb(&records[0], UpdatePass::Pool);
        partial.absorb(&records[0], UpdatePass::Recrawl);
        assert_eq!(partial.len(), 1);
        // Recrawl first, then a stale pool replay: recrawl row stays.
        let mut reversed = OnlinePartial::new();
        reversed.absorb(&records[0], UpdatePass::Recrawl);
        reversed.absorb(&records[0], UpdatePass::Pool);
        assert_eq!(partial.assemble(), reversed.assemble());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Any partition into partials, merged in any order, with any
        /// duplicated replay prefix (a killed-then-resumed campaign
        /// re-absorbs the records its journal already held), assembles
        /// byte-for-byte equal to the batch analyzer.
        #[test]
        fn merged_partials_equal_batch_under_any_interleaving(
            assignment in proptest::collection::vec(0usize..5, 120..121),
            merge_seed in any::<u64>(),
            replay_prefix in 0usize..60,
        ) {
            let records = crawl_records();
            let mut partials = vec![OnlinePartial::new(); 5];
            for (i, record) in records.iter().enumerate() {
                partials[assignment[i % assignment.len()] % 5]
                    .absorb(record, UpdatePass::Recrawl);
            }
            // Kill/resume: some prefix of the stream is absorbed a
            // second time into a fresh partial, pool-pass (the journal
            // replays pool frames; purity makes the yields identical).
            let mut replayed = OnlinePartial::new();
            for record in records.iter().take(replay_prefix.min(records.len())) {
                replayed.absorb(record, UpdatePass::Pool);
            }
            partials.push(replayed);
            // Merge in a seed-scrambled order.
            let mut order: Vec<usize> = (0..partials.len()).collect();
            order.sort_by_key(|i| (merge_seed.wrapping_mul(31).wrapping_add(*i as u64 * 0x9E37_79B9)).rotate_left(*i as u32 % 61));
            let mut merged = OnlinePartial::new();
            for i in order {
                merged.merge(partials[i].clone());
            }
            prop_assert_eq!(merged.assemble(), batch());
        }
    }
}
