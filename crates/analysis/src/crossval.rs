//! Cross-validation: passive detection vs. active scanning.
//!
//! The paper's pipeline is passive — it records what a page *sends*
//! toward the local network during a 20-second capture window. The
//! active scanner (kt-scanner) measures the other direction: what is
//! actually listening. Running both over the same seeded population
//! answers two questions the passive side cannot answer alone:
//!
//! 1. **Agreement** — per behaviour class, how often do the two
//!    instruments reach the same verdict about a planted behaviour?
//! 2. **False negatives of the window** — which behaviours fire *after*
//!    the 20-second capture closes, so the passive side can never see
//!    them, while an active ground-truth pass still can?
//!
//! Semantics: for each planted behaviour on the scanned machine's OS,
//! the *passive* verdict classifies the planned requests whose delay
//! falls inside the capture window; the *active* verdict classifies
//! the full (unwindowed) plan, but only counts loopback requests whose
//! port the scan confirmed with a definitive knock (open or closed) —
//! a fault-starved scan that left ports filtered or unprobed weakens
//! the active side, which is exactly the degradation the fault-sweep
//! experiment measures.

use std::collections::BTreeSet;

use kt_netbase::{DomainName, Os, OsSet};
use kt_scanner::{run_scan, Protocol, ScanConfig, ScanReport};
use kt_simnet::rng;
use kt_simnet::{HostEnv, SimNet};
use kt_trace::metrics::{Labels, Registry};
use kt_trace::names;
use kt_webgen::behavior::{Behavior, Channel, DevError, NativeApp, PlannedRequest, UnknownKind};
use kt_webgen::site::PlantedBehavior;

use crate::classify::{classify_site, ReasonClass};
use crate::detect::{LocalObservation, SiteLocalActivity};

/// The paper's capture window: each visit records for 20 seconds.
pub const PASSIVE_WINDOW_MS: u64 = 20_000;

/// The four cells of the agreement matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgreementCell {
    /// Passive and active both detected the behaviour.
    Both,
    /// Only the windowed passive capture detected it.
    PassiveOnly,
    /// Only the active ground-truth pass detected it — a passive
    /// false negative.
    ActiveOnly,
    /// Neither side detected it.
    Neither,
}

impl AgreementCell {
    /// All cells, in render order.
    pub const ALL: [AgreementCell; 4] = [
        AgreementCell::Both,
        AgreementCell::PassiveOnly,
        AgreementCell::ActiveOnly,
        AgreementCell::Neither,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            AgreementCell::Both => "both",
            AgreementCell::PassiveOnly => "passive-only",
            AgreementCell::ActiveOnly => "active-only",
            AgreementCell::Neither => "neither",
        }
    }

    fn index(self) -> usize {
        match self {
            AgreementCell::Both => 0,
            AgreementCell::PassiveOnly => 1,
            AgreementCell::ActiveOnly => 2,
            AgreementCell::Neither => 3,
        }
    }

    fn of(passive: bool, active: bool) -> AgreementCell {
        match (passive, active) {
            (true, true) => AgreementCell::Both,
            (true, false) => AgreementCell::PassiveOnly,
            (false, true) => AgreementCell::ActiveOnly,
            (false, false) => AgreementCell::Neither,
        }
    }
}

/// Counts per (behaviour class, agreement cell).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AgreementMatrix {
    counts: [[u64; 4]; 5],
}

impl AgreementMatrix {
    fn class_index(class: ReasonClass) -> usize {
        ReasonClass::ALL
            .iter()
            .position(|c| *c == class)
            .expect("class in ALL")
    }

    /// Record one case.
    pub fn add(&mut self, class: ReasonClass, cell: AgreementCell) {
        self.counts[Self::class_index(class)][cell.index()] += 1;
    }

    /// Count in one cell.
    pub fn get(&self, class: ReasonClass, cell: AgreementCell) -> u64 {
        self.counts[Self::class_index(class)][cell.index()]
    }

    /// Total cases across all cells.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Cases where the two instruments agree (both or neither), over
    /// the total: the headline agreement rate.
    pub fn agreement_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        let agree: u64 = ReasonClass::ALL
            .iter()
            .map(|c| self.get(*c, AgreementCell::Both) + self.get(*c, AgreementCell::Neither))
            .sum();
        agree as f64 / total as f64
    }
}

/// One planted behaviour evaluated by both instruments.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossCase {
    /// The site carrying the behaviour.
    pub domain: String,
    /// Ground-truth class of the planted behaviour.
    pub class: ReasonClass,
    /// Did the windowed passive capture classify it correctly?
    pub passive_hit: bool,
    /// Did the scan-confirmed active pass classify it correctly?
    pub active_hit: bool,
    /// Earliest local-request delay in the full plan, ms after load.
    pub earliest_delay_ms: Option<u64>,
}

impl CrossCase {
    /// The cell this case lands in.
    pub fn cell(&self) -> AgreementCell {
        AgreementCell::of(self.passive_hit, self.active_hit)
    }

    /// True when this is a false negative *caused by the capture
    /// window*: the active side saw it, the passive side could not
    /// because the behaviour first fires at or after window close.
    pub fn is_window_false_negative(&self) -> bool {
        self.cell() == AgreementCell::ActiveOnly
            && self
                .earliest_delay_ms
                .is_some_and(|d| d >= PASSIVE_WINDOW_MS)
    }
}

/// The full cross-validation result.
#[derive(Debug, Clone)]
pub struct CrossValidation {
    /// OS of the scanned machine (behaviours are expanded for it).
    pub os: Os,
    /// The capture window applied to the passive side, ms.
    pub window_ms: u64,
    /// Every evaluated case, in population order.
    pub cases: Vec<CrossCase>,
    /// The per-class agreement matrix.
    pub matrix: AgreementMatrix,
    /// The active scan both sides share.
    pub scan: ScanReport,
}

impl CrossValidation {
    /// Cases the capture window structurally hides from the passive
    /// side (see [`CrossCase::is_window_false_negative`]).
    pub fn window_false_negatives(&self) -> Vec<&CrossCase> {
        self.cases
            .iter()
            .filter(|c| c.is_window_false_negative())
            .collect()
    }

    /// Deterministic text rendering — the artifact CI diffs across
    /// probe-worker counts.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cross-validation: os={} window={} ms cases={} agreement={:.3}",
            self.os.name(),
            self.window_ms,
            self.cases.len(),
            self.matrix.agreement_rate(),
        );
        let _ = writeln!(
            out,
            "  {:<20} {:>6} {:>13} {:>12} {:>8}",
            "class", "both", "passive-only", "active-only", "neither"
        );
        for class in ReasonClass::ALL {
            let row: Vec<u64> = AgreementCell::ALL
                .iter()
                .map(|cell| self.matrix.get(class, *cell))
                .collect();
            if row.iter().sum::<u64>() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<20} {:>6} {:>13} {:>12} {:>8}",
                class.label(),
                row[0],
                row[1],
                row[2],
                row[3],
            );
        }
        let fns = self.window_false_negatives();
        let _ = writeln!(out, "  window false negatives: {}", fns.len());
        for case in fns {
            let _ = writeln!(
                out,
                "    {} ({}) first fires at {} ms >= {} ms window",
                case.domain,
                case.class.label(),
                case.earliest_delay_ms.unwrap_or(0),
                self.window_ms,
            );
        }
        out
    }
}

/// Export the agreement cells under the `scan_agreement_*` schema,
/// labelled by reason class.
pub fn record_agreement_metrics(cv: &CrossValidation, reg: &mut Registry) {
    for class in ReasonClass::ALL {
        let labels = Labels::new(&[("reason", class.label())]);
        for (cell, name) in [
            (AgreementCell::Both, names::SCAN_AGREEMENT_BOTH_TOTAL),
            (
                AgreementCell::PassiveOnly,
                names::SCAN_AGREEMENT_PASSIVE_ONLY_TOTAL,
            ),
            (
                AgreementCell::ActiveOnly,
                names::SCAN_AGREEMENT_ACTIVE_ONLY_TOTAL,
            ),
            (AgreementCell::Neither, names::SCAN_AGREEMENT_NEITHER_TOTAL),
        ] {
            let count = cv.matrix.get(class, cell);
            if count > 0 {
                reg.inc_counter(name, labels.clone(), count);
            }
        }
    }
}

/// Ground-truth class of a planted behaviour.
pub fn reason_class_of(behavior: &Behavior) -> ReasonClass {
    match behavior {
        Behavior::ThreatMetrix { .. } => ReasonClass::FraudDetection,
        Behavior::BigIpBotDefense => ReasonClass::BotDetection,
        Behavior::NativeApp(_) => ReasonClass::NativeApplication,
        Behavior::DevError(_) => ReasonClass::DeveloperError,
        Behavior::Unknown(_) => ReasonClass::Unknown,
    }
}

/// Turn one planned request into the observation the passive pipeline
/// would record for it, if it is locally destined.
fn observation_of(domain: &str, os: Os, pr: &PlannedRequest) -> Option<LocalObservation> {
    let locality = pr.url.locality();
    if !locality.is_local() {
        return None;
    }
    Some(LocalObservation {
        domain: domain.to_string(),
        rank: None,
        malicious_category: None,
        os,
        scheme: pr.url.scheme(),
        port: pr.url.port(),
        path: pr.url.path_and_query(),
        locality,
        websocket: pr.url.scheme().is_websocket() || pr.channel == Channel::WebSocket,
        via_redirect: pr.channel == Channel::Redirect,
        time_ms: pr.delay_ms,
        delay_ms: pr.delay_ms,
        url: pr.url.clone(),
    })
}

/// Assemble a site activity from synthetic observations.
fn activity_of(domain: &str, observations: Vec<LocalObservation>) -> SiteLocalActivity {
    let mut localhost_os = OsSet::NONE;
    let mut lan_os = OsSet::NONE;
    for obs in &observations {
        if obs.locality.is_loopback() {
            localhost_os = localhost_os.with(obs.os);
        } else if obs.locality.is_private() {
            lan_os = lan_os.with(obs.os);
        }
    }
    SiteLocalActivity {
        domain: domain.to_string(),
        rank: None,
        malicious_category: None,
        localhost_os,
        lan_os,
        observations,
    }
}

/// Classify a set of observations and compare with the ground truth.
fn verdict(domain: &str, observations: Vec<LocalObservation>, truth: ReasonClass) -> bool {
    if observations.is_empty() {
        return false;
    }
    classify_site(&activity_of(domain, observations)) == truth
}

/// Run passive detection and an active scan over the same population
/// and cross-validate. The scan's loopback port set is widened to
/// cover every port the population's plans touch, so the active side
/// starts from full coverage and any loss is attributable to faults,
/// breakers, or the deadline budget.
pub fn run_cross_validation(
    env: &HostEnv,
    net: &SimNet,
    population: &[(DomainName, PlantedBehavior)],
    base_cfg: &ScanConfig,
) -> CrossValidation {
    let os = env.os;
    // Expand every plan once, up front.
    let plans: Vec<Vec<PlannedRequest>> = population
        .iter()
        .map(|(domain, pb)| pb.planned_requests(domain, os))
        .collect();

    // Widen the sweep to the population's loopback ports.
    let mut cfg = base_cfg.clone();
    let mut ports: BTreeSet<u16> = cfg.ports.iter().copied().collect();
    for plan in &plans {
        for pr in plan {
            if pr.url.locality().is_loopback() {
                ports.insert(pr.url.port());
            }
        }
    }
    cfg.ports = ports.into_iter().collect();
    let scan = run_scan(env, net, &cfg);

    // Loopback ports the scan answered definitively (open or closed).
    let confirmed: BTreeSet<u16> = scan
        .results
        .iter()
        .filter(|r| {
            r.target.addr.is_loopback()
                && r.target.protocol == Protocol::Tcp
                && r.state.is_definitive()
        })
        .map(|r| r.target.port)
        .collect();

    let mut cases = Vec::new();
    let mut matrix = AgreementMatrix::default();
    for ((domain, pb), plan) in population.iter().zip(&plans) {
        if plan.is_empty() {
            // The behaviour does not run on this OS: nothing for
            // either instrument to see, and nothing to validate.
            continue;
        }
        let truth = reason_class_of(&pb.behavior);
        let all_local: Vec<LocalObservation> = plan
            .iter()
            .filter_map(|pr| observation_of(domain.as_str(), os, pr))
            .collect();
        if all_local.is_empty() {
            continue;
        }
        let earliest_delay_ms = all_local.iter().map(|o| o.delay_ms).min();

        // Passive: what the 20-second capture can see.
        let windowed: Vec<LocalObservation> = all_local
            .iter()
            .filter(|o| o.delay_ms < PASSIVE_WINDOW_MS)
            .cloned()
            .collect();
        let passive_hit = verdict(domain.as_str(), windowed, truth);

        // Active: the full plan, restricted to scan-confirmed loopback
        // ports (LAN destinations pass through — the loopback sweep
        // does not adjudicate them).
        let confirmed_obs: Vec<LocalObservation> = all_local
            .iter()
            .filter(|o| !o.locality.is_loopback() || confirmed.contains(&o.port))
            .cloned()
            .collect();
        let active_hit = verdict(domain.as_str(), confirmed_obs, truth);

        matrix.add(truth, AgreementCell::of(passive_hit, active_hit));
        cases.push(CrossCase {
            domain: domain.as_str().to_string(),
            class: truth,
            passive_hit,
            active_hit,
            earliest_delay_ms,
        });
    }

    CrossValidation {
        os,
        window_ms: PASSIVE_WINDOW_MS,
        cases,
        matrix,
        scan,
    }
}

/// A seeded population for cross-validation runs: one site per entry,
/// behaviours drawn across all five classes. Entry 0 is always a
/// ThreatMetrix planting that first fires *after* the capture window
/// closes — the guaranteed window-false-negative the experiment is
/// designed to surface.
pub fn crossval_population(seed: u64, n: usize) -> Vec<(DomainName, PlantedBehavior)> {
    let vendor = DomainName::parse("online-metrix.net").expect("static vendor domain");
    let mut population = Vec::new();
    for i in 0..n.max(1) {
        let domain =
            DomainName::parse(&format!("crossval-{i:04}.example")).expect("static domain shape");
        let (behavior, base_delay_ms) = if i == 0 {
            // Fires 5 s after the window closes: passively invisible.
            (
                Behavior::ThreatMetrix {
                    vendor: vendor.clone(),
                },
                PASSIVE_WINDOW_MS + 5_000,
            )
        } else {
            let behavior = match rng::pick(seed, &format!("crossval/behavior/{i}"), 7) {
                0 => Behavior::ThreatMetrix {
                    vendor: vendor.clone(),
                },
                1 => Behavior::BigIpBotDefense,
                2 => Behavior::NativeApp(NativeApp::Discord),
                3 => Behavior::NativeApp(NativeApp::Faceit),
                4 => Behavior::DevError(DevError::LiveReload {
                    scheme: kt_netbase::Scheme::Http,
                    port: 35_729,
                }),
                5 => Behavior::DevError(DevError::LocalFileServer {
                    scheme: kt_netbase::Scheme::Http,
                    port: 8_080,
                    path: "/wp-content/uploads/logo.png".to_string(),
                }),
                _ => Behavior::Unknown(UnknownKind::HolaJson),
            };
            let delay = rng::range(seed, &format!("crossval/delay/{i}"), 500.0, 15_000.0) as u64;
            (behavior, delay)
        };
        population.push((
            domain,
            PlantedBehavior {
                behavior,
                os_set: OsSet::ALL,
                base_delay_ms,
            },
        ));
    }
    population
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_faults::{Fault, FaultPlan};

    fn world(seed: u64) -> (HostEnv, SimNet) {
        (HostEnv::sampled(Os::Windows, seed), SimNet::new(seed))
    }

    fn validate(seed: u64, rate: f64, workers: usize) -> CrossValidation {
        let (env, net) = world(seed);
        let mut cfg = ScanConfig::new(seed);
        cfg.workers = workers;
        if rate > 0.0 {
            cfg.faults = FaultPlan::none(seed)
                .with_rate(Fault::ProbeDrop, rate)
                .with_rate(Fault::ProbeDelay, rate)
                .with_rate(Fault::ConnectionReset, rate);
        }
        let population = crossval_population(seed, 24);
        run_cross_validation(&env, &net, &population, &cfg)
    }

    #[test]
    fn clean_run_agrees_except_for_the_window() {
        let cv = validate(11, 0.0, 4);
        assert!(!cv.cases.is_empty());
        // Without faults the only disagreements are window-induced:
        // every active-only case fires at/after window close.
        for case in &cv.cases {
            if case.cell() == AgreementCell::ActiveOnly {
                assert!(
                    case.is_window_false_negative(),
                    "{}: active-only without a window cause",
                    case.domain
                );
            }
            assert_ne!(
                case.cell(),
                AgreementCell::PassiveOnly,
                "{}: the windowed view is a subset of the full plan",
                case.domain
            );
        }
    }

    #[test]
    fn the_seeded_late_behaviour_is_a_window_false_negative() {
        let cv = validate(11, 0.0, 4);
        let fns = cv.window_false_negatives();
        assert!(
            fns.iter()
                .any(|c| c.domain == "crossval-0000.example"
                    && c.class == ReasonClass::FraudDetection),
            "the planted late ThreatMetrix must be invisible to the 20 s window: {fns:?}"
        );
    }

    #[test]
    fn agreement_rate_degrades_under_fault_storm_but_never_breaks() {
        let clean = validate(11, 0.0, 4);
        let stormy = validate(11, 0.60, 4);
        assert!(clean.matrix.agreement_rate() >= stormy.matrix.agreement_rate());
        assert_eq!(clean.cases.len(), stormy.cases.len(), "same population");
    }

    #[test]
    fn cross_validation_is_worker_count_invariant() {
        let renders: Vec<String> = [1usize, 8]
            .iter()
            .map(|w| validate(11, 0.20, *w).render())
            .collect();
        assert_eq!(renders[0], renders[1]);
    }

    #[test]
    fn agreement_metrics_label_by_reason() {
        let cv = validate(11, 0.0, 4);
        let mut reg = Registry::new();
        kt_trace::names::describe_defaults(&mut reg);
        record_agreement_metrics(&cv, &mut reg);
        let text = reg.render_prometheus();
        assert!(
            text.contains("scan_agreement_active_only_total{reason=\"Fraud Detection\"}"),
            "window FN must surface as a labelled active-only cell:\n{text}"
        );
        assert!(text.contains("scan_agreement_both_total"));
    }
}
