//! Longitudinal 2020 → 2021 analysis (§4.1, §4.3's churn narrative).
//!
//! The paper repeatedly contrasts its two top-list crawls: which sites
//! kept their behaviour, which stopped (all BIG-IP deployments), which
//! domains started, and whether the newcomers were already in the
//! earlier list. This module computes the full per-class transition
//! matrix from the two crawls' site activities.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

use crate::classify::{classify_site, ReasonClass};
use crate::detect::SiteLocalActivity;
use crate::report::TextTable;

/// One site's transition between the two measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Transition {
    /// Locally active in both crawls, same class.
    Carried,
    /// Active in both crawls but the classifier's reason changed.
    Reclassified,
    /// Active in 2020 only.
    Stopped,
    /// Active in 2021 only.
    Started,
}

impl Transition {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Transition::Carried => "carried",
            Transition::Reclassified => "reclassified",
            Transition::Stopped => "stopped",
            Transition::Started => "started",
        }
    }
}

/// The per-class transition matrix.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitionMatrix {
    /// (class as of the crawl where the site was active, transition)
    /// → count. For `Carried`/`Reclassified` the 2020 class is used.
    pub counts: BTreeMap<(ReasonClass, Transition), usize>,
    /// Sites per transition, for the §4.1 headline numbers.
    pub totals: BTreeMap<Transition, usize>,
}

/// Compute the matrix over localhost-active sites of two crawls.
pub fn transitions(
    sites2020: &[SiteLocalActivity],
    sites2021: &[SiteLocalActivity],
) -> TransitionMatrix {
    let classed = |sites: &[SiteLocalActivity]| -> BTreeMap<String, ReasonClass> {
        sites
            .iter()
            .filter(|s| s.has_localhost())
            .map(|s| (s.domain.clone(), classify_site(s)))
            .collect()
    };
    let y2020 = classed(sites2020);
    let y2021 = classed(sites2021);
    let domains: BTreeSet<&String> = y2020.keys().chain(y2021.keys()).collect();
    let mut matrix = TransitionMatrix::default();
    for domain in domains {
        let (class, transition) = match (y2020.get(domain), y2021.get(domain)) {
            (Some(a), Some(b)) if a == b => (*a, Transition::Carried),
            (Some(a), Some(_)) => (*a, Transition::Reclassified),
            (Some(a), None) => (*a, Transition::Stopped),
            (None, Some(b)) => (*b, Transition::Started),
            (None, None) => unreachable!("domain came from one of the maps"),
        };
        *matrix.counts.entry((class, transition)).or_default() += 1;
        *matrix.totals.entry(transition).or_default() += 1;
    }
    matrix
}

impl TransitionMatrix {
    /// Count for one (class, transition) cell.
    pub fn get(&self, class: ReasonClass, transition: Transition) -> usize {
        self.counts.get(&(class, transition)).copied().unwrap_or(0)
    }

    /// Render as a class × transition table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(["Reason", "carried", "reclassified", "stopped", "started"]);
        for class in ReasonClass::ALL {
            table.row([
                class.label().to_string(),
                self.get(class, Transition::Carried).to_string(),
                self.get(class, Transition::Reclassified).to_string(),
                self.get(class, Transition::Stopped).to_string(),
                self.get(class, Transition::Started).to_string(),
            ]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::LocalObservation;
    use kt_netbase::services::THREATMETRIX_PORTS;
    use kt_netbase::{Os, OsSet, Scheme, Url};

    fn tm_site(domain: &str) -> SiteLocalActivity {
        let observations: Vec<LocalObservation> = THREATMETRIX_PORTS
            .iter()
            .map(|p| {
                let url = Url::parse(&format!("wss://localhost:{p}/")).unwrap();
                LocalObservation {
                    domain: domain.to_string(),
                    rank: Some(1),
                    malicious_category: None,
                    os: Os::Windows,
                    scheme: Scheme::Wss,
                    port: *p,
                    path: "/".into(),
                    locality: url.locality(),
                    websocket: true,
                    via_redirect: false,
                    time_ms: 9_000,
                    delay_ms: 8_500,
                    url,
                }
            })
            .collect();
        SiteLocalActivity {
            domain: domain.to_string(),
            rank: Some(1),
            malicious_category: None,
            localhost_os: OsSet::WINDOWS_ONLY,
            lan_os: OsSet::NONE,
            observations,
        }
    }

    fn dev_site(domain: &str) -> SiteLocalActivity {
        let url = Url::parse("http://localhost:35729/livereload.js").unwrap();
        SiteLocalActivity {
            domain: domain.to_string(),
            rank: Some(2),
            malicious_category: None,
            localhost_os: OsSet::ALL,
            lan_os: OsSet::NONE,
            observations: vec![LocalObservation {
                domain: domain.to_string(),
                rank: Some(2),
                malicious_category: None,
                os: Os::Linux,
                scheme: Scheme::Http,
                port: 35729,
                path: "/livereload.js".into(),
                locality: url.locality(),
                websocket: false,
                via_redirect: false,
                time_ms: 2_000,
                delay_ms: 1_500,
                url,
            }],
        }
    }

    #[test]
    fn full_matrix() {
        let y2020 = vec![
            tm_site("carried.example"),
            tm_site("stopped.example"),
            dev_site("reclass.example"),
        ];
        let y2021 = vec![
            tm_site("carried.example"),
            tm_site("reclass.example"), // dev error became fraud: reclassified
            dev_site("started.example"),
        ];
        let m = transitions(&y2020, &y2021);
        assert_eq!(m.get(ReasonClass::FraudDetection, Transition::Carried), 1);
        assert_eq!(m.get(ReasonClass::FraudDetection, Transition::Stopped), 1);
        assert_eq!(
            m.get(ReasonClass::DeveloperError, Transition::Reclassified),
            1
        );
        assert_eq!(m.get(ReasonClass::DeveloperError, Transition::Started), 1);
        assert_eq!(m.totals[&Transition::Carried], 1);
        assert_eq!(m.totals[&Transition::Started], 1);
        let text = m.render();
        assert!(text.contains("Fraud Detection"));
        assert!(text.contains("carried"));
    }

    #[test]
    fn empty_inputs() {
        let m = transitions(&[], &[]);
        assert!(m.counts.is_empty());
        assert!(m.totals.is_empty());
        assert_eq!(m.get(ReasonClass::Unknown, Transition::Carried), 0);
    }
}
