//! Report builders: regenerate every table of the paper from
//! telemetry-derived structures.
//!
//! Each `table*` function returns a rendered text table plus (where
//! useful) structured rows, so benches can regenerate the artefacts
//! and tests can assert on the contents.

use kt_netbase::{Os, ServiceRegistry};
use kt_store::VisitRecord;
use kt_weblists::{Blocklist, MaliciousCategory};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

use crate::classify::{classify_site, ReasonClass};
use crate::detect::SiteLocalActivity;
use crate::par::OutcomeTally;
use kt_crawler::CrawlStats;

/// Simple fixed-width text-table renderer.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        debug_assert_eq!(row.len(), self.header.len());
        self.rows.push(row);
    }

    /// Number of body rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no body rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Condense a sorted port list into the paper's range notation
/// (`14440-9` style collapses to `14440-14449` here for clarity).
pub fn condense_ports(ports: &[u16]) -> String {
    let mut sorted: Vec<u16> = ports.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut parts: Vec<String> = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let start = sorted[i];
        let mut end = start;
        while i + 1 < sorted.len() && sorted[i + 1] == end + 1 {
            end = sorted[i + 1];
            i += 1;
        }
        if end > start + 1 {
            parts.push(format!("{start}-{end}"));
        } else if end == start + 1 {
            parts.push(format!("{start}, {end}"));
        } else {
            parts.push(format!("{start}"));
        }
        i += 1;
    }
    parts.join(", ")
}

/// One crawl's Table 1 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Crawl label ("Top 100K: 2020", …).
    pub crawl: String,
    /// OS label.
    pub os: String,
    /// Successful loads.
    pub successful: usize,
    /// Failed loads.
    pub failed: usize,
    /// Error breakdown: (name, count).
    pub errors: Vec<(String, usize)>,
    /// Connectivity-check retries (measurement-side outages that
    /// delayed the crawl instead of polluting the error columns).
    pub connectivity_retries: usize,
}

/// Table 1 — web crawl statistics.
pub fn table1(rows: &[(&str, Os, &CrawlStats)]) -> (String, Vec<Table1Row>) {
    let mut table = TextTable::new([
        "Type of Crawl",
        "OS",
        "# success",
        "# failed",
        "NAME_NOT_RESOLVED",
        "CONN_REFUSED",
        "CONN_RESET",
        "CERT_CN_INVALID",
        "Others",
        "# conn retries",
    ]);
    let mut structured = Vec::new();
    for (label, os, stats) in rows {
        let errors = stats.table1_errors();
        let pct = |n: usize, d: usize| -> String {
            if d == 0 {
                "0 (0%)".to_string()
            } else {
                format!("{} ({:.1}%)", n, 100.0 * n as f64 / d as f64)
            }
        };
        let failed = stats.failed();
        table.row([
            label.to_string(),
            os.name().to_string(),
            pct(stats.successful, stats.attempted),
            pct(failed, stats.attempted),
            pct(errors[0].1, failed),
            pct(errors[1].1, failed),
            pct(errors[2].1, failed),
            pct(errors[3].1, failed),
            pct(errors[4].1, failed),
            stats.connectivity_retries.to_string(),
        ]);
        structured.push(Table1Row {
            crawl: label.to_string(),
            os: os.name().to_string(),
            successful: stats.successful,
            failed,
            errors: errors.iter().map(|(n, c)| (n.to_string(), *c)).collect(),
            connectivity_retries: stats.connectivity_retries,
        });
    }
    (table.render(), structured)
}

/// One campaign × OS resilience summary: how hard the supervisor had
/// to work to produce its Table 1 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthReport {
    /// Crawl label.
    pub crawl: String,
    /// OS label.
    pub os: String,
    /// Sites attempted.
    pub attempted: usize,
    /// In-place retries after transient failures.
    pub retries: usize,
    /// Sites sent through the end-of-campaign recrawl pass.
    pub recrawled: usize,
    /// Sites that failed transiently but ended as successes.
    pub recovered: usize,
    /// Sites still failing after the recrawl pass.
    pub gave_up: usize,
    /// Visits quarantined after a worker panic.
    pub crashed: usize,
    /// Telemetry-store appends that needed a retry.
    pub store_retries: usize,
    /// Connectivity-check retries (measurement-side outages).
    pub connectivity_retries: usize,
}

impl HealthReport {
    /// Summarise one campaign's stats.
    pub fn from_stats(crawl: &str, os: Os, stats: &CrawlStats) -> HealthReport {
        HealthReport {
            crawl: crawl.to_string(),
            os: os.name().to_string(),
            attempted: stats.attempted,
            retries: stats.retries,
            recrawled: stats.recrawled,
            recovered: stats.recovered,
            gave_up: stats.gave_up,
            crashed: stats.crashed,
            store_retries: stats.store_retries,
            connectivity_retries: stats.connectivity_retries,
        }
    }

    /// Of the sites that ever failed transiently, the fraction the
    /// retry/recrawl machinery saved. 0 when none failed transiently.
    pub fn recovery_rate(&self) -> f64 {
        let tried = self.recovered + self.gave_up;
        if tried == 0 {
            0.0
        } else {
            self.recovered as f64 / tried as f64
        }
    }

    /// Fraction of attempted sites quarantined after a panic.
    pub fn quarantine_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.crashed as f64 / self.attempted as f64
        }
    }
}

/// The crawl health report: one row per campaign × OS.
pub fn health_table(rows: &[(&str, Os, &CrawlStats)]) -> (String, Vec<HealthReport>) {
    let mut table = TextTable::new([
        "Type of Crawl",
        "OS",
        "# sites",
        "retries",
        "recrawled",
        "recovered",
        "gave up",
        "quarantined",
        "store retries",
        "conn retries",
        "recovery",
    ]);
    let mut structured = Vec::new();
    for (label, os, stats) in rows {
        let report = HealthReport::from_stats(label, *os, stats);
        table.row([
            report.crawl.clone(),
            report.os.clone(),
            report.attempted.to_string(),
            report.retries.to_string(),
            report.recrawled.to_string(),
            report.recovered.to_string(),
            report.gave_up.to_string(),
            report.crashed.to_string(),
            report.store_retries.to_string(),
            report.connectivity_retries.to_string(),
            format!("{:.0}%", report.recovery_rate() * 100.0),
        ]);
        structured.push(report);
    }
    (table.render(), structured)
}

/// One journal's durability summary: what the write-ahead log holds,
/// what the crash (if any) cost, and whether a resume can make the
/// campaign whole. Rendered as the health report's durability section
/// when a study runs journaled.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DurabilityReport {
    /// Valid visit frames replayed.
    pub visits: usize,
    /// Campaign checkpoints found.
    pub checkpoints: usize,
    /// Flush (fsync) markers seen.
    pub flush_points: usize,
    /// Duplicate final verdicts deduped on replay (crash-window
    /// re-runs; harmless by design).
    pub duplicate_finals: usize,
    /// Frames lost to CRC damage or torn writes.
    pub corrupt_frames: usize,
    /// Bytes skipped while resyncing past damage.
    pub corrupt_bytes: u64,
    /// True when the journal ends mid-frame (the classic kill scar).
    pub truncated_tail: bool,
    /// Byte offset of the last valid frame — everything after this is
    /// the torn tail an `open_append` would trim.
    pub valid_end: u64,
}

impl DurabilityReport {
    /// Summarise a journal replay.
    pub fn from_replay(report: &kt_store::ReplayReport) -> DurabilityReport {
        DurabilityReport {
            visits: report.visits.len(),
            checkpoints: report.checkpoints.len(),
            flush_points: report.flush_points,
            duplicate_finals: report.duplicate_finals,
            corrupt_frames: report.corrupt_frames,
            corrupt_bytes: report.corrupt_bytes,
            truncated_tail: report.truncated_tail,
            valid_end: report.valid_end,
        }
    }

    /// True when the journal shows no crash damage at all.
    pub fn clean(&self) -> bool {
        self.corrupt_frames == 0 && !self.truncated_tail
    }

    /// Render the health report's durability section.
    pub fn render(&self) -> String {
        let mut out = String::from("Durability (write-ahead journal):\n");
        out.push_str(&format!(
            "  {} visit frames, {} checkpoints, {} flush points, {} duplicate finals deduped\n",
            self.visits, self.checkpoints, self.flush_points, self.duplicate_finals
        ));
        if self.clean() {
            out.push_str("  no damage: every frame CRC-valid, tail complete\n");
        } else {
            out.push_str(&format!(
                "  damage: {} corrupt frame(s), {} byte(s) skipped, torn tail: {}\n",
                self.corrupt_frames, self.corrupt_bytes, self.truncated_tail
            ));
            out.push_str(&format!(
                "  recovery: replay is whole up to byte {}; run `knocktalk resume` to finish, `knocktalk fsck --repair` to scrub\n",
                self.valid_end
            ));
        }
        out
    }
}

/// Map a record's category code back to the blocklist category.
pub fn category_of(code: u8) -> MaliciousCategory {
    match code {
        0 => MaliciousCategory::Malware,
        1 => MaliciousCategory::Abuse,
        _ => MaliciousCategory::Phishing,
    }
}

/// Code for a category (inverse of [`category_of`]).
pub fn category_code(category: MaliciousCategory) -> u8 {
    match category {
        MaliciousCategory::Malware => 0,
        MaliciousCategory::Abuse => 1,
        MaliciousCategory::Phishing => 2,
    }
}

/// Table 2 — malicious crawl summary: per category, the population,
/// sources, success rate per OS, and localhost/LAN site counts per OS.
pub fn table2(
    blocklist: &Blocklist,
    records: &[VisitRecord],
    sites: &[SiteLocalActivity],
) -> String {
    // Reduce the records to the per-(category, OS) tally the table
    // actually needs, then render from that — the same entry point the
    // single-decode parallel analysis uses, so both paths are one
    // renderer.
    let mut outcomes: BTreeMap<(u8, Os), OutcomeTally> = BTreeMap::new();
    for record in records {
        let Some(code) = record.malicious_category else {
            continue;
        };
        let tally = outcomes.entry((code, record.os)).or_default();
        tally.total += 1;
        if record.outcome.is_success() {
            tally.ok += 1;
        }
    }
    table2_tallied(blocklist, &outcomes, sites)
}

/// Table 2 from pre-aggregated outcome tallies (no record access):
/// the renderer behind [`table2`], fed directly by
/// [`crate::par::CrawlAnalysis::outcomes`].
pub fn table2_tallied(
    blocklist: &Blocklist,
    outcomes: &BTreeMap<(u8, Os), OutcomeTally>,
    sites: &[SiteLocalActivity],
) -> String {
    let mut table = TextTable::new([
        "Category",
        "# Sites",
        "Data Sources (% contribution)",
        "Success W/L/M",
        "Localhost W/L/M",
        "LAN W/L/M",
    ]);
    for category in MaliciousCategory::ALL {
        let code = category_code(category);
        let n_sites = blocklist.of_category(category).count();
        let sources = blocklist
            .source_contribution(category)
            .iter()
            .map(|(s, f)| format!("{} ({:.0}%)", s.name(), f * 100.0))
            .collect::<Vec<_>>()
            .join(", ");
        let rate = |os: Os| -> String {
            let tally = outcomes.get(&(code, os)).copied().unwrap_or_default();
            if tally.total == 0 {
                return "-".into();
            }
            format!("{:.0}%", 100.0 * tally.ok as f64 / tally.total as f64)
        };
        let activity = |lan: bool, os: Os| -> usize {
            sites
                .iter()
                .filter(|s| s.malicious_category == Some(code))
                .filter(|s| {
                    if lan {
                        s.lan_os.contains(os)
                    } else {
                        s.localhost_os.contains(os)
                    }
                })
                .count()
        };
        table.row([
            category.label().to_string(),
            n_sites.to_string(),
            sources,
            format!(
                "{}/{}/{}",
                rate(Os::Windows),
                rate(Os::Linux),
                rate(Os::MacOs)
            ),
            format!(
                "{}/{}/{}",
                activity(false, Os::Windows),
                activity(false, Os::Linux),
                activity(false, Os::MacOs)
            ),
            format!(
                "{}/{}/{}",
                activity(true, Os::Windows),
                activity(true, Os::Linux),
                activity(true, Os::MacOs)
            ),
        ]);
    }
    table.render()
}

/// Table 3 — the top-ranked localhost-active domains, split the way
/// the paper splits them (Windows vs Linux/Mac), `count` rows each.
pub fn table3(sites: &[SiteLocalActivity], count: usize) -> String {
    let mut table = TextTable::new(["Rank (W)", "Windows", "Rank (L/M)", "Linux and Mac"]);
    let mut windows: Vec<&SiteLocalActivity> = sites
        .iter()
        .filter(|s| s.localhost_os.contains(Os::Windows))
        .collect();
    windows.sort_by_key(|s| s.rank.unwrap_or(u32::MAX));
    let mut nix: Vec<&SiteLocalActivity> = sites
        .iter()
        .filter(|s| s.localhost_os.contains(Os::Linux) || s.localhost_os.contains(Os::MacOs))
        .collect();
    nix.sort_by_key(|s| s.rank.unwrap_or(u32::MAX));
    for i in 0..count {
        let w = windows.get(i);
        let n = nix.get(i);
        if w.is_none() && n.is_none() {
            break;
        }
        let fmt = |s: Option<&&SiteLocalActivity>| -> (String, String) {
            match s {
                Some(s) => (
                    s.rank.map(|r| r.to_string()).unwrap_or_default(),
                    s.domain.clone(),
                ),
                None => (String::new(), String::new()),
            }
        };
        let (wr, wd) = fmt(w);
        let (nr, nd) = fmt(n);
        table.row([wr, wd, nr, nd]);
    }
    table.render()
}

/// Table 4 — the port/service registry with use cases.
pub fn table4(registry: &ServiceRegistry) -> String {
    let mut table = TextTable::new(["Port", "Service/App", "Use Case"]);
    for row in registry.table4_rows() {
        table.row([
            row.port.to_string(),
            row.service.to_string(),
            row.use_case.map(|u| u.label()).unwrap_or("").to_string(),
        ]);
    }
    table.render()
}

/// One row of a localhost table (Tables 5, 7, 8).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalhostRow {
    /// Classified reason.
    pub reason: ReasonClass,
    /// Rank (if a top-list site).
    pub rank: Option<u32>,
    /// Domain.
    pub domain: String,
    /// Distinct schemes.
    pub protocols: Vec<String>,
    /// Condensed port list.
    pub ports: String,
    /// Distinct paths (capped for rendering).
    pub paths: Vec<String>,
    /// OS ticks.
    pub os_ticks: String,
}

/// Build the localhost rows (reason-classified) for a site set.
pub fn localhost_rows(sites: &[SiteLocalActivity]) -> Vec<LocalhostRow> {
    let mut rows: Vec<LocalhostRow> = sites
        .iter()
        .filter(|s| s.has_localhost())
        .map(|s| {
            let loopback_obs: Vec<_> = s
                .observations
                .iter()
                .filter(|o| o.locality.is_loopback())
                .collect();
            let mut protocols: Vec<String> =
                loopback_obs.iter().map(|o| o.scheme.to_string()).collect();
            protocols.sort();
            protocols.dedup();
            let ports: Vec<u16> = loopback_obs.iter().map(|o| o.port).collect();
            let mut paths: Vec<String> = loopback_obs
                .iter()
                .map(|o| generalise_path(&o.path))
                .collect();
            paths.sort();
            paths.dedup();
            paths.truncate(3);
            LocalhostRow {
                reason: classify_site(s),
                rank: s.rank,
                domain: s.domain.clone(),
                protocols,
                ports: condense_ports(&ports),
                paths,
                os_ticks: s.localhost_os.ticks(),
            }
        })
        .collect();
    rows.sort_by_key(|r| (r.reason, r.rank.unwrap_or(u32::MAX)));
    rows
}

/// Render a localhost table (Tables 5/7/8 shape).
pub fn localhost_table(sites: &[SiteLocalActivity]) -> (String, Vec<LocalhostRow>) {
    let rows = localhost_rows(sites);
    let mut table = TextTable::new([
        "Reason", "Rank", "Domain", "Protocol", "Ports", "Paths", "W L M",
    ]);
    for r in &rows {
        table.row([
            r.reason.label().to_string(),
            r.rank.map(|x| x.to_string()).unwrap_or_default(),
            r.domain.clone(),
            r.protocols.join(","),
            r.ports.clone(),
            r.paths.join(" "),
            r.os_ticks.clone(),
        ]);
    }
    (table.render(), rows)
}

/// Replace volatile path components with `*`, the way the paper's
/// tables wildcard asset names.
fn generalise_path(path: &str) -> String {
    let (base, query) = match path.split_once('?') {
        Some((b, q)) => (b, Some(q)),
        None => (path, None),
    };
    let mut out: Vec<String> = Vec::new();
    for seg in base.split('/') {
        if seg.chars().any(|c| c.is_ascii_digit()) && seg.contains('.') {
            // An asset filename: wildcard the stem, keep the extension.
            match seg.rsplit_once('.') {
                Some((_, ext)) => out.push(format!("*.{ext}")),
                None => out.push("*".into()),
            }
        } else {
            out.push(seg.to_string());
        }
    }
    let mut result = out.join("/");
    if let Some(q) = query {
        // Wildcard query values.
        let q: Vec<String> = q
            .split('&')
            .map(|kv| match kv.split_once('=') {
                Some((k, _)) => format!("{k}=*"),
                None => kv.to_string(),
            })
            .collect();
        result.push('?');
        result.push_str(&q.join("&"));
    }
    result
}

/// One row of a LAN table (Tables 6, 9, 10).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LanRow {
    /// Rank (if a top-list site).
    pub rank: Option<u32>,
    /// Domain.
    pub domain: String,
    /// Scheme.
    pub protocol: String,
    /// The private destination address.
    pub local_ip: String,
    /// Destination port.
    pub port: u16,
    /// Generalised paths.
    pub paths: Vec<String>,
    /// OS ticks.
    pub os_ticks: String,
}

/// Build and render a LAN table.
pub fn lan_table(sites: &[SiteLocalActivity]) -> (String, Vec<LanRow>) {
    let mut rows: Vec<LanRow> = sites
        .iter()
        .filter(|s| s.has_lan())
        .map(|s| {
            let lan_obs: Vec<_> = s
                .observations
                .iter()
                .filter(|o| o.locality.is_private())
                .collect();
            let first = lan_obs.first().expect("has_lan implies an observation");
            let mut paths: Vec<String> = lan_obs.iter().map(|o| generalise_path(&o.path)).collect();
            paths.sort();
            paths.dedup();
            paths.truncate(3);
            LanRow {
                rank: s.rank,
                domain: s.domain.clone(),
                protocol: first.scheme.to_string(),
                local_ip: first.url.host().to_string(),
                port: first.port,
                paths,
                os_ticks: s.lan_os.ticks(),
            }
        })
        .collect();
    rows.sort_by_key(|r| r.rank.unwrap_or(u32::MAX));
    let mut table = TextTable::new([
        "Rank", "Domain", "Protocol", "Local IP", "Port", "Paths", "W L M",
    ]);
    for r in &rows {
        table.row([
            r.rank.map(|x| x.to_string()).unwrap_or_default(),
            r.domain.clone(),
            r.protocol.clone(),
            r.local_ip.clone(),
            r.port.to_string(),
            r.paths.join(" "),
            r.os_ticks.clone(),
        ]);
    }
    (table.render(), rows)
}

/// Table 11 — the developer-error subset of a localhost table.
pub fn table11(sites: &[SiteLocalActivity]) -> (String, Vec<LocalhostRow>) {
    let rows: Vec<LocalhostRow> = localhost_rows(sites)
        .into_iter()
        .filter(|r| r.reason == ReasonClass::DeveloperError)
        .collect();
    let mut table = TextTable::new(["Rank", "Domain", "Protocol", "Port", "Paths", "W L M"]);
    for r in &rows {
        table.row([
            r.rank.map(|x| x.to_string()).unwrap_or_default(),
            r.domain.clone(),
            r.protocols.join(","),
            r.ports.clone(),
            r.paths.join(" "),
            r.os_ticks.clone(),
        ]);
    }
    (table.render(), rows)
}

/// Classified counts per reason (the §4.3 headline numbers).
pub fn reason_counts(sites: &[SiteLocalActivity]) -> BTreeMap<ReasonClass, usize> {
    let mut counts = BTreeMap::new();
    for s in sites.iter().filter(|s| s.has_localhost()) {
        *counts.entry(classify_site(s)).or_insert(0) += 1;
    }
    counts
}

/// The 2020→2021 site-set diff used by Table 7's framing: which
/// domains are newly active, which stopped, which carried on.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ActivityDiff {
    /// Active in both crawls.
    pub carried: Vec<String>,
    /// Active in 2021 only.
    pub new: Vec<String>,
    /// Active in 2020 only.
    pub stopped: Vec<String>,
}

/// Compute the diff over localhost-active domains.
pub fn activity_diff(
    sites2020: &[SiteLocalActivity],
    sites2021: &[SiteLocalActivity],
) -> ActivityDiff {
    let set2020: BTreeSet<&str> = sites2020
        .iter()
        .filter(|s| s.has_localhost())
        .map(|s| s.domain.as_str())
        .collect();
    let set2021: BTreeSet<&str> = sites2021
        .iter()
        .filter(|s| s.has_localhost())
        .map(|s| s.domain.as_str())
        .collect();
    ActivityDiff {
        carried: set2020
            .intersection(&set2021)
            .map(|s| s.to_string())
            .collect(),
        new: set2021
            .difference(&set2020)
            .map(|s| s.to_string())
            .collect(),
        stopped: set2020
            .difference(&set2021)
            .map(|s| s.to_string())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condense_port_ranges() {
        assert_eq!(condense_ports(&[3389]), "3389");
        assert_eq!(
            condense_ports(&[14440, 14441, 14442, 14443, 14444]),
            "14440-14444"
        );
        assert_eq!(condense_ports(&[80, 81]), "80, 81");
        assert_eq!(
            condense_ports(&[5900, 5901, 5902, 5903, 7070]),
            "5900-5903, 7070"
        );
        assert_eq!(condense_ports(&[]), "");
        assert_eq!(condense_ports(&[5, 5, 5]), "5");
    }

    #[test]
    fn generalise_paths() {
        assert_eq!(
            generalise_path("/wp-content/uploads/2018/06/asset17.jpg"),
            "/wp-content/uploads/2018/06/*.jpg"
        );
        assert_eq!(generalise_path("/"), "/");
        assert_eq!(
            generalise_path("/v1/init.json?api_port=12071&query_id=3"),
            "/v1/init.json?api_port=*&query_id=*"
        );
        assert_eq!(generalise_path("/livereload.js"), "/livereload.js");
    }

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(["A", "Long header"]);
        t.row(["x", "y"]);
        t.row(["very long cell", "z"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with('A'));
        assert!(lines[1].starts_with('-'));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn table1_percentages() {
        let mut stats = CrawlStats::new();
        for _ in 0..90 {
            stats.record_success();
        }
        for _ in 0..9 {
            stats.record_failure(kt_netlog::NetError::NameNotResolved);
        }
        stats.record_failure(kt_netlog::NetError::TimedOut);
        let (text, rows) = table1(&[("Top 100K: 2020", Os::Windows, &stats)]);
        assert!(text.contains("90 (90.0%)"));
        assert!(text.contains("9 (90.0%)"), "DNS share of failures");
        assert_eq!(rows[0].failed, 10);
    }

    #[test]
    fn table1_surfaces_connectivity_retries() {
        let stats = CrawlStats {
            attempted: 10,
            successful: 10,
            connectivity_retries: 3,
            ..CrawlStats::default()
        };
        let (text, rows) = table1(&[("Top 100K: 2021", Os::Linux, &stats)]);
        assert!(text.contains("# conn retries"));
        assert_eq!(rows[0].connectivity_retries, 3);
    }

    #[test]
    fn health_table_summarises_resilience() {
        let stats = CrawlStats {
            attempted: 100,
            successful: 96,
            retries: 7,
            recrawled: 5,
            recovered: 3,
            gave_up: 1,
            crashed: 2,
            store_retries: 4,
            connectivity_retries: 6,
            ..CrawlStats::default()
        };
        let (text, reports) = health_table(&[("Top 100K: 2020", Os::Windows, &stats)]);
        assert!(text.contains("quarantined"));
        let r = &reports[0];
        assert_eq!(r.retries, 7);
        assert_eq!(r.crashed, 2);
        assert!((r.recovery_rate() - 0.75).abs() < 1e-9, "3 of 4 saved");
        assert!((r.quarantine_rate() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn health_report_rates_handle_empty_campaigns() {
        let report = HealthReport::from_stats("empty", Os::MacOs, &CrawlStats::new());
        assert_eq!(report.recovery_rate(), 0.0);
        assert_eq!(report.quarantine_rate(), 0.0);
    }

    #[test]
    fn durability_section_reports_damage_and_recovery_path() {
        let clean = DurabilityReport {
            visits: 120,
            checkpoints: 8,
            flush_points: 2,
            duplicate_finals: 0,
            corrupt_frames: 0,
            corrupt_bytes: 0,
            truncated_tail: false,
            valid_end: 4096,
        };
        assert!(clean.clean());
        let text = clean.render();
        assert!(text.contains("120 visit frames"));
        assert!(text.contains("no damage"));

        let scarred = DurabilityReport {
            corrupt_frames: 2,
            corrupt_bytes: 77,
            truncated_tail: true,
            ..clean
        };
        assert!(!scarred.clean());
        let text = scarred.render();
        assert!(text.contains("2 corrupt frame(s)"));
        assert!(text.contains("knocktalk resume"));
        assert!(text.contains("fsck --repair"));
    }

    #[test]
    fn durability_report_summarises_a_real_replay() {
        use kt_store::{JournalWriter, VisitDelta};

        let path =
            std::env::temp_dir().join(format!("kt-analysis-durability-{}.ktj", std::process::id()));
        let journal = JournalWriter::create(&path).unwrap();
        let record = kt_store::VisitRecord {
            crawl: kt_store::CrawlId::top2020(),
            domain: "a.example".into(),
            rank: Some(1),
            malicious_category: None,
            os: Os::Linux,
            outcome: kt_store::LoadOutcome::Success,
            loaded_at_ms: 5,
            events: Vec::new(),
        };
        journal.append_visit(&record, &VisitDelta::default(), 1, false);
        journal.sync();
        let replayed = kt_store::replay(&path).unwrap();
        let report = DurabilityReport::from_replay(&replayed);
        assert_eq!(report.visits, 1);
        assert!(report.clean());
        std::fs::remove_file(&path).ok();
    }
}
