//! RQ3 — why is a site talking to local destinations?
//!
//! The paper answered this by manual investigation; the classifier
//! encodes the resulting signatures so the answer is mechanical:
//!
//! 1. **Fraud detection** — WSS scans covering most of the 14
//!    ThreatMetrix remote-desktop ports, path `/`;
//! 2. **Bot detection** — HTTP probes covering most of the 7 BIG-IP
//!    malware/automation ports, path `/`;
//! 3. **Native application** — a known client fingerprint (Discord's
//!    6463–6472 `/?v=1`, nProtect's 14440–14449, FACEIT's 28337, …);
//! 4. **Developer error** — file-ish fetches (`wp-content`, image and
//!    script extensions), `livereload.js`, SockJS-node,
//!    `NonExistentImage*.gif`, `xook.js`, loopback redirects, or any
//!    LAN resource fetch with a concrete file path;
//! 5. **Unknown** — everything else (hola's 6880–6889 JSON probes,
//!    wide port sweeps, the censorship iframes).

use kt_netbase::services::{BIGIP_PORTS, THREATMETRIX_PORTS};
use kt_netbase::Scheme;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

use crate::detect::SiteLocalActivity;

/// The paper's Table 5 reason classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ReasonClass {
    /// ThreatMetrix-style localhost profiling for fraud prevention.
    FraudDetection,
    /// BIG-IP ASM-style bot defence probing.
    BotDetection,
    /// Communication with an affiliated native application.
    NativeApplication,
    /// Remnants of development and testing.
    DeveloperError,
    /// No confident explanation.
    Unknown,
}

impl ReasonClass {
    /// All classes in the paper's presentation order.
    pub const ALL: [ReasonClass; 5] = [
        ReasonClass::FraudDetection,
        ReasonClass::BotDetection,
        ReasonClass::NativeApplication,
        ReasonClass::DeveloperError,
        ReasonClass::Unknown,
    ];

    /// Label as printed in the tables.
    pub fn label(self) -> &'static str {
        match self {
            ReasonClass::FraudDetection => "Fraud Detection",
            ReasonClass::BotDetection => "Bot Detection",
            ReasonClass::NativeApplication => "Native Application",
            ReasonClass::DeveloperError => "Developer Error",
            ReasonClass::Unknown => "Unknown",
        }
    }
}

/// Known native-application fingerprints:
/// (name, ports, path marker, requires-websocket).
/// A site matches if it touches any fingerprint port AND (the marker
/// is empty or some path contains it) AND (the websocket requirement,
/// when set, is met). The websocket requirement disambiguates clients
/// whose ports are also popular dev-server ports — the paper itself
/// saw both FACEIT (ws 28337) and fsist.com.br's HTTP
/// `/getCertificados` service on 28337.
const NATIVE_FINGERPRINTS: &[(&str, &[u16], &str, bool)] = &[
    (
        "Discord",
        &[6463, 6464, 6465, 6466, 6467, 6468, 6469, 6470, 6471, 6472],
        "v=1",
        true,
    ),
    (
        "nProtect/AnySign",
        &[
            14440, 14441, 14442, 14443, 14444, 14445, 14446, 14447, 14448, 14449, 10531, 31027,
            31029,
        ],
        "",
        false,
    ),
    ("FACEIT", &[28337], "", true),
    (
        "GameHouse/Zylom",
        &[12071, 12072, 17021, 27021],
        "init.json",
        false,
    ),
    ("games.lol", &[60202], "/check", true),
    ("iWin", &[2080, 2081, 2082], "/version", false),
    ("Screenleap", &[5320], "/status", false),
    ("Ace Stream", &[6878], "/webui/api/service", false),
    ("TrustDice", &[50005, 51505, 53005, 54505, 56005], "", false),
    ("iQiyi", &[16422, 16423], "get_client_ver", false),
    ("Thunder", &[28317, 36759], "get_thunder_version", false),
    ("e-signature (cryptapi)", &[64443], "cryptapi", false),
    (
        "Gnway",
        &[38681, 38682, 38683, 38684, 38685, 38686, 38687],
        "",
        true,
    ),
];

/// File-ish path suffixes that mark a developer-error resource fetch.
const FILE_SUFFIXES: &[&str] = &[
    ".jpg", ".jpeg", ".png", ".gif", ".ico", ".mp4", ".ogg", ".css", ".js", ".json", ".html",
    ".txt",
];

/// Identify which native application a site's local probes target,
/// if any (the names of §4.3.3 / Appendix A). Independent of the
/// overall classification so reports can annotate rows.
pub fn native_app_name(site: &SiteLocalActivity) -> Option<&'static str> {
    let paths = site.path_refs();
    for (name, fp_ports, marker, ws_required) in NATIVE_FINGERPRINTS {
        let port_hit = site
            .observations
            .iter()
            .any(|o| fp_ports.contains(&o.port) && (!ws_required || o.websocket));
        if !port_hit {
            continue;
        }
        if marker.is_empty() || paths.iter().any(|p| p.contains(marker)) {
            return Some(name);
        }
    }
    None
}

/// Classify one site's local activity.
pub fn classify_site(site: &SiteLocalActivity) -> ReasonClass {
    let ports: BTreeSet<u16> = site.observations.iter().map(|o| o.port).collect();
    let paths = site.path_refs();

    // 1. ThreatMetrix: WSS to most of the 14-port set, path "/".
    let tm_hits = THREATMETRIX_PORTS
        .iter()
        .filter(|p| {
            site.observations
                .iter()
                .any(|o| o.port == **p && o.scheme == Scheme::Wss && o.locality.is_loopback())
        })
        .count();
    if tm_hits >= 10 {
        return ReasonClass::FraudDetection;
    }

    // 2. BIG-IP: HTTP to most of the 7-port set, path "/".
    let bigip_hits = BIGIP_PORTS
        .iter()
        .filter(|p| {
            site.observations
                .iter()
                .any(|o| o.port == **p && o.scheme == Scheme::Http && o.path == "/")
        })
        .count();
    if bigip_hits >= 5 {
        return ReasonClass::BotDetection;
    }

    // 3. Native applications.
    for (_name, fp_ports, marker, ws_required) in NATIVE_FINGERPRINTS {
        let port_hit = |require_ws: bool| {
            site.observations
                .iter()
                .any(|o| fp_ports.contains(&o.port) && (!require_ws || o.websocket))
        };
        if !port_hit(*ws_required) {
            continue;
        }
        let marker_hit = marker.is_empty() || paths.iter().any(|p| p.contains(marker));
        if marker_hit {
            return ReasonClass::NativeApplication;
        }
    }
    // Socket.io on a dev port is ambiguous: a native-client handshake
    // when on 4000 with the EIO query, a dev remnant otherwise.
    if ports.contains(&4000) && paths.iter().any(|p| p.contains("/socket.io/?EIO")) {
        return ReasonClass::NativeApplication;
    }

    // 4. Unknown *signatures* take precedence over the generic
    //    dev-error heuristics where their shapes would collide.
    let hola_ports = (6880..=6889).filter(|p| ports.contains(p)).count();
    if hola_ports >= 6 && paths.iter().any(|p| p.ends_with(".json")) {
        return ReasonClass::Unknown;
    }
    if ports.contains(&2687) && ports.contains(&26876) {
        return ReasonClass::Unknown;
    }
    // Wide sweeps of "/" across many unrelated service ports.
    let root_only_ports = site
        .observations
        .iter()
        .filter(|o| o.path == "/" && o.locality.is_loopback())
        .map(|o| o.port)
        .collect::<BTreeSet<u16>>();
    if root_only_ports.len() >= 15 {
        return ReasonClass::Unknown;
    }

    // 5. Developer errors.
    let dev_error = site.observations.iter().any(|o| {
        let path = o.path.as_str();
        let path_only = path.split('?').next().unwrap_or(path);
        o.via_redirect && o.locality.is_loopback()
            || path.contains("/wp-content/")
            || path.contains("livereload.js")
            || path.contains("/sockjs-node/")
            || path.contains("xook.js")
            || path.contains("NonExistentImage")
            || path.contains("/TSPD")
            || FILE_SUFFIXES.iter().any(|s| path_only.ends_with(s))
            // Any LAN fetch of a concrete sub-path is a dev remnant
            // (the censorship iframes request exactly "/").
            || (o.locality.is_private() && path_only.len() > 1)
    });
    if dev_error {
        return ReasonClass::DeveloperError;
    }
    // Local service endpoints left enabled (paths like /record/state,
    // /setuid, /graphql) on loopback: also development remnants.
    let service_path = site.observations.iter().any(|o| {
        o.locality.is_loopback()
            && o.path != "/"
            && !o.path.starts_with("/?")
            && o.scheme.handshake_scheme() == o.scheme // http(s), not ws
    });
    if service_path {
        return ReasonClass::DeveloperError;
    }
    // A lone local service answering "/" on one or two non-standard
    // ports over plain HTTP (the paper's filemail.com case): a
    // development remnant, not a scan.
    if !root_only_ports.is_empty()
        && root_only_ports.len() <= 2
        && site.observations.iter().all(|o| !o.scheme.is_websocket())
    {
        return ReasonClass::DeveloperError;
    }

    ReasonClass::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::LocalObservation;
    use kt_netbase::{Os, OsSet, Url};

    fn obs(scheme: Scheme, host: &str, port: u16, path: &str, ws: bool) -> LocalObservation {
        let url = Url::parse(&format!("{scheme}://{host}:{port}{path}")).unwrap();
        LocalObservation {
            domain: "site.example".into(),
            rank: Some(1),
            malicious_category: None,
            os: Os::Windows,
            scheme,
            port,
            path: url.path_and_query(),
            locality: url.locality(),
            websocket: ws,
            via_redirect: false,
            time_ms: 9_000,
            delay_ms: 8_600,
            url,
        }
    }

    fn site_with(observations: Vec<LocalObservation>) -> SiteLocalActivity {
        let mut localhost_os = OsSet::NONE;
        let mut lan_os = OsSet::NONE;
        for o in &observations {
            if o.locality.is_loopback() {
                localhost_os = localhost_os.with(o.os);
            } else if o.locality.is_private() {
                lan_os = lan_os.with(o.os);
            }
        }
        SiteLocalActivity {
            domain: "site.example".into(),
            rank: Some(1),
            malicious_category: None,
            localhost_os,
            lan_os,
            observations,
        }
    }

    #[test]
    fn threatmetrix_signature() {
        let observations = THREATMETRIX_PORTS
            .iter()
            .map(|p| obs(Scheme::Wss, "localhost", *p, "/", true))
            .collect();
        assert_eq!(
            classify_site(&site_with(observations)),
            ReasonClass::FraudDetection
        );
    }

    #[test]
    fn partial_threatmetrix_is_not_fraud() {
        // Only 3 of the ports: not enough evidence.
        let observations = THREATMETRIX_PORTS[..3]
            .iter()
            .map(|p| obs(Scheme::Wss, "localhost", *p, "/", true))
            .collect();
        assert_ne!(
            classify_site(&site_with(observations)),
            ReasonClass::FraudDetection
        );
    }

    #[test]
    fn bigip_signature() {
        let observations = BIGIP_PORTS
            .iter()
            .map(|p| obs(Scheme::Http, "localhost", *p, "/", false))
            .collect();
        assert_eq!(
            classify_site(&site_with(observations)),
            ReasonClass::BotDetection
        );
    }

    #[test]
    fn discord_fingerprint() {
        let observations = (6463u16..=6472)
            .map(|p| obs(Scheme::Ws, "localhost", p, "/?v=1", true))
            .collect();
        assert_eq!(
            classify_site(&site_with(observations)),
            ReasonClass::NativeApplication
        );
    }

    #[test]
    fn faceit_single_port() {
        let observations = vec![obs(Scheme::Ws, "localhost", 28337, "/", true)];
        assert_eq!(
            classify_site(&site_with(observations)),
            ReasonClass::NativeApplication
        );
    }

    #[test]
    fn wordpress_fetch_is_dev_error() {
        let observations = vec![obs(
            Scheme::Http,
            "localhost",
            8888,
            "/wp-content/uploads/2018/06/photo.jpg",
            false,
        )];
        assert_eq!(
            classify_site(&site_with(observations)),
            ReasonClass::DeveloperError
        );
    }

    #[test]
    fn livereload_and_sockjs_are_dev_errors() {
        let lr = vec![obs(
            Scheme::Https,
            "localhost",
            35729,
            "/livereload.js",
            false,
        )];
        assert_eq!(classify_site(&site_with(lr)), ReasonClass::DeveloperError);
        let sj = vec![obs(
            Scheme::Https,
            "localhost",
            9000,
            "/sockjs-node/info?t=1",
            false,
        )];
        assert_eq!(classify_site(&site_with(sj)), ReasonClass::DeveloperError);
    }

    #[test]
    fn lan_file_fetch_is_dev_error() {
        let observations = vec![obs(
            Scheme::Http,
            "10.0.0.200",
            80,
            "/wordpress/wp-content/uploads/2020/04/a.mp4",
            false,
        )];
        assert_eq!(
            classify_site(&site_with(observations)),
            ReasonClass::DeveloperError
        );
    }

    #[test]
    fn redirect_to_loopback_is_dev_error() {
        let mut o = obs(Scheme::Http, "127.0.0.1", 80, "/", false);
        o.via_redirect = true;
        assert_eq!(
            classify_site(&site_with(vec![o])),
            ReasonClass::DeveloperError
        );
    }

    #[test]
    fn hola_json_probes_are_unknown() {
        let observations = (6880u16..=6889)
            .map(|p| obs(Scheme::Http, "127.0.0.1", p, "/app_list.json", false))
            .collect();
        assert_eq!(
            classify_site(&site_with(observations)),
            ReasonClass::Unknown
        );
    }

    #[test]
    fn wide_sweep_is_unknown() {
        let ports = [
            1080u16, 1194, 2375, 2376, 3128, 3306, 3479, 5037, 5242, 5601, 5938, 6379, 8332, 8333,
            8530, 9050, 9150,
        ];
        let observations = ports
            .iter()
            .map(|p| obs(Scheme::Http, "localhost", *p, "/", false))
            .collect();
        assert_eq!(
            classify_site(&site_with(observations)),
            ReasonClass::Unknown
        );
    }

    #[test]
    fn censorship_iframe_is_unknown() {
        let observations = vec![obs(Scheme::Http, "10.10.34.35", 80, "/", false)];
        assert_eq!(
            classify_site(&site_with(observations)),
            ReasonClass::Unknown
        );
    }

    #[test]
    fn nonexistent_image_is_dev_error() {
        let observations = vec![obs(
            Scheme::Https,
            "localhost",
            5140,
            "/NonExistentImage19258.gif",
            false,
        )];
        assert_eq!(
            classify_site(&site_with(observations)),
            ReasonClass::DeveloperError
        );
    }

    #[test]
    fn native_app_names_are_identified() {
        let discord: Vec<LocalObservation> = (6463u16..=6472)
            .map(|p| obs(Scheme::Ws, "localhost", p, "/?v=1", true))
            .collect();
        assert_eq!(native_app_name(&site_with(discord)), Some("Discord"));
        let faceit = vec![obs(Scheme::Ws, "localhost", 28337, "/", true)];
        assert_eq!(native_app_name(&site_with(faceit)), Some("FACEIT"));
        // The http service on FACEIT's port is NOT the app.
        let http_28337 = vec![obs(
            Scheme::Http,
            "localhost",
            28337,
            "/getCertificados",
            false,
        )];
        assert_eq!(native_app_name(&site_with(http_28337)), None);
        let dev = vec![obs(
            Scheme::Http,
            "localhost",
            35729,
            "/livereload.js",
            false,
        )];
        assert_eq!(native_app_name(&site_with(dev)), None);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ReasonClass::FraudDetection.label(), "Fraud Detection");
        assert_eq!(ReasonClass::ALL.len(), 5);
    }
}
