//! # kt-faults
//!
//! The crawl resilience layer's fault model: everything a
//! production-scale measurement crawl must survive, made deterministic
//! so failure-injection tests are one-liners against the same
//! machinery the supervisor runs in anger.
//!
//! * [`plan`] — a seeded [`FaultPlan`] that decides, per `(fault,
//!   domain, attempt)`, whether to inject a transient DNS flap, a
//!   mid-flight connection reset, a truncated NetLog capture, a
//!   store-append failure, or a worker panic. Decisions are keyed by
//!   site identity (like all `simnet` randomness), so they are stable
//!   across runs, worker counts, and crawl order — and each retry
//!   *redraws*, because the attempt number is part of the key. The
//!   service path draws from the same plan: queue overflows, slow
//!   consumer stalls, and tenant bursts ([`Fault::SERVICE`]) key on
//!   update/tenant identity so a resident campaign service degrades
//!   identically whatever the worker count. The active scanner draws
//!   from the same plan too: probe drops and probe delays
//!   ([`Fault::PROBE`]) key on the knock target's identity so a scan
//!   degrades identically whatever the probe worker count;
//! * [`retry`] — the one [`RetryPolicy`] shared by the crawl
//!   supervisor and the active scanner: which net errors count as
//!   transient, how many in-place retries an operation gets,
//!   exponential backoff with deterministic jitter, and whether
//!   still-failing sites join the end-of-campaign recrawl queue.
//!   Centralising the backoff math here is what lets a property test
//!   pin that crawl and scan draw identical schedules for identical
//!   `(seed, key, attempt)`;
//! * [`SalvagedVisit`] — the panic payload an instrumented browser
//!   throws when a visit crashes, carrying the parseable capture
//!   prefix so the supervisor can quarantine the site without losing
//!   the evidence gathered before the crash.

#![warn(missing_docs)]

pub mod plan;
pub mod retry;

pub use plan::{Fault, FaultPlan, SalvagedVisit, VisitFaults};
pub use retry::{is_transient, RetryPolicy};
