//! Retry policy: transient-error classification, in-place retries
//! with exponential backoff + deterministic jitter, and the
//! end-of-campaign recrawl queue switch.

use kt_netlog::NetError;
use kt_simnet::rng;

/// True for failures worth retrying: the error classes real crawls
/// observe flapping (timeouts, resets, empty responses). Permanent
/// fates — NXDOMAIN, refused ports, certificate errors — go straight
/// to Table 1.
pub fn is_transient(err: NetError) -> bool {
    matches!(
        err,
        NetError::TimedOut | NetError::ConnectionReset | NetError::EmptyResponse
    )
}

/// The supervisor's retry/backoff/recrawl configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total in-place attempts per visit (1 = no retry).
    pub max_attempts: u32,
    /// First backoff interval, ms.
    pub base_backoff_ms: u64,
    /// Backoff ceiling, ms.
    pub max_backoff_ms: u64,
    /// Queue still-failing transient sites for one recrawl at campaign
    /// end before recording them as Table 1 failures.
    pub recrawl: bool,
}

impl RetryPolicy {
    /// The production policy: one in-place retry with a few seconds of
    /// backoff, then the end-of-campaign recrawl pass.
    pub fn paper() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            base_backoff_ms: 5_000,
            max_backoff_ms: 60_000,
            recrawl: true,
        }
    }

    /// Single-shot: visit once, record whatever happens (the seed
    /// crawler's behaviour).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            recrawl: false,
        }
    }

    /// Backoff before retry number `attempt` (1-based: the wait after
    /// the `attempt`-th failure): exponential in the attempt, clamped,
    /// plus deterministic jitter hashed from the site identity so
    /// workers never thundering-herd yet stay reproducible.
    pub fn backoff_ms(&self, seed: u64, domain: &str, attempt: u32) -> u64 {
        if self.base_backoff_ms == 0 {
            return 0;
        }
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
            .min(self.max_backoff_ms);
        let jitter_span = (self.base_backoff_ms / 2).max(1);
        let label = format!("backoff/{domain}/{attempt}");
        exp + rng::hash_str(seed, &label) % jitter_span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification_matches_the_failure_model() {
        assert!(is_transient(NetError::TimedOut));
        assert!(is_transient(NetError::ConnectionReset));
        assert!(is_transient(NetError::EmptyResponse));
        assert!(!is_transient(NetError::NameNotResolved));
        assert!(!is_transient(NetError::ConnectionRefused));
        assert!(!is_transient(NetError::CertCommonNameInvalid));
        assert!(!is_transient(NetError::Aborted));
    }

    #[test]
    fn backoff_grows_exponentially_and_clamps() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff_ms: 1_000,
            max_backoff_ms: 4_000,
            recrawl: true,
        };
        let b1 = policy.backoff_ms(7, "s.example", 1);
        let b2 = policy.backoff_ms(7, "s.example", 2);
        let b3 = policy.backoff_ms(7, "s.example", 3);
        let b9 = policy.backoff_ms(7, "s.example", 9);
        assert!((1_000..1_500).contains(&b1), "{b1}");
        assert!((2_000..2_500).contains(&b2), "{b2}");
        assert!((4_000..4_500).contains(&b3), "clamped: {b3}");
        assert!((4_000..4_500).contains(&b9), "stays clamped: {b9}");
    }

    #[test]
    fn backoff_is_deterministic_but_jittered_across_sites() {
        let policy = RetryPolicy::paper();
        assert_eq!(
            policy.backoff_ms(1, "a.example", 1),
            policy.backoff_ms(1, "a.example", 1)
        );
        let distinct: std::collections::BTreeSet<u64> = (0..50)
            .map(|i| policy.backoff_ms(1, &format!("j{i}.example"), 1))
            .collect();
        assert!(distinct.len() > 10, "jitter spreads sites out");
    }

    #[test]
    fn none_policy_never_waits() {
        let policy = RetryPolicy::none();
        assert_eq!(policy.max_attempts, 1);
        assert!(!policy.recrawl);
        assert_eq!(policy.backoff_ms(1, "x.example", 1), 0);
    }
}
