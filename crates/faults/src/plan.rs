//! Deterministic fault plans.
//!
//! A [`FaultPlan`] is the single source of truth for injected crawl
//! faults. Every decision is a pure function of `(seed, fault, domain,
//! attempt)` via the same identity-hashing RNG the rest of the
//! simulation uses, so a plan behaves identically whether the crawl
//! runs on one worker or eight, and a retried visit redraws its fate
//! instead of deterministically re-failing.

use kt_netlog::NetLogEvent;
use kt_simnet::rng;

/// One injectable fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Fault {
    /// Transient resolver flap: the DNS query times out this attempt.
    DnsFlap,
    /// Mid-flight reset: the landing connection dies after the
    /// document starts arriving.
    ConnectionReset,
    /// The NetLog capture loses its tail (disk pressure, writer crash);
    /// the visit itself still completes.
    TruncatedCapture,
    /// The telemetry store rejects the first append of this record.
    StoreAppendFailure,
    /// The visit panics mid-flight, taking the worker with it unless
    /// the supervisor isolates it.
    WorkerPanic,
    /// The whole crawl process dies (`kill -9`, OOM, power loss) while
    /// journaling this visit — a torn frame on disk, nothing after it.
    /// Unlike the other faults this one is not survivable in-process;
    /// it exists so crash-consistency tests can place a deterministic
    /// kill at a chosen visit and assert that `resume` recovers.
    ProcessKill,
    /// Service path: the campaign service's bounded result queue
    /// reports full for this update's arrival, forcing the tenant's
    /// overflow policy (block or shed) even when the modeled depth is
    /// below capacity. Keyed by the update's domain and pass so the
    /// forced overflows land identically whatever the worker count.
    QueueOverflow,
    /// Service path: the online-aggregation consumer stalls while
    /// draining this update (GC pause, page fault, noisy neighbour),
    /// inflating the modeled queue depth behind it.
    SlowConsumer,
    /// Service path: a tenant's scheduler misfires and submits a burst
    /// of extra campaigns at once. Drawn by workload drivers (identity
    /// = tenant, attempt = submission slot) to decide which slots
    /// burst; admission control absorbs the burst deterministically.
    TenantBurst,
    /// Scanner path: the knock packet (or its answer) is silently
    /// dropped in flight, so the attempt times out no matter what is
    /// listening. Keyed by the probe target's identity string so the
    /// same knock drops identically whatever the probe worker count.
    ProbeDrop,
    /// Scanner path: the knock's round trip is inflated by a
    /// deterministic delay (congestion, a rate limiter, a sleepy
    /// device). The attempt still completes unless the delay pushes it
    /// past the per-knock timeout.
    ProbeDelay,
}

impl Fault {
    /// Every fault class, in a fixed order.
    pub const ALL: [Fault; 11] = [
        Fault::DnsFlap,
        Fault::ConnectionReset,
        Fault::TruncatedCapture,
        Fault::StoreAppendFailure,
        Fault::WorkerPanic,
        Fault::ProcessKill,
        Fault::QueueOverflow,
        Fault::SlowConsumer,
        Fault::TenantBurst,
        Fault::ProbeDrop,
        Fault::ProbeDelay,
    ];

    /// The scanner-path fault classes (active-probe failure modes, as
    /// opposed to per-visit crawl faults).
    pub const PROBE: [Fault; 2] = [Fault::ProbeDrop, Fault::ProbeDelay];

    /// The service-path fault classes (the campaign service's own
    /// failure modes, as opposed to per-visit crawl faults).
    pub const SERVICE: [Fault; 3] = [
        Fault::QueueOverflow,
        Fault::SlowConsumer,
        Fault::TenantBurst,
    ];

    /// Stable label (part of the RNG key — never reword).
    pub fn label(self) -> &'static str {
        match self {
            Fault::DnsFlap => "dns-flap",
            Fault::ConnectionReset => "conn-reset",
            Fault::TruncatedCapture => "truncated-capture",
            Fault::StoreAppendFailure => "store-append",
            Fault::WorkerPanic => "worker-panic",
            Fault::ProcessKill => "process-kill",
            Fault::QueueOverflow => "queue-overflow",
            Fault::SlowConsumer => "slow-consumer",
            Fault::TenantBurst => "tenant-burst",
            Fault::ProbeDrop => "probe-drop",
            Fault::ProbeDelay => "probe-delay",
        }
    }

    fn index(self) -> usize {
        match self {
            Fault::DnsFlap => 0,
            Fault::ConnectionReset => 1,
            Fault::TruncatedCapture => 2,
            Fault::StoreAppendFailure => 3,
            Fault::WorkerPanic => 4,
            Fault::ProcessKill => 5,
            Fault::QueueOverflow => 6,
            Fault::SlowConsumer => 7,
            Fault::TenantBurst => 8,
            Fault::ProbeDrop => 9,
            Fault::ProbeDelay => 10,
        }
    }
}

/// A seeded, site-identity-keyed fault injection plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Independent Bernoulli rate per fault class.
    rates: [f64; 11],
    /// Deterministic override: inject the fault on the first N
    /// attempts of *every* site, regardless of rate. Lets tests pin
    /// down exact retry/recrawl trajectories.
    first_attempts: [u32; 11],
}

impl FaultPlan {
    /// A plan that injects nothing (the paper's crawls).
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [0.0; 11],
            first_attempts: [0; 11],
        }
    }

    /// Set one fault's injection probability per (site, attempt).
    pub fn with_rate(mut self, fault: Fault, rate: f64) -> FaultPlan {
        debug_assert!((0.0..=1.0).contains(&rate));
        self.rates[fault.index()] = rate;
        self
    }

    /// Deterministically inject `fault` on every site's first `n`
    /// attempts (attempt numbers `0..n`).
    pub fn with_first_attempts(mut self, fault: Fault, n: u32) -> FaultPlan {
        self.first_attempts[fault.index()] = n;
        self
    }

    /// The configured rate of one fault class.
    pub fn rate(&self, fault: Fault) -> f64 {
        self.rates[fault.index()]
    }

    /// True when the plan can never inject anything.
    pub fn is_clean(&self) -> bool {
        self.rates.iter().all(|r| *r == 0.0) && self.first_attempts.iter().all(|n| *n == 0)
    }

    /// Does this plan inject `fault` into `domain`'s visit number
    /// `attempt`? Pure and order-independent: the decision hashes the
    /// identity triple, so retries redraw and worker counts don't
    /// matter.
    pub fn injects(&self, fault: Fault, domain: &str, attempt: u32) -> bool {
        if attempt < self.first_attempts[fault.index()] {
            return true;
        }
        let rate = self.rates[fault.index()];
        if rate <= 0.0 {
            return false;
        }
        let label = format!("fault/{}/{}/{}", fault.label(), domain, attempt);
        rng::coin(self.seed, &label, rate)
    }

    /// All of one visit's fault decisions, drawn up front.
    pub fn visit_faults(&self, domain: &str, attempt: u32) -> VisitFaults {
        VisitFaults {
            dns_flap: self.injects(Fault::DnsFlap, domain, attempt),
            connection_reset: self.injects(Fault::ConnectionReset, domain, attempt),
            truncate_capture: self.injects(Fault::TruncatedCapture, domain, attempt),
            panic: self.injects(Fault::WorkerPanic, domain, attempt),
        }
    }
}

/// The browser-visible slice of one visit's fault decisions
/// ([`Fault::StoreAppendFailure`] is the supervisor's concern and is
/// not included).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VisitFaults {
    /// Inject a resolver flap: the DNS query times out.
    pub dns_flap: bool,
    /// Inject a mid-flight reset of the landing connection.
    pub connection_reset: bool,
    /// Drop the tail of the capture after the visit completes.
    pub truncate_capture: bool,
    /// Panic mid-visit (throwing a [`SalvagedVisit`]).
    pub panic: bool,
}

impl VisitFaults {
    /// No faults this visit.
    pub const NONE: VisitFaults = VisitFaults {
        dns_flap: false,
        connection_reset: false,
        truncate_capture: false,
        panic: false,
    };

    /// True if any fault fires.
    pub fn any(&self) -> bool {
        *self != VisitFaults::NONE
    }
}

/// Panic payload thrown by a crashing visit: the capture prefix
/// gathered before the crash, for the supervisor to salvage. Thrown
/// with `std::panic::panic_any` and recovered by downcasting the
/// `catch_unwind` payload; a panic from anywhere else (a real bug)
/// simply won't downcast, and the supervisor quarantines the site with
/// an empty capture instead.
#[derive(Debug)]
pub struct SalvagedVisit {
    /// The crashing site's domain.
    pub domain: String,
    /// Events logged before the crash (a parseable capture prefix).
    pub events: Vec<NetLogEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_injects_nothing() {
        let plan = FaultPlan::none(7);
        assert!(plan.is_clean());
        for fault in Fault::ALL {
            for attempt in 0..4 {
                assert!(!plan.injects(fault, "site.example", attempt));
            }
        }
        assert!(!plan.visit_faults("site.example", 0).any());
    }

    #[test]
    fn decisions_are_deterministic_and_identity_keyed() {
        let plan = FaultPlan::none(42).with_rate(Fault::ConnectionReset, 0.5);
        let a = plan.injects(Fault::ConnectionReset, "a.example", 0);
        assert_eq!(a, plan.injects(Fault::ConnectionReset, "a.example", 0));
        // Over many domains the rate must be visible and domains must
        // disagree with each other somewhere.
        let hits = (0..1000)
            .filter(|i| plan.injects(Fault::ConnectionReset, &format!("d{i}.example"), 0))
            .count();
        assert!((350..650).contains(&hits), "{hits}");
    }

    #[test]
    fn retries_redraw_their_fate() {
        let plan = FaultPlan::none(3).with_rate(Fault::DnsFlap, 0.5);
        // Some domain must flap on attempt 0 and recover on attempt 1.
        let recovered = (0..200).any(|i| {
            let d = format!("flap{i}.example");
            plan.injects(Fault::DnsFlap, &d, 0) && !plan.injects(Fault::DnsFlap, &d, 1)
        });
        assert!(recovered);
    }

    #[test]
    fn first_attempts_override_pins_trajectories() {
        let plan = FaultPlan::none(1).with_first_attempts(Fault::ConnectionReset, 2);
        assert!(!plan.is_clean());
        for domain in ["x.example", "y.example"] {
            assert!(plan.injects(Fault::ConnectionReset, domain, 0));
            assert!(plan.injects(Fault::ConnectionReset, domain, 1));
            assert!(!plan.injects(Fault::ConnectionReset, domain, 2));
        }
    }

    #[test]
    fn process_kill_is_keyed_like_every_other_fault() {
        // The crash injector must be a first-class plan member:
        // deterministic per (seed, domain, attempt), pinnable via
        // first_attempts, and absent from clean plans.
        let plan = FaultPlan::none(11).with_rate(Fault::ProcessKill, 0.5);
        let d = "victim.example";
        assert_eq!(
            plan.injects(Fault::ProcessKill, d, 0),
            plan.injects(Fault::ProcessKill, d, 0)
        );
        let hits = (0..1000)
            .filter(|i| plan.injects(Fault::ProcessKill, &format!("k{i}.example"), 0))
            .count();
        assert!((350..650).contains(&hits), "{hits}");
        let pinned = FaultPlan::none(11).with_first_attempts(Fault::ProcessKill, 1);
        assert!(pinned.injects(Fault::ProcessKill, d, 0));
        assert!(!pinned.injects(Fault::ProcessKill, d, 1));
        assert!(!FaultPlan::none(11).injects(Fault::ProcessKill, d, 0));
    }

    #[test]
    fn service_faults_are_keyed_like_every_other_fault() {
        // The service-path injectors (queue overflow, slow consumer,
        // tenant burst) must obey the same contract as crawl faults:
        // deterministic per (seed, identity, attempt), pinnable via
        // first_attempts, and absent from clean plans — that is what
        // makes service runs worker-count-invariant.
        for fault in Fault::SERVICE {
            let plan = FaultPlan::none(17).with_rate(fault, 0.5);
            assert_eq!(
                plan.injects(fault, "tenant-a", 0),
                plan.injects(fault, "tenant-a", 0)
            );
            let hits = (0..1000)
                .filter(|i| plan.injects(fault, &format!("t{i}"), 0))
                .count();
            assert!((350..650).contains(&hits), "{}: {hits}", fault.label());
            let pinned = FaultPlan::none(17).with_first_attempts(fault, 1);
            assert!(pinned.injects(fault, "tenant-a", 0));
            assert!(!pinned.injects(fault, "tenant-a", 1));
            assert!(!FaultPlan::none(17).injects(fault, "tenant-a", 0));
        }
    }

    #[test]
    fn probe_faults_are_keyed_like_every_other_fault() {
        // The scanner-path injectors (probe drop, probe delay) obey
        // the same contract as crawl faults: deterministic per (seed,
        // target identity, attempt), pinnable via first_attempts, and
        // absent from clean plans — which is what makes scan reports
        // worker-count-invariant.
        for fault in Fault::PROBE {
            let plan = FaultPlan::none(23).with_rate(fault, 0.5);
            assert_eq!(
                plan.injects(fault, "tcp/127.0.0.1:3389", 0),
                plan.injects(fault, "tcp/127.0.0.1:3389", 0)
            );
            let hits = (0..1000)
                .filter(|p| plan.injects(fault, &format!("tcp/127.0.0.1:{p}"), 0))
                .count();
            assert!((350..650).contains(&hits), "{}: {hits}", fault.label());
            let pinned = FaultPlan::none(23).with_first_attempts(fault, 1);
            assert!(pinned.injects(fault, "udp/192.168.0.1:80", 0));
            assert!(!pinned.injects(fault, "udp/192.168.0.1:80", 1));
            assert!(!FaultPlan::none(23).injects(fault, "udp/192.168.0.1:80", 0));
        }
    }

    #[test]
    fn all_faults_have_distinct_labels_and_indices() {
        let labels: std::collections::BTreeSet<&str> =
            Fault::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(labels.len(), Fault::ALL.len());
        for (i, fault) in Fault::ALL.iter().enumerate() {
            assert_eq!(fault.index(), i, "{}", fault.label());
        }
    }

    #[test]
    fn faults_draw_independently() {
        let plan = FaultPlan::none(9)
            .with_rate(Fault::WorkerPanic, 1.0)
            .with_rate(Fault::DnsFlap, 0.0);
        let faults = plan.visit_faults("solo.example", 0);
        assert!(faults.panic);
        assert!(!faults.dns_flap);
        assert!(faults.any());
    }
}
