//! Property tests for the shared retry policy: the backoff schedule
//! is a pure function of `(seed, key, attempt)` — the crawl supervisor
//! and the active scanner hold *different instances* of the same
//! [`RetryPolicy`] values, and they must draw byte-identical schedules,
//! or retry timing would depend on which subsystem asks.

use kt_faults::RetryPolicy;
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = RetryPolicy> {
    (1u32..6, 1u64..20_000, 0u64..120_000, any::<bool>()).prop_map(
        |(max_attempts, base, extra, recrawl)| RetryPolicy {
            max_attempts,
            base_backoff_ms: base,
            max_backoff_ms: base + extra,
            recrawl,
        },
    )
}

proptest! {
    /// Two independently-constructed policies with the same parameters
    /// (one "crawl-side", one "scan-side") produce identical backoff
    /// schedules for identical (seed, key, attempt) — the satellite
    /// guarantee that deduplicating the backoff math into kt-faults
    /// actually buys determinism across consumers.
    #[test]
    fn backoff_schedules_are_identical_across_policy_instances(
        policy in arb_policy(),
        seed in any::<u64>(),
        key in "[a-z0-9./:-]{1,40}",
        attempt in 1u32..12,
    ) {
        let crawl_side = policy.clone();
        let scan_side = RetryPolicy {
            max_attempts: policy.max_attempts,
            base_backoff_ms: policy.base_backoff_ms,
            max_backoff_ms: policy.max_backoff_ms,
            recrawl: policy.recrawl,
        };
        prop_assert_eq!(
            crawl_side.backoff_ms(seed, &key, attempt),
            scan_side.backoff_ms(seed, &key, attempt)
        );
        // And the function is stable across repeated draws.
        prop_assert_eq!(
            crawl_side.backoff_ms(seed, &key, attempt),
            crawl_side.backoff_ms(seed, &key, attempt)
        );
    }

    /// The schedule is bounded: never below the exponential floor for
    /// the attempt, never past the clamp plus the jitter span.
    #[test]
    fn backoff_is_bounded_by_clamp_plus_jitter(
        policy in arb_policy(),
        seed in any::<u64>(),
        key in "[a-z0-9./:-]{1,40}",
        attempt in 1u32..12,
    ) {
        let b = policy.backoff_ms(seed, &key, attempt);
        let exp = policy
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
            .min(policy.max_backoff_ms);
        let jitter_span = (policy.base_backoff_ms / 2).max(1);
        prop_assert!(b >= exp, "{b} < floor {exp}");
        prop_assert!(b < exp + jitter_span, "{b} >= ceiling {}", exp + jitter_span);
    }

    /// Different keys de-synchronise: over a spread of keys at a fixed
    /// attempt, at least two distinct waits appear whenever the jitter
    /// span is non-trivial (no thundering herd).
    #[test]
    fn jitter_spreads_keys(policy in arb_policy(), seed in any::<u64>()) {
        if policy.base_backoff_ms >= 8 {
            let distinct: std::collections::BTreeSet<u64> = (0..64)
                .map(|i| policy.backoff_ms(seed, &format!("key{i}"), 1))
                .collect();
            prop_assert!(distinct.len() > 1, "all 64 keys drew the same wait");
        }
    }
}
