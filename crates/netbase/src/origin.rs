//! Web origins and the Same-Origin-Policy decision matrix.
//!
//! §4.2 of the paper leans on a browser-security asymmetry that this
//! module encodes precisely:
//!
//! * cross-origin **HTTP(S)** fetches are subject to the Same-Origin
//!   Policy — without CORS approval the page can *send* the request
//!   but receives only an **opaque** response (it still learns timing,
//!   which BIG-IP's bot defence exploits as a side channel);
//! * **WebSocket** connections are *not* subject to SOP — a page may
//!   open a socket to any origin and read data, which is how the
//!   ThreatMetrix script harvests localhost scan results.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::host::Host;
use crate::scheme::Scheme;
use crate::url::Url;

/// A web origin: the (scheme, host, port) triple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Origin {
    scheme: Scheme,
    host: Host,
    port: u16,
}

impl Origin {
    /// Construct an origin directly.
    pub fn new(scheme: Scheme, host: Host, port: u16) -> Origin {
        Origin { scheme, host, port }
    }

    /// The origin of a URL. WebSocket URLs take the origin of their
    /// handshake scheme — a page served from `https://a` opening
    /// `wss://a` is same-origin for our accounting purposes.
    pub fn of_url(url: &Url) -> Origin {
        Origin {
            scheme: url.scheme().handshake_scheme(),
            host: url.host().clone(),
            port: url.port(),
        }
    }

    /// The scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The host.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// The port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Exact origin equality, the SOP comparison.
    pub fn same_origin(&self, other: &Origin) -> bool {
        self == other
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}:{}", self.scheme, self.host, self.port)
    }
}

/// What a page is allowed to learn from a request it initiated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SopVerdict {
    /// Same origin, or a SOP-exempt channel: the response body and
    /// headers are fully readable.
    Readable,
    /// Cross-origin without CORS: the request is sent, the response is
    /// opaque, but connection success/failure timing still leaks.
    OpaqueTimingOnly,
}

impl SopVerdict {
    /// Decide what a document at `page_origin` learns from a request
    /// to `target`.
    ///
    /// `cors_approved` models the server opting in via CORS (the
    /// simulated local services in this study never do, matching the
    /// paper's observations).
    pub fn decide(page_origin: &Origin, target: &Url, cors_approved: bool) -> SopVerdict {
        if target.scheme().is_websocket() {
            // WebSockets are exempt from SOP: the server may inspect
            // the Origin header, but the browser does not block reads.
            return SopVerdict::Readable;
        }
        let target_origin = Origin::of_url(target);
        if page_origin.same_origin(&target_origin) || cors_approved {
            SopVerdict::Readable
        } else {
            SopVerdict::OpaqueTimingOnly
        }
    }

    /// True if the initiating page can read response data.
    pub fn can_read_body(self) -> bool {
        self == SopVerdict::Readable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin(s: &str) -> Origin {
        Origin::of_url(&Url::parse(s).unwrap())
    }

    #[test]
    fn origin_includes_scheme_host_port() {
        assert_eq!(origin("http://a.com/x"), origin("http://a.com/y"));
        assert_ne!(origin("http://a.com/"), origin("https://a.com/"));
        assert_ne!(origin("http://a.com/"), origin("http://b.com/"));
        assert_ne!(origin("http://a.com/"), origin("http://a.com:8080/"));
        // Default port equals explicit default port.
        assert_eq!(origin("http://a.com/"), origin("http://a.com:80/"));
    }

    #[test]
    fn websocket_origin_uses_handshake_scheme() {
        assert_eq!(origin("ws://a.com/"), origin("http://a.com/"));
        assert_eq!(origin("wss://a.com/"), origin("https://a.com/"));
    }

    #[test]
    fn websockets_bypass_sop() {
        let page = origin("https://ebay.example/");
        let target = Url::parse("wss://127.0.0.1:3389/").unwrap();
        assert_eq!(
            SopVerdict::decide(&page, &target, false),
            SopVerdict::Readable
        );
    }

    #[test]
    fn cross_origin_http_is_opaque_without_cors() {
        let page = origin("https://gov.example/");
        let target = Url::parse("http://localhost:4444/").unwrap();
        let v = SopVerdict::decide(&page, &target, false);
        assert_eq!(v, SopVerdict::OpaqueTimingOnly);
        assert!(!v.can_read_body());
    }

    #[test]
    fn cors_approval_unlocks_reads() {
        let page = origin("https://gov.example/");
        let target = Url::parse("http://localhost:4444/").unwrap();
        assert_eq!(
            SopVerdict::decide(&page, &target, true),
            SopVerdict::Readable
        );
    }

    #[test]
    fn same_origin_http_is_readable() {
        let page = origin("http://site.example/");
        let target = Url::parse("http://site.example/api").unwrap();
        assert_eq!(
            SopVerdict::decide(&page, &target, false),
            SopVerdict::Readable
        );
    }

    #[test]
    fn display_shape() {
        assert_eq!(origin("http://a.com/").to_string(), "http://a.com:80");
        assert_eq!(
            origin("wss://127.0.0.1:3389/").to_string(),
            "https://127.0.0.1:3389"
        );
    }
}
