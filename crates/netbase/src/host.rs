//! URL hosts: domain names and IP literals.

use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::ParseError;

/// A validated DNS name, stored lower-cased.
///
/// Validation follows the pragmatic subset of RFC 1035 that browsers
/// accept: 1–253 bytes total, labels of 1–63 bytes drawn from
/// letters/digits/hyphen/underscore, labels neither starting nor ending
/// with a hyphen. (Underscores appear in real hostnames such as
/// service-discovery records, so we accept them like Chrome does.)
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DomainName(String);

impl DomainName {
    /// Parse and validate a domain name. The stored form is lower-case.
    pub fn parse(s: &str) -> Result<DomainName, ParseError> {
        if s.is_empty() {
            return Err(ParseError::Empty);
        }
        // A trailing dot denotes the DNS root and is stripped.
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() || s.len() > 253 {
            return Err(ParseError::InvalidHost(s.to_string()));
        }
        let lowered = s.to_ascii_lowercase();
        for label in lowered.split('.') {
            if label.is_empty() || label.len() > 63 {
                return Err(ParseError::InvalidLabel(label.to_string()));
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(ParseError::InvalidLabel(label.to_string()));
            }
            if !label
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
            {
                return Err(ParseError::InvalidLabel(label.to_string()));
            }
        }
        Ok(DomainName(lowered))
    }

    /// The normalised (lower-case, no trailing dot) name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Individual labels, left to right.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }

    /// True for `localhost` and any `*.localhost` name, which browsers
    /// resolve to loopback without consulting DNS.
    pub fn is_localhost(&self) -> bool {
        self.0 == "localhost" || self.0.ends_with(".localhost")
    }

    /// True for any name under the RFC 6762 `.local` mDNS zone —
    /// the obfuscated hostnames WebRTC ICE candidates carry instead of
    /// raw private addresses. These resolve only on the local link.
    pub fn is_mdns_local(&self) -> bool {
        self.0 == "local" || self.0.ends_with(".local")
    }

    /// The registrable suffix heuristic used throughout the analysis:
    /// the last two labels (`ebay.com` for `regstat.ebay.com`). A full
    /// public-suffix list is out of scope; the synthetic population
    /// only uses two-label registrable domains.
    pub fn registrable(&self) -> &str {
        let mut idx = self.0.len();
        let mut dots = 0;
        for (i, b) in self.0.bytes().enumerate().rev() {
            if b == b'.' {
                dots += 1;
                if dots == 2 {
                    idx = i + 1;
                    break;
                }
            }
        }
        if dots < 2 {
            &self.0
        } else {
            &self.0[idx..]
        }
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for DomainName {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

/// The host component of a URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Host {
    /// A DNS name.
    Domain(DomainName),
    /// An IPv4 literal such as `10.0.0.200`.
    Ipv4(Ipv4Addr),
    /// An IPv6 literal, written `[...]` in URLs.
    Ipv6(Ipv6Addr),
}

impl Host {
    /// Parse a URL host token. A leading `[` selects IPv6-literal
    /// parsing; a well-formed dotted quad parses as IPv4; anything else
    /// is validated as a domain name.
    pub fn parse(s: &str) -> Result<Host, ParseError> {
        if s.is_empty() {
            return Err(ParseError::Empty);
        }
        if let Some(rest) = s.strip_prefix('[') {
            let inner = rest.strip_suffix(']').ok_or(ParseError::UnterminatedIpv6)?;
            let addr: Ipv6Addr = inner
                .parse()
                .map_err(|_| ParseError::InvalidIpLiteral(inner.to_string()))?;
            return Ok(Host::Ipv6(addr));
        }
        // A string that looks like a dotted quad must parse as IPv4:
        // treating `1.2.3.999` as a domain would silently misclassify.
        if s.bytes().all(|b| b.is_ascii_digit() || b == b'.') && s.contains('.') {
            let addr: Ipv4Addr = s
                .parse()
                .map_err(|_| ParseError::InvalidIpLiteral(s.to_string()))?;
            return Ok(Host::Ipv4(addr));
        }
        Ok(Host::Domain(DomainName::parse(s)?))
    }

    /// The IP address if this host is a literal.
    pub fn ip(&self) -> Option<IpAddr> {
        match self {
            Host::Ipv4(a) => Some(IpAddr::V4(*a)),
            Host::Ipv6(a) => Some(IpAddr::V6(*a)),
            Host::Domain(_) => None,
        }
    }

    /// The domain name if this host is one.
    pub fn domain(&self) -> Option<&DomainName> {
        match self {
            Host::Domain(d) => Some(d),
            _ => None,
        }
    }

    /// Convenience constructor for tests and generators.
    pub fn domain_unchecked(s: &str) -> Host {
        Host::Domain(DomainName::parse(s).expect("valid domain"))
    }
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Host::Domain(d) => write!(f, "{d}"),
            Host::Ipv4(a) => write!(f, "{a}"),
            Host::Ipv6(a) => write!(f, "[{a}]"),
        }
    }
}

impl FromStr for Host {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Host::parse(s)
    }
}

/// A borrowed, validated DNS name: the input slice with any trailing
/// root dot stripped, in its *original* case.
///
/// Validation is byte-identical to [`DomainName::parse`] — same
/// accepted set, same error values (including the lower-cased label in
/// `InvalidLabel`) — but nothing is copied on success. Case-dependent
/// predicates compare case-insensitively instead of lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainView<'a>(&'a str);

impl<'a> DomainView<'a> {
    /// Validate a domain name without copying it.
    pub fn parse(s: &'a str) -> Result<DomainView<'a>, ParseError> {
        if s.is_empty() {
            return Err(ParseError::Empty);
        }
        // A trailing dot denotes the DNS root and is stripped.
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() || s.len() > 253 {
            return Err(ParseError::InvalidHost(s.to_string()));
        }
        // Length, hyphen placement and the accepted byte set are all
        // case-insensitive, so validating the original bytes accepts
        // exactly what DomainName::parse accepts after lowering. Only
        // the error value needs the lowered form.
        for label in s.split('.') {
            if label.is_empty()
                || label.len() > 63
                || label.starts_with('-')
                || label.ends_with('-')
                || !label
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
            {
                return Err(ParseError::InvalidLabel(label.to_ascii_lowercase()));
            }
        }
        Ok(DomainView(s))
    }

    /// The validated name in its original case, trailing dot stripped.
    pub fn as_str(&self) -> &'a str {
        self.0
    }

    /// True for `localhost` and any `*.localhost` name, compared
    /// case-insensitively (the owned form lowers at parse time).
    pub fn is_localhost(&self) -> bool {
        const SUFFIX: &str = ".localhost";
        self.0.eq_ignore_ascii_case("localhost")
            || (self.0.len() > SUFFIX.len()
                && self.0[self.0.len() - SUFFIX.len()..].eq_ignore_ascii_case(SUFFIX))
    }

    /// True for any name under the RFC 6762 `.local` mDNS zone,
    /// compared case-insensitively without copying — the borrowed
    /// counterpart of [`DomainName::is_mdns_local`].
    pub fn is_mdns_local(&self) -> bool {
        const SUFFIX: &str = ".local";
        self.0.eq_ignore_ascii_case("local")
            || (self.0.len() > SUFFIX.len()
                && self.0[self.0.len() - SUFFIX.len()..].eq_ignore_ascii_case(SUFFIX))
    }

    /// Convert to the owned, lower-cased form (allocates).
    pub fn to_owned(self) -> DomainName {
        DomainName::parse(self.0).expect("DomainView is pre-validated")
    }
}

/// Borrowed counterpart of [`Host`]: IP literals are parsed to their
/// address value (they are `Copy` anyway), domain names stay slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostView<'a> {
    /// A DNS name, borrowed and validated.
    Domain(DomainView<'a>),
    /// An IPv4 literal such as `10.0.0.200`.
    Ipv4(Ipv4Addr),
    /// An IPv6 literal, written `[...]` in URLs.
    Ipv6(Ipv6Addr),
}

impl<'a> HostView<'a> {
    /// Parse a URL host token without copying it. Accepts and rejects
    /// exactly what [`Host::parse`] does, with identical error values.
    pub fn parse(s: &'a str) -> Result<HostView<'a>, ParseError> {
        if s.is_empty() {
            return Err(ParseError::Empty);
        }
        if let Some(rest) = s.strip_prefix('[') {
            let inner = rest.strip_suffix(']').ok_or(ParseError::UnterminatedIpv6)?;
            let addr: Ipv6Addr = inner
                .parse()
                .map_err(|_| ParseError::InvalidIpLiteral(inner.to_string()))?;
            return Ok(HostView::Ipv6(addr));
        }
        // A string that looks like a dotted quad must parse as IPv4:
        // treating `1.2.3.999` as a domain would silently misclassify.
        if s.bytes().all(|b| b.is_ascii_digit() || b == b'.') && s.contains('.') {
            let addr: Ipv4Addr = s
                .parse()
                .map_err(|_| ParseError::InvalidIpLiteral(s.to_string()))?;
            return Ok(HostView::Ipv4(addr));
        }
        Ok(HostView::Domain(DomainView::parse(s)?))
    }

    /// The IP address if this host is a literal.
    pub fn ip(&self) -> Option<IpAddr> {
        match self {
            HostView::Ipv4(a) => Some(IpAddr::V4(*a)),
            HostView::Ipv6(a) => Some(IpAddr::V6(*a)),
            HostView::Domain(_) => None,
        }
    }

    /// Convert to the owned form (allocates for domain names).
    pub fn to_owned(self) -> Host {
        match self {
            HostView::Domain(d) => Host::Domain(d.to_owned()),
            HostView::Ipv4(a) => Host::Ipv4(a),
            HostView::Ipv6(a) => Host::Ipv6(a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_normalises_case_and_root_dot() {
        let d = DomainName::parse("EBay.COM.").unwrap();
        assert_eq!(d.as_str(), "ebay.com");
    }

    #[test]
    fn domain_rejects_bad_labels() {
        assert!(DomainName::parse("").is_err());
        assert!(DomainName::parse("a..b").is_err());
        assert!(DomainName::parse("-foo.com").is_err());
        assert!(DomainName::parse("foo-.com").is_err());
        assert!(DomainName::parse("sp ace.com").is_err());
        let long_label = "a".repeat(64);
        assert!(DomainName::parse(&format!("{long_label}.com")).is_err());
        let long_name = format!("{}.com", "a.".repeat(130));
        assert!(DomainName::parse(&long_name).is_err());
    }

    #[test]
    fn domain_accepts_underscores_and_digits() {
        assert!(DomainName::parse("_dmarc.example.com").is_ok());
        assert!(DomainName::parse("1-movies.ir").is_ok());
        assert!(DomainName::parse("100-25-26-254.cprapid.com").is_ok());
    }

    #[test]
    fn localhost_detection() {
        assert!(DomainName::parse("localhost").unwrap().is_localhost());
        assert!(DomainName::parse("LOCALHOST").unwrap().is_localhost());
        assert!(DomainName::parse("api.localhost").unwrap().is_localhost());
        assert!(!DomainName::parse("localhost.com").unwrap().is_localhost());
        assert!(!DomainName::parse("notlocalhost").unwrap().is_localhost());
    }

    #[test]
    fn mdns_local_detection() {
        assert!(DomainName::parse("printer.local").unwrap().is_mdns_local());
        assert!(DomainName::parse("f0ae4f9a-2d4c.LOCAL")
            .unwrap()
            .is_mdns_local());
        assert!(!DomainName::parse("local.example.com")
            .unwrap()
            .is_mdns_local());
        assert!(!DomainName::parse("notlocal").unwrap().is_mdns_local());
        assert!(!DomainName::parse("mylocal.com").unwrap().is_mdns_local());
    }

    #[test]
    fn domain_view_mdns_local_matches_owned_without_allocating() {
        for s in [
            "printer.local",
            "Printer.LOCAL",
            "f0ae4f9a-2d4c-4a91.local.",
            "local.example.com",
            "notlocal",
            "mylocal.com",
            "localhost",
        ] {
            let owned = DomainName::parse(s).unwrap();
            let view = DomainView::parse(s).unwrap();
            assert_eq!(view.is_mdns_local(), owned.is_mdns_local(), "{s:?}");
        }
    }

    #[test]
    fn registrable_suffix() {
        assert_eq!(
            DomainName::parse("regstat.betfair.com")
                .unwrap()
                .registrable(),
            "betfair.com"
        );
        assert_eq!(
            DomainName::parse("ebay.com").unwrap().registrable(),
            "ebay.com"
        );
        assert_eq!(
            DomainName::parse("localhost").unwrap().registrable(),
            "localhost"
        );
        assert_eq!(
            DomainName::parse("a.b.c.d.example.org")
                .unwrap()
                .registrable(),
            "example.org"
        );
    }

    #[test]
    fn host_parses_each_shape() {
        assert_eq!(
            Host::parse("127.0.0.1").unwrap(),
            Host::Ipv4(Ipv4Addr::new(127, 0, 0, 1))
        );
        assert_eq!(
            Host::parse("[::1]").unwrap(),
            Host::Ipv6(Ipv6Addr::LOCALHOST)
        );
        assert!(matches!(
            Host::parse("example.com").unwrap(),
            Host::Domain(_)
        ));
    }

    #[test]
    fn host_rejects_malformed_literals() {
        assert!(Host::parse("[::1").is_err());
        assert!(Host::parse("1.2.3.4.5").is_err());
        assert!(Host::parse("1.2.3.999").is_err());
        assert!(Host::parse("").is_err());
    }

    #[test]
    fn host_display_round_trips() {
        for s in ["example.com", "10.0.0.200", "[::1]", "[fe80::1]"] {
            let h = Host::parse(s).unwrap();
            assert_eq!(Host::parse(&h.to_string()).unwrap(), h);
        }
    }

    #[test]
    fn host_view_agrees_with_owned_on_fixed_corpus() {
        let corpus = [
            "example.com",
            "EBay.COM.",
            "LOCALHOST",
            "api.localhost",
            "localhost.com",
            "f0ae4f9a-2d4c-4a91.local",
            "Printer.LOCAL",
            "localhost.local",
            "notlocal",
            "_dmarc.example.com",
            "127.0.0.1",
            "1.2.3.999",
            "1.2.3.4.5",
            "[::1]",
            "[::1",
            "[zzz]",
            "-foo.com",
            "foo-.com",
            "a..b",
            "sp ace.com",
            "",
            ".",
        ];
        for s in corpus {
            match (Host::parse(s), HostView::parse(s)) {
                (Ok(owned), Ok(view)) => {
                    assert_eq!(view.to_owned(), owned, "value for {s:?}");
                    assert_eq!(view.ip(), owned.ip(), "ip for {s:?}");
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "error for {s:?}"),
                (a, b) => panic!("disagreement on {s:?}: owned={a:?} view={b:?}"),
            }
        }
    }

    #[test]
    fn domain_view_keeps_original_case_but_matches_owned_predicates() {
        let v = DomainView::parse("API.LocalHost.").unwrap();
        assert_eq!(v.as_str(), "API.LocalHost");
        assert!(v.is_localhost());
        assert_eq!(v.to_owned().as_str(), "api.localhost");
        assert!(!DomainView::parse("notlocalhost").unwrap().is_localhost());
        assert!(!DomainView::parse("localhost.com").unwrap().is_localhost());
    }
}
