//! A from-scratch URL parser for the subset of URLs a crawler sees.
//!
//! Grammar (a pragmatic slice of RFC 3986, matching what Chrome's
//! NetLog records for request URLs):
//!
//! ```text
//! url      = scheme "://" host [":" port] [path] ["?" query] ["#" fragment]
//! host     = domain | ipv4 | "[" ipv6 "]"
//! path     = "/" *pchar      (defaults to "/" when absent)
//! ```
//!
//! Userinfo (`user:pass@`) is intentionally rejected: Chrome strips it
//! before logging, and in a measurement context an embedded-credential
//! URL is more likely an obfuscation attempt worth surfacing as an
//! error than a destination to silently normalise.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::ParseError;
use crate::host::{Host, HostView};
use crate::ip::Locality;
use crate::scheme::Scheme;

/// A parsed absolute URL.
///
/// ```
/// use kt_netbase::{Url, Locality};
///
/// let url = Url::parse("wss://localhost:3389/").unwrap();
/// assert_eq!(url.port(), 3389);
/// assert!(url.scheme().is_websocket());
/// assert_eq!(url.locality(), Locality::Loopback);
/// assert!(url.is_local());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    scheme: Scheme,
    host: Host,
    /// Explicit port, if one appeared in the URL text.
    explicit_port: Option<u16>,
    /// Path, always beginning with `/`.
    path: String,
    /// Query string without the leading `?`, if present.
    query: Option<String>,
    /// Fragment without the leading `#`, if present.
    fragment: Option<String>,
}

impl Url {
    /// Parse an absolute URL.
    pub fn parse(input: &str) -> Result<Url, ParseError> {
        let input = input.trim();
        if input.is_empty() {
            return Err(ParseError::Empty);
        }
        let (scheme_str, rest) = input.split_once("://").ok_or(ParseError::MissingScheme)?;
        let scheme = Scheme::parse(scheme_str)?;

        // Split authority from path/query/fragment. An IPv6 literal may
        // contain ':' so we must honour the bracket first.
        let (authority, tail) = split_authority(rest)?;
        if authority.contains('@') {
            return Err(ParseError::InvalidHost(authority.to_string()));
        }

        let (host_str, port) = split_host_port(authority)?;
        let host = Host::parse(host_str)?;

        // Decompose the tail into path / query / fragment.
        let (before_frag, fragment) = match tail.split_once('#') {
            Some((b, f)) => (b, Some(f.to_string())),
            None => (tail, None),
        };
        let (path_str, query) = match before_frag.split_once('?') {
            Some((p, q)) => (p, Some(q.to_string())),
            None => (before_frag, None),
        };
        let path = if path_str.is_empty() {
            "/".to_string()
        } else {
            path_str.to_string()
        };

        Ok(Url {
            scheme,
            host,
            explicit_port: port,
            path,
            query,
            fragment,
        })
    }

    /// Build a URL from parts; `path` must begin with `/` or be empty.
    pub fn from_parts(scheme: Scheme, host: Host, port: Option<u16>, path: &str) -> Url {
        let path = if path.is_empty() {
            "/".to_string()
        } else {
            debug_assert!(path.starts_with('/'), "path must begin with '/': {path:?}");
            path.to_string()
        };
        // Pull a query out of the path if the caller embedded one.
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (path, None),
        };
        Url {
            scheme,
            host,
            explicit_port: port,
            path,
            query,
            fragment: None,
        }
    }

    /// The URL scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The parsed host.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// The effective port: the explicit one, else the scheme default.
    pub fn port(&self) -> u16 {
        self.explicit_port
            .unwrap_or_else(|| self.scheme.default_port())
    }

    /// The explicit port, if the URL text carried one.
    pub fn explicit_port(&self) -> Option<u16> {
        self.explicit_port
    }

    /// The path (always `/`-prefixed).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Query string without the `?`, if any.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// Fragment without the `#`, if any.
    pub fn fragment(&self) -> Option<&str> {
        self.fragment.as_deref()
    }

    /// Path plus query, as reported in the paper's tables
    /// (e.g. `/v1/init.json?api_port=*`).
    pub fn path_and_query(&self) -> String {
        match &self.query {
            Some(q) => format!("{}?{}", self.path, q),
            None => self.path.clone(),
        }
    }

    /// Locality of the destination host (syntactic: domains other than
    /// `localhost` are public at this layer).
    pub fn locality(&self) -> Locality {
        Locality::of_host(&self.host)
    }

    /// True if this URL targets localhost or a private (LAN) address.
    pub fn is_local(&self) -> bool {
        self.locality().is_local()
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme, self.host)?;
        if let Some(p) = self.explicit_port {
            write!(f, ":{p}")?;
        }
        f.write_str(&self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        if let Some(frag) = &self.fragment {
            write!(f, "#{frag}")?;
        }
        Ok(())
    }
}

impl FromStr for Url {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

/// A parsed absolute URL that borrows its input.
///
/// [`UrlView::parse`] accepts and rejects exactly what [`Url::parse`]
/// does (identical error values) but allocates nothing on success: the
/// path, query and fragment are slices of the input, and the host
/// keeps domain names borrowed. The analysis hot path classifies every
/// request URL but emits an observation for fewer than 1% of them, so
/// the owned conversion ([`UrlView::to_owned`]) is deferred until a
/// local destination is actually found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UrlView<'a> {
    scheme: Scheme,
    host: HostView<'a>,
    explicit_port: Option<u16>,
    /// Path slice; `"/"` when the input had none (`'static` coerces).
    path: &'a str,
    query: Option<&'a str>,
    fragment: Option<&'a str>,
}

impl<'a> UrlView<'a> {
    /// Parse an absolute URL without copying it.
    pub fn parse(input: &'a str) -> Result<UrlView<'a>, ParseError> {
        let input = input.trim();
        if input.is_empty() {
            return Err(ParseError::Empty);
        }
        let (scheme_str, rest) = input.split_once("://").ok_or(ParseError::MissingScheme)?;
        let scheme = Scheme::parse(scheme_str)?;

        let (authority, tail) = split_authority(rest)?;
        if authority.contains('@') {
            return Err(ParseError::InvalidHost(authority.to_string()));
        }

        let (host_str, port) = split_host_port(authority)?;
        let host = HostView::parse(host_str)?;

        let (before_frag, fragment) = match tail.split_once('#') {
            Some((b, f)) => (b, Some(f)),
            None => (tail, None),
        };
        let (path_str, query) = match before_frag.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (before_frag, None),
        };
        let path = if path_str.is_empty() { "/" } else { path_str };

        Ok(UrlView {
            scheme,
            host,
            explicit_port: port,
            path,
            query,
            fragment,
        })
    }

    /// The URL scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The parsed (borrowed) host.
    pub fn host(&self) -> &HostView<'a> {
        &self.host
    }

    /// The effective port: the explicit one, else the scheme default.
    pub fn port(&self) -> u16 {
        self.explicit_port
            .unwrap_or_else(|| self.scheme.default_port())
    }

    /// The explicit port, if the URL text carried one.
    pub fn explicit_port(&self) -> Option<u16> {
        self.explicit_port
    }

    /// The path (always `/`-prefixed).
    pub fn path(&self) -> &'a str {
        self.path
    }

    /// Query string without the `?`, if any.
    pub fn query(&self) -> Option<&'a str> {
        self.query
    }

    /// Fragment without the `#`, if any.
    pub fn fragment(&self) -> Option<&'a str> {
        self.fragment
    }

    /// Locality of the destination host (syntactic, like
    /// [`Url::locality`]).
    pub fn locality(&self) -> Locality {
        Locality::of_host_view(&self.host)
    }

    /// True if this URL targets localhost or a private (LAN) address.
    pub fn is_local(&self) -> bool {
        self.locality().is_local()
    }

    /// Convert to the owned [`Url`] (allocates; equal to what
    /// `Url::parse` would have produced on the same input).
    pub fn to_owned(self) -> Url {
        Url {
            scheme: self.scheme,
            host: self.host.to_owned(),
            explicit_port: self.explicit_port,
            path: self.path.to_string(),
            query: self.query.map(str::to_string),
            fragment: self.fragment.map(str::to_string),
        }
    }
}

/// Split `rest` (everything after `scheme://`) into the authority and
/// the remaining tail starting at `/`, `?` or `#`.
fn split_authority(rest: &str) -> Result<(&str, &str), ParseError> {
    if rest.is_empty() {
        return Err(ParseError::InvalidHost(String::new()));
    }
    let search_from = if rest.starts_with('[') {
        rest.find(']').ok_or(ParseError::UnterminatedIpv6)? + 1
    } else {
        0
    };
    let end = rest[search_from..]
        .find(['/', '?', '#'])
        .map(|i| i + search_from)
        .unwrap_or(rest.len());
    Ok((&rest[..end], &rest[end..]))
}

/// Split an authority into host text and optional port.
fn split_host_port(authority: &str) -> Result<(&str, Option<u16>), ParseError> {
    if authority.is_empty() {
        return Err(ParseError::Empty);
    }
    let colon_search_from = if authority.starts_with('[') {
        match authority.find(']') {
            Some(i) => i + 1,
            None => return Err(ParseError::UnterminatedIpv6),
        }
    } else {
        0
    };
    match authority[colon_search_from..].find(':') {
        Some(i) => {
            let i = i + colon_search_from;
            let (host, port_str) = (&authority[..i], &authority[i + 1..]);
            if port_str.is_empty() {
                // "host:" with no digits — treat as no port, as browsers do.
                return Ok((host, None));
            }
            let port: u16 = port_str
                .parse()
                .map_err(|_| ParseError::InvalidPort(port_str.to_string()))?;
            Ok((host, Some(port)))
        }
        None => Ok((authority, None)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn parses_simple_http_url() {
        let u = Url::parse("http://example.com/index.html").unwrap();
        assert_eq!(u.scheme(), Scheme::Http);
        assert_eq!(u.host().to_string(), "example.com");
        assert_eq!(u.port(), 80);
        assert_eq!(u.path(), "/index.html");
        assert_eq!(u.query(), None);
    }

    #[test]
    fn parses_paper_style_urls() {
        // URL shapes taken from the paper's tables.
        let u = Url::parse("wss://127.0.0.1:5939/").unwrap();
        assert_eq!(u.scheme(), Scheme::Wss);
        assert_eq!(u.port(), 5939);
        assert!(u.is_local());

        let u = Url::parse("http://localhost:12071/v1/init.json?api_port=3&query_id=7").unwrap();
        assert_eq!(u.path(), "/v1/init.json");
        assert_eq!(u.query(), Some("api_port=3&query_id=7"));
        assert_eq!(u.path_and_query(), "/v1/init.json?api_port=3&query_id=7");
        assert!(u.is_local());

        let u = Url::parse("http://10.193.31.212/system/files/2020-06/logo.png").unwrap();
        assert_eq!(u.host(), &Host::Ipv4(Ipv4Addr::new(10, 193, 31, 212)));
        assert!(u.is_local());

        let u = Url::parse("ws://localhost:6463/?v=1").unwrap();
        assert_eq!(u.path_and_query(), "/?v=1");
    }

    #[test]
    fn empty_path_defaults_to_root() {
        let u = Url::parse("https://example.com").unwrap();
        assert_eq!(u.path(), "/");
        let u = Url::parse("https://example.com?q=1").unwrap();
        assert_eq!(u.path(), "/");
        assert_eq!(u.query(), Some("q=1"));
    }

    #[test]
    fn explicit_default_port_is_preserved_in_text() {
        let u = Url::parse("http://example.com:80/").unwrap();
        assert_eq!(u.explicit_port(), Some(80));
        assert_eq!(u.to_string(), "http://example.com:80/");
        let v = Url::parse("http://example.com/").unwrap();
        assert_eq!(v.explicit_port(), None);
        assert_eq!(u.port(), v.port());
    }

    #[test]
    fn ipv6_literals() {
        let u = Url::parse("http://[::1]:8080/status").unwrap();
        assert_eq!(u.port(), 8080);
        assert!(u.is_local());
        assert_eq!(u.to_string(), "http://[::1]:8080/status");
        assert!(Url::parse("http://[::1/").is_err());
    }

    #[test]
    fn fragment_and_query_ordering() {
        let u = Url::parse("https://e.com/p?a=1#frag?not-query").unwrap();
        assert_eq!(u.path(), "/p");
        assert_eq!(u.query(), Some("a=1"));
        assert_eq!(u.fragment(), Some("frag?not-query"));
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(Url::parse("").is_err());
        assert!(Url::parse("example.com/no-scheme").is_err());
        assert!(Url::parse("ftp://example.com/").is_err());
        assert!(Url::parse("http://user:pw@example.com/").is_err());
        assert!(Url::parse("http:///missing-host").is_err());
        assert!(Url::parse("http://example.com:99999/").is_err());
        assert!(Url::parse("http://exa mple.com/").is_err());
    }

    #[test]
    fn trailing_colon_without_port_is_tolerated() {
        let u = Url::parse("http://example.com:/x").unwrap();
        assert_eq!(u.explicit_port(), None);
        assert_eq!(u.port(), 80);
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "http://example.com/",
            "https://example.com:8443/a/b?x=1&y=2",
            "ws://localhost:28337/",
            "wss://127.0.0.1:3389/",
            "http://192.168.0.208/wp-content/uploads/2017/05/a.jpg",
            "http://[fe80::1]:9000/x#y",
        ] {
            let u = Url::parse(s).unwrap();
            assert_eq!(u.to_string(), s, "round trip of {s}");
            assert_eq!(Url::parse(&u.to_string()).unwrap(), u);
        }
    }

    #[test]
    fn url_view_agrees_with_owned_on_fixed_corpus() {
        let corpus = [
            "http://example.com/index.html",
            "wss://127.0.0.1:5939/",
            "http://localhost:12071/v1/init.json?api_port=3&query_id=7",
            "ws://localhost:6463/?v=1",
            "http://f0ae4f9a-2d4c-4a91.local:9222/json",
            "HTTPS://ExAmple.COM:8443",
            "https://example.com?q=1",
            "http://[::1]:8080/status",
            "https://e.com/p?a=1#frag?not-query",
            "http://example.com:/x",
            "  http://example.com/padded  ",
            "",
            "example.com/no-scheme",
            "ftp://example.com/",
            "http://user:pw@example.com/",
            "http:///missing-host",
            "http://example.com:99999/",
            "http://exa mple.com/",
            "http://[::1/",
        ];
        for s in corpus {
            match (Url::parse(s), UrlView::parse(s)) {
                (Ok(owned), Ok(view)) => {
                    assert_eq!(view.to_owned(), owned, "value for {s:?}");
                    assert_eq!(view.scheme(), owned.scheme(), "scheme for {s:?}");
                    assert_eq!(view.port(), owned.port(), "port for {s:?}");
                    assert_eq!(view.path(), owned.path(), "path for {s:?}");
                    assert_eq!(view.query(), owned.query(), "query for {s:?}");
                    assert_eq!(view.fragment(), owned.fragment(), "fragment for {s:?}");
                    assert_eq!(view.locality(), owned.locality(), "locality for {s:?}");
                    assert_eq!(view.is_local(), owned.is_local(), "is_local for {s:?}");
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "error for {s:?}"),
                (a, b) => panic!("disagreement on {s:?}: owned={a:?} view={b:?}"),
            }
        }
    }

    #[test]
    fn url_view_parse_does_not_copy_components() {
        let text = "ws://API.localhost:6463/app?v=1#top";
        let v = UrlView::parse(text).unwrap();
        // The path/query/fragment point into the input buffer.
        assert_eq!(
            v.path().as_ptr(),
            text["ws://API.localhost:6463".len()..].as_ptr()
        );
        assert_eq!(v.query(), Some("v=1"));
        assert_eq!(v.fragment(), Some("top"));
        assert!(v.is_local());
        assert_eq!(v.port(), 6463);
    }

    #[test]
    fn from_parts_splits_embedded_query() {
        let u = Url::from_parts(
            Scheme::Http,
            Host::domain_unchecked("localhost"),
            Some(2080),
            "/version?_=123",
        );
        assert_eq!(u.path(), "/version");
        assert_eq!(u.query(), Some("_=123"));
        assert_eq!(u.port(), 2080);
    }
}
