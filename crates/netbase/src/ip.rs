//! IP address locality classification.
//!
//! The paper (§4) detects two kinds of local destinations:
//!
//! * **localhost** — the `localhost` domain and the loopback addresses
//!   `127.0.0.1`/the whole `127.0.0.0/8` block for IPv4 and `::1` for
//!   IPv6;
//! * **LAN** — the IANA-reserved private ranges of RFC 1918 for IPv4
//!   (`10.0.0.0/8`, `172.16.0.0/12`, `192.168.0.0/16`) and the unique
//!   local (`fc00::/7`) plus link-local (`fe80::/10`) ranges for IPv6.
//!
//! We additionally classify the adjacent special-purpose ranges
//! (link-local IPv4, CGNAT, benchmarking, multicast, …) so that the
//! detector can make a principled decision about every address it sees
//! rather than lumping everything unknown into "public".
//!
//! The classification here is written out explicitly against the IANA
//! special-purpose registries instead of delegating to `std`'s
//! `is_private`-style helpers, both because several of those helpers
//! are unstable and because the measurement semantics (what counts as
//! "LAN" for this study) must be pinned in one audited place.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use serde::{Deserialize, Serialize};

use crate::host::{Host, HostView};

/// Locality of a network destination, from the point of view of the
/// browser's host machine.
///
/// ```
/// use kt_netbase::Locality;
///
/// assert!(Locality::of_ipv4("10.193.31.212".parse().unwrap()).is_private());
/// assert!(Locality::of_ipv4("127.0.0.1".parse().unwrap()).is_loopback());
/// assert_eq!(Locality::of_ipv4("8.8.8.8".parse().unwrap()), Locality::Public);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Locality {
    /// Loopback: `127.0.0.0/8`, `::1`, or the `localhost` name.
    Loopback,
    /// RFC 1918 private IPv4 or IPv6 unique-local (`fc00::/7`).
    Private,
    /// Link-local: `169.254.0.0/16` or `fe80::/10`.
    LinkLocal,
    /// Carrier-grade NAT shared space `100.64.0.0/10` (RFC 6598).
    CarrierGradeNat,
    /// `0.0.0.0`/`::` and the rest of `0.0.0.0/8`.
    Unspecified,
    /// Multicast ranges (`224.0.0.0/4`, `ff00::/8`).
    Multicast,
    /// Broadcast `255.255.255.255`.
    Broadcast,
    /// Documentation / benchmarking / reserved special ranges.
    Reserved,
    /// Everything else: a globally routable destination.
    Public,
}

impl Locality {
    /// Classify an IPv4 address against the IANA special-purpose
    /// registry, in most-specific-first order.
    pub fn of_ipv4(addr: Ipv4Addr) -> Locality {
        let o = addr.octets();
        if o == [255, 255, 255, 255] {
            return Locality::Broadcast;
        }
        match o[0] {
            0 => Locality::Unspecified,
            127 => Locality::Loopback,
            10 => Locality::Private,
            172 if (16..=31).contains(&o[1]) => Locality::Private,
            192 if o[1] == 168 => Locality::Private,
            169 if o[1] == 254 => Locality::LinkLocal,
            100 if (64..=127).contains(&o[1]) => Locality::CarrierGradeNat,
            224..=239 => Locality::Multicast,
            240..=255 => Locality::Reserved,
            // Documentation (TEST-NET-1/2/3) and benchmarking ranges.
            192 if o[1] == 0 && o[2] == 2 => Locality::Reserved,
            198 if o[1] == 51 && o[2] == 100 => Locality::Reserved,
            203 if o[1] == 0 && o[2] == 113 => Locality::Reserved,
            198 if o[1] == 18 || o[1] == 19 => Locality::Reserved,
            _ => Locality::Public,
        }
    }

    /// Classify an IPv6 address. IPv4-mapped addresses are classified
    /// by their embedded IPv4 address, since that is what the socket
    /// would actually reach.
    pub fn of_ipv6(addr: Ipv6Addr) -> Locality {
        if let Some(v4) = to_ipv4_mapped(addr) {
            return Locality::of_ipv4(v4);
        }
        if addr == Ipv6Addr::UNSPECIFIED {
            return Locality::Unspecified;
        }
        if addr == Ipv6Addr::LOCALHOST {
            return Locality::Loopback;
        }
        let seg = addr.segments();
        // fc00::/7 — unique local addresses, the IPv6 analogue of RFC 1918.
        if seg[0] & 0xfe00 == 0xfc00 {
            return Locality::Private;
        }
        // fe80::/10 — link local.
        if seg[0] & 0xffc0 == 0xfe80 {
            return Locality::LinkLocal;
        }
        // ff00::/8 — multicast.
        if seg[0] & 0xff00 == 0xff00 {
            return Locality::Multicast;
        }
        // 2001:db8::/32 — documentation.
        if seg[0] == 0x2001 && seg[1] == 0x0db8 {
            return Locality::Reserved;
        }
        Locality::Public
    }

    /// Classify either address family.
    pub fn of_ip(addr: IpAddr) -> Locality {
        match addr {
            IpAddr::V4(v4) => Locality::of_ipv4(v4),
            IpAddr::V6(v6) => Locality::of_ipv6(v6),
        }
    }

    /// Classify a parsed URL host. Domain names are local only if they
    /// are `localhost` or a `*.localhost` subdomain (per the IETF
    /// let-localhost-be-localhost convention that Chrome follows) or an
    /// RFC 6762 `*.local` mDNS name, which only resolves on the local
    /// link — WebRTC ICE candidates use these to obfuscate private
    /// addresses. Every other name is treated as public at this
    /// syntactic layer — resolution happens elsewhere.
    pub fn of_host(host: &Host) -> Locality {
        match host {
            Host::Ipv4(a) => Locality::of_ipv4(*a),
            Host::Ipv6(a) => Locality::of_ipv6(*a),
            Host::Domain(d) => {
                if d.is_localhost() {
                    Locality::Loopback
                } else if d.is_mdns_local() {
                    Locality::Private
                } else {
                    Locality::Public
                }
            }
        }
    }

    /// Classify a borrowed URL host — same table as [`Locality::of_host`].
    pub fn of_host_view(host: &HostView<'_>) -> Locality {
        match host {
            HostView::Ipv4(a) => Locality::of_ipv4(*a),
            HostView::Ipv6(a) => Locality::of_ipv6(*a),
            HostView::Domain(d) => {
                if d.is_localhost() {
                    Locality::Loopback
                } else if d.is_mdns_local() {
                    Locality::Private
                } else {
                    Locality::Public
                }
            }
        }
    }

    /// True for the two localities the paper reports on: loopback
    /// ("localhost" traffic) and private ("LAN" traffic).
    pub fn is_local(self) -> bool {
        matches!(self, Locality::Loopback | Locality::Private)
    }

    /// True only for loopback destinations.
    pub fn is_loopback(self) -> bool {
        self == Locality::Loopback
    }

    /// True only for RFC 1918 / unique-local destinations.
    pub fn is_private(self) -> bool {
        self == Locality::Private
    }

    /// Short stable label used in reports and the event store.
    pub fn label(self) -> &'static str {
        match self {
            Locality::Loopback => "loopback",
            Locality::Private => "private",
            Locality::LinkLocal => "link-local",
            Locality::CarrierGradeNat => "cgnat",
            Locality::Unspecified => "unspecified",
            Locality::Multicast => "multicast",
            Locality::Broadcast => "broadcast",
            Locality::Reserved => "reserved",
            Locality::Public => "public",
        }
    }
}

/// Return the embedded IPv4 address for `::ffff:a.b.c.d` mapped
/// addresses, `None` otherwise.
fn to_ipv4_mapped(addr: Ipv6Addr) -> Option<Ipv4Addr> {
    let seg = addr.segments();
    if seg[..5] == [0, 0, 0, 0, 0] && seg[5] == 0xffff {
        let o = addr.octets();
        Some(Ipv4Addr::new(o[12], o[13], o[14], o[15]))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn v6(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn loopback_block_is_whole_slash_eight() {
        assert_eq!(Locality::of_ipv4(v4("127.0.0.1")), Locality::Loopback);
        assert_eq!(Locality::of_ipv4(v4("127.0.0.53")), Locality::Loopback);
        assert_eq!(Locality::of_ipv4(v4("127.255.255.254")), Locality::Loopback);
        assert_eq!(Locality::of_ipv4(v4("128.0.0.1")), Locality::Public);
        assert_eq!(Locality::of_ipv4(v4("126.255.255.255")), Locality::Public);
    }

    #[test]
    fn rfc1918_ranges() {
        // 10/8
        assert_eq!(Locality::of_ipv4(v4("10.0.0.0")), Locality::Private);
        assert_eq!(Locality::of_ipv4(v4("10.193.31.212")), Locality::Private);
        assert_eq!(Locality::of_ipv4(v4("10.255.255.255")), Locality::Private);
        assert_eq!(Locality::of_ipv4(v4("11.0.0.0")), Locality::Public);
        assert_eq!(Locality::of_ipv4(v4("9.255.255.255")), Locality::Public);
        // 172.16/12
        assert_eq!(Locality::of_ipv4(v4("172.16.0.0")), Locality::Private);
        assert_eq!(Locality::of_ipv4(v4("172.26.6.230")), Locality::Private);
        assert_eq!(Locality::of_ipv4(v4("172.31.255.255")), Locality::Private);
        assert_eq!(Locality::of_ipv4(v4("172.15.255.255")), Locality::Public);
        assert_eq!(Locality::of_ipv4(v4("172.32.0.0")), Locality::Public);
        // 192.168/16
        assert_eq!(Locality::of_ipv4(v4("192.168.0.0")), Locality::Private);
        assert_eq!(Locality::of_ipv4(v4("192.168.64.160")), Locality::Private);
        assert_eq!(Locality::of_ipv4(v4("192.168.255.255")), Locality::Private);
        assert_eq!(Locality::of_ipv4(v4("192.167.255.255")), Locality::Public);
        assert_eq!(Locality::of_ipv4(v4("192.169.0.0")), Locality::Public);
    }

    #[test]
    fn paper_lan_addresses_classify_private() {
        // Every LAN address appearing in Tables 6, 9 and 10 of the paper.
        for s in [
            "10.193.31.212",
            "10.10.34.35",
            "10.156.2.50",
            "10.0.0.200",
            "192.168.64.160",
            "10.0.20.16",
            "192.168.0.208",
            "10.2.70.15",
            "192.168.0.226",
            "192.168.1.8",
            "192.168.33.10",
            "172.26.6.230",
            "172.16.205.110",
            "10.10.34.34",
            "192.168.8.241",
            "192.168.110.72",
            "10.50.1.242",
            "192.168.33.187",
            "172.16.0.4",
            "192.168.0.120",
        ] {
            assert_eq!(Locality::of_ipv4(v4(s)), Locality::Private, "{s}");
        }
    }

    #[test]
    fn special_ranges() {
        assert_eq!(Locality::of_ipv4(v4("0.0.0.0")), Locality::Unspecified);
        assert_eq!(Locality::of_ipv4(v4("0.1.2.3")), Locality::Unspecified);
        assert_eq!(Locality::of_ipv4(v4("169.254.1.1")), Locality::LinkLocal);
        assert_eq!(Locality::of_ipv4(v4("169.253.1.1")), Locality::Public);
        assert_eq!(
            Locality::of_ipv4(v4("100.64.0.1")),
            Locality::CarrierGradeNat
        );
        assert_eq!(
            Locality::of_ipv4(v4("100.127.255.255")),
            Locality::CarrierGradeNat
        );
        assert_eq!(Locality::of_ipv4(v4("100.128.0.0")), Locality::Public);
        assert_eq!(Locality::of_ipv4(v4("100.63.255.255")), Locality::Public);
        assert_eq!(Locality::of_ipv4(v4("224.0.0.1")), Locality::Multicast);
        assert_eq!(
            Locality::of_ipv4(v4("239.255.255.255")),
            Locality::Multicast
        );
        assert_eq!(Locality::of_ipv4(v4("240.0.0.1")), Locality::Reserved);
        assert_eq!(
            Locality::of_ipv4(v4("255.255.255.255")),
            Locality::Broadcast
        );
    }

    #[test]
    fn ipv6_classification() {
        assert_eq!(Locality::of_ipv6(v6("::1")), Locality::Loopback);
        assert_eq!(Locality::of_ipv6(v6("::")), Locality::Unspecified);
        assert_eq!(Locality::of_ipv6(v6("fc00::1")), Locality::Private);
        assert_eq!(Locality::of_ipv6(v6("fd12:3456::1")), Locality::Private);
        assert_eq!(Locality::of_ipv6(v6("fe80::1")), Locality::LinkLocal);
        assert_eq!(Locality::of_ipv6(v6("febf::1")), Locality::LinkLocal);
        assert_eq!(Locality::of_ipv6(v6("fec0::1")), Locality::Public);
        assert_eq!(Locality::of_ipv6(v6("ff02::1")), Locality::Multicast);
        assert_eq!(Locality::of_ipv6(v6("2001:db8::1")), Locality::Reserved);
        assert_eq!(Locality::of_ipv6(v6("2607:f8b0::1")), Locality::Public);
    }

    #[test]
    fn ipv4_mapped_ipv6_uses_embedded_address() {
        assert_eq!(
            Locality::of_ipv6(v6("::ffff:127.0.0.1")),
            Locality::Loopback
        );
        assert_eq!(Locality::of_ipv6(v6("::ffff:10.0.0.1")), Locality::Private);
        assert_eq!(Locality::of_ipv6(v6("::ffff:8.8.8.8")), Locality::Public);
    }

    #[test]
    fn is_local_covers_exactly_the_paper_categories() {
        assert!(Locality::Loopback.is_local());
        assert!(Locality::Private.is_local());
        for l in [
            Locality::LinkLocal,
            Locality::CarrierGradeNat,
            Locality::Unspecified,
            Locality::Multicast,
            Locality::Broadcast,
            Locality::Reserved,
            Locality::Public,
        ] {
            assert!(!l.is_local(), "{l:?}");
        }
    }

    #[test]
    fn mdns_local_names_classify_private_in_both_paths() {
        // Regression: ICE candidates carry mDNS-obfuscated `.local`
        // hostnames instead of raw private addresses; they must
        // classify as local (Private) through the borrowed path
        // without allocating, and identically through the owned path.
        for s in ["f0ae4f9a-2d4c-4a91.local", "Printer.LOCAL", "a.b.local"] {
            let owned = Host::parse(s).unwrap();
            let view = HostView::parse(s).unwrap();
            assert_eq!(Locality::of_host(&owned), Locality::Private, "{s}");
            assert_eq!(Locality::of_host_view(&view), Locality::Private, "{s}");
            assert!(Locality::of_host_view(&view).is_local(), "{s}");
        }
        for s in ["local.example.com", "mylocal.com", "example.com"] {
            let owned = Host::parse(s).unwrap();
            let view = HostView::parse(s).unwrap();
            assert_eq!(Locality::of_host(&owned), Locality::Public, "{s}");
            assert_eq!(Locality::of_host_view(&view), Locality::Public, "{s}");
        }
        // `.localhost` still wins over the mDNS rule's suffix logic.
        let lh = Host::parse("api.localhost").unwrap();
        assert_eq!(Locality::of_host(&lh), Locality::Loopback);
    }

    #[test]
    fn labels_are_unique() {
        let all = [
            Locality::Loopback,
            Locality::Private,
            Locality::LinkLocal,
            Locality::CarrierGradeNat,
            Locality::Unspecified,
            Locality::Multicast,
            Locality::Broadcast,
            Locality::Reserved,
            Locality::Public,
        ];
        let mut labels: Vec<_> = all.iter().map(|l| l.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }
}
