//! The desktop operating systems of the paper's crawl.
//!
//! Websites condition their behaviour on the visitor's OS (usually via
//! the user-agent string), which is why the paper crawls every page on
//! Windows 10, Ubuntu 20.04 and Mac OS X 10.15.6 and reports per-OS
//! columns in every table. The [`OsSet`] type models "active on which
//! OSes" — the ✓ columns of Tables 5–11.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The three desktop OSes of the paper's crawl.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Os {
    /// Windows 10 (VMWare VM, Georgia Tech network).
    Windows,
    /// Ubuntu 20.04 (VMWare VM, Georgia Tech network).
    Linux,
    /// Mac OS X 10.15.6 (MacBook Air, Comcast residential).
    MacOs,
}

impl Os {
    /// All OSes, in the paper's column order (W, L, M).
    pub const ALL: [Os; 3] = [Os::Windows, Os::Linux, Os::MacOs];

    /// One-letter label used in the paper's tables.
    pub fn letter(self) -> char {
        match self {
            Os::Windows => 'W',
            Os::Linux => 'L',
            Os::MacOs => 'M',
        }
    }

    /// Full label as used in figures ("Windows", "Linux", "Mac").
    pub fn name(self) -> &'static str {
        match self {
            Os::Windows => "Windows",
            Os::Linux => "Linux",
            Os::MacOs => "Mac",
        }
    }

    /// The Chrome v84 user-agent string for this OS — what websites'
    /// OS-conditional code inspects.
    pub fn user_agent(self) -> &'static str {
        match self {
            Os::Windows => {
                "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 \
                 (KHTML, like Gecko) Chrome/84.0.4147.89 Safari/537.36"
            }
            Os::Linux => {
                "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 \
                 (KHTML, like Gecko) Chrome/84.0.4147.89 Safari/537.36"
            }
            Os::MacOs => {
                "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_6) AppleWebKit/537.36 \
                 (KHTML, like Gecko) Chrome/84.0.4147.89 Safari/537.36"
            }
        }
    }
}

impl fmt::Display for Os {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A subset of the three OSes — the ✓ pattern of a table row.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct OsSet {
    /// Active on Windows.
    pub windows: bool,
    /// Active on Linux.
    pub linux: bool,
    /// Active on Mac.
    pub macos: bool,
}

impl OsSet {
    /// The empty set.
    pub const NONE: OsSet = OsSet {
        windows: false,
        linux: false,
        macos: false,
    };
    /// All three OSes.
    pub const ALL: OsSet = OsSet {
        windows: true,
        linux: true,
        macos: true,
    };
    /// Windows only — the fraud/bot-detection pattern.
    pub const WINDOWS_ONLY: OsSet = OsSet {
        windows: true,
        linux: false,
        macos: false,
    };
    /// Linux only.
    pub const LINUX_ONLY: OsSet = OsSet {
        windows: false,
        linux: true,
        macos: false,
    };
    /// Mac only — the SockJS developer-error pattern.
    pub const MAC_ONLY: OsSet = OsSet {
        windows: false,
        linux: false,
        macos: true,
    };
    /// Windows and Linux (the 2021 crawl's OS pair).
    pub const WINDOWS_LINUX: OsSet = OsSet {
        windows: true,
        linux: true,
        macos: false,
    };
    /// Linux and Mac.
    pub const LINUX_MAC: OsSet = OsSet {
        windows: false,
        linux: true,
        macos: true,
    };
    /// Windows and Mac.
    pub const WINDOWS_MAC: OsSet = OsSet {
        windows: true,
        linux: false,
        macos: true,
    };

    /// Build from a membership predicate.
    pub fn from_fn(mut f: impl FnMut(Os) -> bool) -> OsSet {
        OsSet {
            windows: f(Os::Windows),
            linux: f(Os::Linux),
            macos: f(Os::MacOs),
        }
    }

    /// Membership test.
    pub fn contains(self, os: Os) -> bool {
        match os {
            Os::Windows => self.windows,
            Os::Linux => self.linux,
            Os::MacOs => self.macos,
        }
    }

    /// Add an OS.
    pub fn with(mut self, os: Os) -> OsSet {
        match os {
            Os::Windows => self.windows = true,
            Os::Linux => self.linux = true,
            Os::MacOs => self.macos = true,
        }
        self
    }

    /// Set intersection.
    pub fn intersect(self, other: OsSet) -> OsSet {
        OsSet {
            windows: self.windows && other.windows,
            linux: self.linux && other.linux,
            macos: self.macos && other.macos,
        }
    }

    /// Number of member OSes.
    pub fn len(self) -> usize {
        usize::from(self.windows) + usize::from(self.linux) + usize::from(self.macos)
    }

    /// True if no OS is a member.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Iterate member OSes in table order.
    pub fn iter(self) -> impl Iterator<Item = Os> {
        Os::ALL.into_iter().filter(move |os| self.contains(*os))
    }

    /// The ✓/blank pattern as used in the paper's tables, e.g. `"W L M"`.
    pub fn ticks(self) -> String {
        Os::ALL
            .iter()
            .map(|os| if self.contains(*os) { '✓' } else { '·' })
            .collect::<Vec<char>>()
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl fmt::Display for OsSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for os in self.iter() {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{}", os.letter())?;
            first = false;
        }
        if first {
            write!(f, "∅")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_and_names() {
        assert_eq!(Os::Windows.letter(), 'W');
        assert_eq!(Os::Linux.letter(), 'L');
        assert_eq!(Os::MacOs.letter(), 'M');
        for os in Os::ALL {
            assert!(os.user_agent().contains("Chrome/84"), "Chrome v84 (§3.1)");
        }
        assert!(Os::Windows.user_agent().contains("Windows NT 10.0"));
        assert!(Os::Linux.user_agent().contains("X11; Linux"));
        assert!(Os::MacOs.user_agent().contains("Mac OS X 10_15_6"));
    }

    #[test]
    fn set_membership() {
        assert!(OsSet::ALL.contains(Os::Windows));
        assert!(OsSet::WINDOWS_ONLY.contains(Os::Windows));
        assert!(!OsSet::WINDOWS_ONLY.contains(Os::Linux));
        assert!(OsSet::MAC_ONLY.contains(Os::MacOs));
        assert!(OsSet::NONE.is_empty());
        assert_eq!(OsSet::ALL.len(), 3);
        assert_eq!(OsSet::WINDOWS_LINUX.len(), 2);
    }

    #[test]
    fn with_and_intersect() {
        let wl = OsSet::NONE.with(Os::Windows).with(Os::Linux);
        assert_eq!(wl, OsSet::WINDOWS_LINUX);
        assert_eq!(wl.intersect(OsSet::WINDOWS_ONLY), OsSet::WINDOWS_ONLY);
        assert_eq!(wl.intersect(OsSet::MAC_ONLY), OsSet::NONE);
    }

    #[test]
    fn iteration_order_is_w_l_m() {
        let all: Vec<Os> = OsSet::ALL.iter().collect();
        assert_eq!(all, vec![Os::Windows, Os::Linux, Os::MacOs]);
    }

    #[test]
    fn display_and_ticks() {
        assert_eq!(OsSet::WINDOWS_LINUX.to_string(), "W+L");
        assert_eq!(OsSet::NONE.to_string(), "∅");
        assert_eq!(OsSet::ALL.ticks(), "✓ ✓ ✓");
        assert_eq!(OsSet::WINDOWS_ONLY.ticks(), "✓ · ·");
    }

    #[test]
    fn from_fn_builder() {
        let not_mac = OsSet::from_fn(|os| os != Os::MacOs);
        assert_eq!(not_mac, OsSet::WINDOWS_LINUX);
    }
}
