//! # kt-netbase
//!
//! Networking vocabulary shared by every crate in the `knock-talk`
//! workspace: IP address locality classification (RFC 1918 and friends),
//! URL schemes with WebSocket awareness, a from-scratch URL parser,
//! web origins with a Same-Origin-Policy decision matrix, and the
//! well-known localhost port/service registry behind Table 4 of the
//! paper.
//!
//! The paper's detection pipeline hinges on exactly two questions that
//! this crate answers authoritatively:
//!
//! 1. *Is a request destination local?* — [`Locality::of_host`]
//!    classifies a parsed host as loopback, RFC 1918 private, or public,
//!    over both IPv4 and IPv6 (the paper checks `localhost`,
//!    `127.0.0.1`, `::1`, and the IANA private ranges).
//! 2. *Could the page read the response?* — [`origin::SopVerdict`]
//!    encodes that plain HTTP fetches are bound by the Same-Origin
//!    Policy while WebSocket connections are not (§4.2 of the paper).

#![warn(missing_docs)]

pub mod error;
pub mod host;
pub mod ip;
pub mod origin;
pub mod os;
pub mod pna;
pub mod scheme;
pub mod services;
pub mod url;

pub use error::ParseError;
pub use host::{DomainName, DomainView, Host, HostView};
pub use ip::Locality;
pub use origin::{Origin, SopVerdict};
pub use os::{Os, OsSet};
pub use pna::{AddressSpace, PnaVerdict, PreflightResult};
pub use scheme::Scheme;
pub use services::{PortService, ServiceRegistry, UseCase};
pub use url::{Url, UrlView};
