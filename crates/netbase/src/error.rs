//! Parse errors for the netbase vocabulary types.

use std::fmt;

/// Error produced when parsing URLs, hosts, or domain names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input was empty where a non-empty token was required.
    Empty,
    /// No `://` separator, or the scheme part was malformed.
    MissingScheme,
    /// The scheme is syntactically valid but not one we model.
    UnknownScheme(String),
    /// The host part is missing or malformed.
    InvalidHost(String),
    /// A domain label violates RFC 1035 syntax.
    InvalidLabel(String),
    /// The port is present but not a valid u16.
    InvalidPort(String),
    /// An IPv6 literal was opened with `[` but never closed.
    UnterminatedIpv6,
    /// The IPv4/IPv6 literal failed to parse.
    InvalidIpLiteral(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty input"),
            ParseError::MissingScheme => write!(f, "missing or malformed scheme"),
            ParseError::UnknownScheme(s) => write!(f, "unknown scheme: {s:?}"),
            ParseError::InvalidHost(h) => write!(f, "invalid host: {h:?}"),
            ParseError::InvalidLabel(l) => write!(f, "invalid domain label: {l:?}"),
            ParseError::InvalidPort(p) => write!(f, "invalid port: {p:?}"),
            ParseError::UnterminatedIpv6 => write!(f, "unterminated IPv6 literal"),
            ParseError::InvalidIpLiteral(ip) => write!(f, "invalid IP literal: {ip:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParseError::UnknownScheme("gopher".into());
        assert!(e.to_string().contains("gopher"));
        let e = ParseError::InvalidPort("99999".into());
        assert!(e.to_string().contains("99999"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&ParseError::Empty);
    }
}
