//! Well-known localhost port/service registry (paper Table 4).
//!
//! The anti-abuse scripts the paper uncovered probe a fixed set of
//! localhost ports chosen for what a hit implies about the visitor's
//! machine: remote-desktop software (a possible fraud signal), known
//! malware listeners and automation drivers (a possible bot signal).
//! This module is the audited mapping from port to service and
//! use-case, mirroring IANA's registry and the SANS ISC port database
//! the paper consulted, plus constants for each probing script's port
//! set so generators and classifiers share one source of truth.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Why an anti-abuse script probes a port (Table 4's "Use Case").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UseCase {
    /// Probed by the ThreatMetrix fraud-detection script.
    FraudDetection,
    /// Probed by the BIG-IP ASM bot-defence script.
    BotDetection,
}

impl UseCase {
    /// Human-readable label used in the Table 4 report.
    pub fn label(self) -> &'static str {
        match self {
            UseCase::FraudDetection => "Fraud Detection",
            UseCase::BotDetection => "Bot Detection",
        }
    }
}

/// One row of the port registry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortService {
    /// TCP port number.
    pub port: u16,
    /// The service or application known to listen there.
    pub service: &'static str,
    /// Which anti-abuse script probes it, if any.
    pub use_case: Option<UseCase>,
}

/// The localhost ports scanned by the ThreatMetrix fraud-detection
/// script over WSS, exactly as reported in §4.3.1 / Table 5.
pub const THREATMETRIX_PORTS: [u16; 14] = [
    3389, 5279, 5900, 5901, 5902, 5903, 5931, 5939, 5944, 5950, 6039, 6040, 63333, 7070,
];

/// The localhost ports scanned by BIG-IP ASM Bot Defense over HTTP,
/// exactly as reported in §4.3.2 / Table 5.
pub const BIGIP_PORTS: [u16; 7] = [4444, 4653, 5555, 7054, 7055, 9515, 17556];

/// Discord's local RPC port range, probed by sites embedding Discord
/// invitations (ws `/?v=1`, §4.3.3 / Appendix A).
pub const DISCORD_PORTS: [u16; 10] = [6463, 6464, 6465, 6466, 6467, 6468, 6469, 6470, 6471, 6472];

/// nProtect Online Security local HTTPS ports (samsungcard.com).
pub const NPROTECT_PORTS: [u16; 10] = [
    14440, 14441, 14442, 14443, 14444, 14445, 14446, 14447, 14448, 14449,
];

/// AnySign-for-PC local WSS ports (samsungcard.com).
pub const ANYSIGN_PORTS: [u16; 3] = [10531, 31027, 31029];

/// Hola-style localhost JSON probe ports (`/*.json`, "Unknown" class).
pub const HOLA_PORTS: [u16; 10] = [6880, 6881, 6882, 6883, 6884, 6885, 6886, 6887, 6888, 6889];

/// iQiyi-family native client version-check ports (2021 crawl).
pub const IQIYI_PORTS: [u16; 2] = [16422, 16423];

/// Thunder (Xunlei) download-manager detection ports.
pub const THUNDER_PORTS: [u16; 2] = [28317, 36759];

/// True for ports belonging to native-application clients — the local
/// services that would plausibly ship the Private Network Access
/// opt-in header (§4.3.3 / §5.3).
pub fn is_native_app_port(port: u16) -> bool {
    DISCORD_PORTS.contains(&port)
        || NPROTECT_PORTS.contains(&port)
        || ANYSIGN_PORTS.contains(&port)
        || IQIYI_PORTS.contains(&port)
        || THUNDER_PORTS.contains(&port)
        || matches!(
            port,
            28337
                | 6878
                | 5320
                | 60202
                | 64443
                | 12071
                | 12072
                | 17021
                | 27021
                | 2080..=2082
                | 50005
                | 51505
                | 53005
                | 54505
                | 56005
                | 38681..=38687
                | 4000
        )
}

/// Registry of well-known localhost services keyed by port.
#[derive(Debug, Clone)]
pub struct ServiceRegistry {
    by_port: BTreeMap<u16, PortService>,
}

impl ServiceRegistry {
    /// Build the registry with the paper's Table 4 rows plus the
    /// native-application ports from §4.3.3.
    pub fn standard() -> ServiceRegistry {
        let mut by_port = BTreeMap::new();
        let mut add = |port: u16, service: &'static str, use_case: Option<UseCase>| {
            by_port.insert(
                port,
                PortService {
                    port,
                    service,
                    use_case,
                },
            );
        };
        use UseCase::*;
        // Table 4 — fraud detection (ThreatMetrix).
        add(3389, "Windows Remote Desktop", Some(FraudDetection));
        add(5279, "Unknown", Some(FraudDetection));
        add(5900, "Remote Framebuffer (e.g., VNC)", Some(FraudDetection));
        add(5901, "Remote Framebuffer (e.g., VNC)", Some(FraudDetection));
        add(5902, "Remote Framebuffer (e.g., VNC)", Some(FraudDetection));
        add(5903, "Remote Framebuffer (e.g., VNC)", Some(FraudDetection));
        add(5931, "AMMYY Remote Control", Some(FraudDetection));
        add(5939, "TeamViewer", Some(FraudDetection));
        add(5944, "Unknown (likely VNC)", Some(FraudDetection));
        add(5950, "Cisco Remote Expert Manager", Some(FraudDetection));
        add(6039, "X Window System", Some(FraudDetection));
        add(6040, "X Window System", Some(FraudDetection));
        add(63333, "Tripp Lite PowerAlert UPS", Some(FraudDetection));
        add(7070, "AnyDesk Remote Desktop", Some(FraudDetection));
        // Table 4 — bot detection (BIG-IP ASM).
        add(
            4444,
            "Malware: CrackDown, Prosiak, Swift Remote",
            Some(BotDetection),
        );
        add(4653, "Malware: Cero", Some(BotDetection));
        add(5555, "Malware: ServeMe", Some(BotDetection));
        add(7054, "QuickTime Streaming Server", Some(BotDetection));
        add(7055, "QuickTime Streaming Server", Some(BotDetection));
        add(9515, "Malware: W32.Loxbot.A", Some(BotDetection));
        add(17556, "Microsoft Edge WebDriver", Some(BotDetection));
        // Native-application ports (§4.3.3, Appendix A) — no anti-abuse
        // use case; kept for classification context.
        for p in DISCORD_PORTS {
            add(p, "Discord local RPC", None);
        }
        for p in NPROTECT_PORTS {
            add(p, "nProtect Online Security", None);
        }
        for p in ANYSIGN_PORTS {
            add(p, "AnySign for PC", None);
        }
        for p in IQIYI_PORTS {
            add(p, "iQiyi native client", None);
        }
        for p in THUNDER_PORTS {
            add(p, "Thunder (Xunlei) client", None);
        }
        add(28337, "FACEIT anti-cheat client", None);
        add(6878, "Ace Stream client", None);
        add(5320, "Screenleap client", None);
        add(35729, "LiveReload.js dev server", None);
        ServiceRegistry { by_port }
    }

    /// Look up a port.
    pub fn lookup(&self, port: u16) -> Option<&PortService> {
        self.by_port.get(&port)
    }

    /// All rows with an anti-abuse use case, in port order — the rows
    /// of Table 4.
    pub fn table4_rows(&self) -> Vec<&PortService> {
        self.by_port
            .values()
            .filter(|ps| ps.use_case.is_some())
            .collect()
    }

    /// Number of registered ports.
    pub fn len(&self) -> usize {
        self.by_port.len()
    }

    /// True if no ports are registered.
    pub fn is_empty(&self) -> bool {
        self.by_port.is_empty()
    }
}

impl Default for ServiceRegistry {
    fn default() -> Self {
        ServiceRegistry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_set_sizes_match_paper() {
        assert_eq!(
            THREATMETRIX_PORTS.len(),
            14,
            "14 distinct WSS ports (§4.3.1)"
        );
        assert_eq!(BIGIP_PORTS.len(), 7, "7 HTTP ports (§4.3.2)");
        assert_eq!(DISCORD_PORTS.len(), 10);
        assert_eq!(NPROTECT_PORTS.len(), 10);
    }

    #[test]
    fn port_sets_are_disjoint_between_fraud_and_bot() {
        for p in THREATMETRIX_PORTS {
            assert!(!BIGIP_PORTS.contains(&p), "port {p} in both sets");
        }
    }

    #[test]
    fn registry_covers_every_scanned_port() {
        let reg = ServiceRegistry::standard();
        for p in THREATMETRIX_PORTS {
            let row = reg.lookup(p).unwrap_or_else(|| panic!("missing port {p}"));
            assert_eq!(row.use_case, Some(UseCase::FraudDetection));
        }
        for p in BIGIP_PORTS {
            let row = reg.lookup(p).unwrap_or_else(|| panic!("missing port {p}"));
            assert_eq!(row.use_case, Some(UseCase::BotDetection));
        }
    }

    #[test]
    fn table4_rows_sorted_and_complete() {
        let reg = ServiceRegistry::standard();
        let rows = reg.table4_rows();
        assert_eq!(rows.len(), THREATMETRIX_PORTS.len() + BIGIP_PORTS.len());
        assert!(rows.windows(2).all(|w| w[0].port < w[1].port));
    }

    #[test]
    fn specific_services_match_table4() {
        let reg = ServiceRegistry::standard();
        assert_eq!(reg.lookup(3389).unwrap().service, "Windows Remote Desktop");
        assert_eq!(reg.lookup(5939).unwrap().service, "TeamViewer");
        assert_eq!(
            reg.lookup(17556).unwrap().service,
            "Microsoft Edge WebDriver"
        );
        assert_eq!(reg.lookup(9515).unwrap().service, "Malware: W32.Loxbot.A");
        assert!(reg.lookup(6463).unwrap().use_case.is_none());
    }

    #[test]
    fn native_app_port_predicate() {
        assert!(is_native_app_port(6463), "Discord");
        assert!(is_native_app_port(28337), "FACEIT");
        assert!(is_native_app_port(14440), "nProtect");
        assert!(
            !is_native_app_port(3389),
            "RDP is a scan target, not an app"
        );
        assert!(!is_native_app_port(4444), "malware port");
        assert!(!is_native_app_port(80));
    }

    #[test]
    fn unknown_port_lookup_is_none() {
        let reg = ServiceRegistry::standard();
        assert!(reg.lookup(1).is_none());
        assert!(!reg.is_empty());
        assert!(reg.len() > 40);
    }
}
