//! URL schemes relevant to the measurement.
//!
//! The paper reports four schemes for locally-bound requests: `http`,
//! `https`, `ws`, and `wss` (Figures 4 and 8). WebSocket schemes matter
//! because the Same-Origin Policy does not restrict them, which is how
//! the ThreatMetrix fraud-detection script reads localhost scan results.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::ParseError;

/// A URL scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Scheme {
    /// Plain-text HTTP.
    Http,
    /// HTTP over TLS.
    Https,
    /// Plain-text WebSocket.
    Ws,
    /// WebSocket over TLS.
    Wss,
}

impl Scheme {
    /// All schemes, in report order.
    pub const ALL: [Scheme; 4] = [Scheme::Http, Scheme::Https, Scheme::Ws, Scheme::Wss];

    /// Parse a scheme token (case-insensitive). Compares in place
    /// rather than lowering into a fresh `String`: this sits on the
    /// per-URL analysis hot path and must not allocate on success.
    pub fn parse(s: &str) -> Result<Scheme, ParseError> {
        for scheme in Scheme::ALL {
            if s.eq_ignore_ascii_case(scheme.as_str()) {
                return Ok(scheme);
            }
        }
        Err(ParseError::UnknownScheme(s.to_ascii_lowercase()))
    }

    /// Canonical lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
            Scheme::Ws => "ws",
            Scheme::Wss => "wss",
        }
    }

    /// The port implied when a URL omits one.
    pub fn default_port(self) -> u16 {
        match self {
            Scheme::Http | Scheme::Ws => 80,
            Scheme::Https | Scheme::Wss => 443,
        }
    }

    /// TLS-protected schemes. The WICG Private Network Access proposal
    /// (discussed in §5.3) only allows local fetches from securely
    /// delivered pages.
    pub fn is_secure(self) -> bool {
        matches!(self, Scheme::Https | Scheme::Wss)
    }

    /// WebSocket schemes, which are exempt from the Same-Origin Policy.
    pub fn is_websocket(self) -> bool {
        matches!(self, Scheme::Ws | Scheme::Wss)
    }

    /// The HTTP-family sibling used for the underlying handshake
    /// (`ws` handshakes over `http`, `wss` over `https`).
    pub fn handshake_scheme(self) -> Scheme {
        match self {
            Scheme::Ws => Scheme::Http,
            Scheme::Wss => Scheme::Https,
            other => other,
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Scheme {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scheme::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_all() {
        for s in Scheme::ALL {
            assert_eq!(Scheme::parse(s.as_str()).unwrap(), s);
            assert_eq!(Scheme::parse(&s.as_str().to_uppercase()).unwrap(), s);
        }
    }

    #[test]
    fn unknown_scheme_is_rejected() {
        assert!(matches!(
            Scheme::parse("ftp"),
            Err(ParseError::UnknownScheme(_))
        ));
    }

    #[test]
    fn default_ports() {
        assert_eq!(Scheme::Http.default_port(), 80);
        assert_eq!(Scheme::Ws.default_port(), 80);
        assert_eq!(Scheme::Https.default_port(), 443);
        assert_eq!(Scheme::Wss.default_port(), 443);
    }

    #[test]
    fn security_and_websocket_predicates() {
        assert!(!Scheme::Http.is_secure());
        assert!(Scheme::Https.is_secure());
        assert!(!Scheme::Ws.is_secure());
        assert!(Scheme::Wss.is_secure());
        assert!(Scheme::Ws.is_websocket());
        assert!(Scheme::Wss.is_websocket());
        assert!(!Scheme::Http.is_websocket());
    }

    #[test]
    fn handshake_mapping() {
        assert_eq!(Scheme::Ws.handshake_scheme(), Scheme::Http);
        assert_eq!(Scheme::Wss.handshake_scheme(), Scheme::Https);
        assert_eq!(Scheme::Http.handshake_scheme(), Scheme::Http);
    }
}
