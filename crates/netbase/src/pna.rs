//! The WICG **Private Network Access** (PNA) proposal, §5.3.
//!
//! In March 2021 the WICG proposed restricting fetches from public
//! pages into more-private address spaces: such a request is allowed
//! only if (1) the initiating page was delivered over a secure channel
//! and (2) a CORS preflight carrying
//! `Access-Control-Request-Private-Network: true` succeeds, i.e. the
//! local service answers with `Access-Control-Allow-Private-Network:
//! true`. The paper argues this opt-in model would preserve the
//! legitimate native-application use case while blocking unintentional
//! exposure.
//!
//! This module implements the proposal's decision procedure so the
//! browser can enforce it and the analysis can answer the paper's
//! implicit question: *which of the observed traffic would PNA block?*

use serde::{Deserialize, Serialize};

use crate::ip::Locality;
use crate::url::Url;

/// IP address space in the PNA sense, ordered public < private < local.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AddressSpace {
    /// Globally routable.
    Public,
    /// RFC 1918 / unique-local (the LAN).
    Private,
    /// Loopback.
    Local,
}

impl AddressSpace {
    /// The PNA address space of a locality.
    pub fn of_locality(locality: Locality) -> AddressSpace {
        match locality {
            Locality::Loopback => AddressSpace::Local,
            Locality::Private | Locality::LinkLocal => AddressSpace::Private,
            _ => AddressSpace::Public,
        }
    }

    /// The PNA address space of a URL's host (syntactic).
    pub fn of_url(url: &Url) -> AddressSpace {
        AddressSpace::of_locality(url.locality())
    }

    /// True if `self` is more private than `other` (crossing in that
    /// direction is what PNA gates).
    pub fn more_private_than(self, other: AddressSpace) -> bool {
        self > other
    }
}

/// Outcome of a simulated PNA preflight: does the local service opt in?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PreflightResult {
    /// The service answered `Access-Control-Allow-Private-Network: true`.
    Approved,
    /// The service answered without the header, or not at all.
    Denied,
}

/// The PNA verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PnaVerdict {
    /// Not a private-network request: PNA does not apply.
    NotApplicable,
    /// Allowed: secure context and an approving preflight.
    Allowed,
    /// Blocked: the initiating page was not delivered securely.
    BlockedInsecureContext,
    /// Blocked: the preflight was denied.
    BlockedPreflight,
}

impl PnaVerdict {
    /// True if the request may proceed.
    pub fn permits(self) -> bool {
        matches!(self, PnaVerdict::NotApplicable | PnaVerdict::Allowed)
    }
}

/// Decide a request under the PNA proposal.
///
/// * `page_space` — address space the document was loaded from;
/// * `page_secure` — whether the document came over https/wss;
/// * `target` — the request URL;
/// * `preflight` — how the target service answers the preflight.
pub fn decide(
    page_space: AddressSpace,
    page_secure: bool,
    target: &Url,
    preflight: PreflightResult,
) -> PnaVerdict {
    let target_space = AddressSpace::of_url(target);
    if !target_space.more_private_than(page_space) {
        return PnaVerdict::NotApplicable;
    }
    if !page_secure {
        return PnaVerdict::BlockedInsecureContext;
    }
    match preflight {
        PreflightResult::Approved => PnaVerdict::Allowed,
        PreflightResult::Denied => PnaVerdict::BlockedPreflight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn address_space_ordering() {
        assert!(AddressSpace::Local.more_private_than(AddressSpace::Private));
        assert!(AddressSpace::Private.more_private_than(AddressSpace::Public));
        assert!(AddressSpace::Local.more_private_than(AddressSpace::Public));
        assert!(!AddressSpace::Public.more_private_than(AddressSpace::Private));
        assert!(!AddressSpace::Private.more_private_than(AddressSpace::Private));
    }

    #[test]
    fn address_space_of_urls() {
        assert_eq!(
            AddressSpace::of_url(&url("http://localhost:4444/")),
            AddressSpace::Local
        );
        assert_eq!(
            AddressSpace::of_url(&url("http://127.0.0.1/")),
            AddressSpace::Local
        );
        assert_eq!(
            AddressSpace::of_url(&url("http://192.168.0.1/")),
            AddressSpace::Private
        );
        assert_eq!(
            AddressSpace::of_url(&url("https://example.com/")),
            AddressSpace::Public
        );
    }

    #[test]
    fn public_to_public_is_not_applicable() {
        let v = decide(
            AddressSpace::Public,
            false,
            &url("https://cdn.example/lib.js"),
            PreflightResult::Denied,
        );
        assert_eq!(v, PnaVerdict::NotApplicable);
        assert!(v.permits());
    }

    #[test]
    fn insecure_page_is_blocked_before_preflight() {
        let v = decide(
            AddressSpace::Public,
            false,
            &url("http://localhost:6463/?v=1"),
            PreflightResult::Approved,
        );
        assert_eq!(v, PnaVerdict::BlockedInsecureContext);
        assert!(!v.permits());
    }

    #[test]
    fn secure_page_needs_opt_in() {
        let target = url("wss://localhost:3389/");
        assert_eq!(
            decide(AddressSpace::Public, true, &target, PreflightResult::Denied),
            PnaVerdict::BlockedPreflight
        );
        assert_eq!(
            decide(
                AddressSpace::Public,
                true,
                &target,
                PreflightResult::Approved
            ),
            PnaVerdict::Allowed
        );
    }

    #[test]
    fn private_page_to_local_still_gated() {
        // A LAN-hosted page reaching into loopback is also a
        // privilege escalation under PNA.
        let v = decide(
            AddressSpace::Private,
            true,
            &url("http://127.0.0.1:8080/"),
            PreflightResult::Denied,
        );
        assert_eq!(v, PnaVerdict::BlockedPreflight);
    }

    #[test]
    fn local_page_to_lan_is_not_gated() {
        // Descending in privacy (local page → private target) is fine.
        let v = decide(
            AddressSpace::Local,
            false,
            &url("http://192.168.0.1/"),
            PreflightResult::Denied,
        );
        assert_eq!(v, PnaVerdict::NotApplicable);
    }
}
