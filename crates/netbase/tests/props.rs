//! Property-based tests for the netbase vocabulary.

use std::net::{Ipv4Addr, Ipv6Addr};

use kt_netbase::{Host, HostView, Locality, Scheme, Url, UrlView};
use proptest::prelude::*;

/// Oracle for RFC 1918 + special ranges using raw integer arithmetic,
/// independent of the octet-pattern implementation under test.
#[allow(clippy::if_same_then_else)] // two Reserved branches cover distinct ranges
fn oracle_v4(addr: Ipv4Addr) -> Locality {
    let n = u32::from(addr);
    let in_range = |lo: &str, hi: &str| {
        n >= u32::from(lo.parse::<Ipv4Addr>().unwrap())
            && n <= u32::from(hi.parse::<Ipv4Addr>().unwrap())
    };
    if n == u32::MAX {
        Locality::Broadcast
    } else if in_range("0.0.0.0", "0.255.255.255") {
        Locality::Unspecified
    } else if in_range("127.0.0.0", "127.255.255.255") {
        Locality::Loopback
    } else if in_range("10.0.0.0", "10.255.255.255")
        || in_range("172.16.0.0", "172.31.255.255")
        || in_range("192.168.0.0", "192.168.255.255")
    {
        Locality::Private
    } else if in_range("169.254.0.0", "169.254.255.255") {
        Locality::LinkLocal
    } else if in_range("100.64.0.0", "100.127.255.255") {
        Locality::CarrierGradeNat
    } else if in_range("224.0.0.0", "239.255.255.255") {
        Locality::Multicast
    } else if in_range("240.0.0.0", "255.255.255.254") {
        Locality::Reserved
    } else if in_range("192.0.2.0", "192.0.2.255")
        || in_range("198.51.100.0", "198.51.100.255")
        || in_range("203.0.113.0", "203.0.113.255")
        || in_range("198.18.0.0", "198.19.255.255")
    {
        Locality::Reserved
    } else {
        Locality::Public
    }
}

proptest! {
    #[test]
    fn ipv4_classification_matches_integer_oracle(n in any::<u32>()) {
        let addr = Ipv4Addr::from(n);
        prop_assert_eq!(Locality::of_ipv4(addr), oracle_v4(addr));
    }

    #[test]
    fn ipv4_mapped_v6_agrees_with_v4(n in any::<u32>()) {
        let v4 = Ipv4Addr::from(n);
        let v6 = v4.to_ipv6_mapped();
        prop_assert_eq!(Locality::of_ipv6(v6), Locality::of_ipv4(v4));
    }

    #[test]
    fn ipv6_classification_is_total(segments in any::<[u16; 8]>()) {
        // Must never panic and must return one of the defined classes.
        let addr = Ipv6Addr::new(
            segments[0], segments[1], segments[2], segments[3],
            segments[4], segments[5], segments[6], segments[7],
        );
        let _ = Locality::of_ipv6(addr).label();
    }

    #[test]
    fn url_display_parse_round_trip(
        scheme_idx in 0usize..4,
        host_kind in 0usize..3,
        v4 in any::<u32>(),
        v6 in any::<[u16; 8]>(),
        label_a in "[a-z][a-z0-9]{0,10}",
        label_b in "[a-z]{2,5}",
        port in proptest::option::of(1u16..),
        path_seg in "[a-zA-Z0-9._-]{0,12}",
        query in proptest::option::of("[a-z]=[0-9]{1,4}"),
    ) {
        let scheme = Scheme::ALL[scheme_idx];
        let host = match host_kind {
            0 => Host::Ipv4(Ipv4Addr::from(v4)),
            1 => Host::Ipv6(Ipv6Addr::new(v6[0], v6[1], v6[2], v6[3], v6[4], v6[5], v6[6], v6[7])),
            _ => Host::domain_unchecked(&format!("{label_a}.{label_b}")),
        };
        let path = format!("/{path_seg}");
        let mut text = format!("{scheme}://{host}");
        if let Some(p) = port {
            text.push_str(&format!(":{p}"));
        }
        text.push_str(&path);
        if let Some(q) = &query {
            text.push_str(&format!("?{q}"));
        }
        let url = Url::parse(&text).unwrap();
        prop_assert_eq!(url.to_string(), text.clone());
        prop_assert_eq!(Url::parse(&url.to_string()).unwrap(), url);
    }

    #[test]
    fn url_parser_never_panics(input in "\\PC{0,80}") {
        let _ = Url::parse(&input);
    }

    #[test]
    fn host_parser_never_panics(input in "\\PC{0,60}") {
        let _ = Host::parse(&input);
    }

    #[test]
    fn parsed_host_round_trips(input in "[a-z0-9.-]{1,40}") {
        if let Ok(h) = Host::parse(&input) {
            prop_assert_eq!(Host::parse(&h.to_string()).unwrap(), h);
        }
    }

    #[test]
    fn effective_port_defaults_by_scheme(scheme_idx in 0usize..4) {
        let scheme = Scheme::ALL[scheme_idx];
        let url = Url::parse(&format!("{scheme}://example.com/")).unwrap();
        prop_assert_eq!(url.port(), scheme.default_port());
    }

    /// The borrowed URL parser must accept, reject, and classify
    /// exactly as the owned parser does — on arbitrary input, not just
    /// well-formed URLs.
    #[test]
    fn url_view_agrees_with_owned_parser(input in "\\PC{0,80}") {
        match (Url::parse(&input), UrlView::parse(&input)) {
            (Ok(owned), Ok(view)) => {
                prop_assert_eq!(view.scheme(), owned.scheme());
                prop_assert_eq!(view.port(), owned.port());
                prop_assert_eq!(view.explicit_port(), owned.explicit_port());
                prop_assert_eq!(view.path(), owned.path());
                prop_assert_eq!(view.query(), owned.query());
                prop_assert_eq!(view.fragment(), owned.fragment());
                prop_assert_eq!(view.locality(), owned.locality());
                prop_assert_eq!(view.to_owned(), owned);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "disagreement on {:?}: owned={:?} view={:?}", input, a, b),
        }
    }

    /// Same agreement on inputs biased towards *almost*-valid URLs,
    /// which exercise the deep error paths far more often than fully
    /// arbitrary strings do.
    #[test]
    fn url_view_agrees_on_url_shaped_inputs(
        scheme in "(http|https|ws|wss|HTTP|ftp|Wss)",
        host in "[a-zA-Z0-9.\\[\\]:@_-]{1,25}",
        tail in "[/?#a-z0-9=.&]{0,20}",
    ) {
        let input = format!("{scheme}://{host}{tail}");
        match (Url::parse(&input), UrlView::parse(&input)) {
            (Ok(owned), Ok(view)) => prop_assert_eq!(view.to_owned(), owned),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "disagreement on {:?}: owned={:?} view={:?}", input, a, b),
        }
    }

    #[test]
    fn host_view_agrees_with_owned_parser(input in "\\PC{0,60}") {
        match (Host::parse(&input), HostView::parse(&input)) {
            (Ok(owned), Ok(view)) => prop_assert_eq!(view.to_owned(), owned),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "disagreement on {:?}: owned={:?} view={:?}", input, a, b),
        }
    }

    #[test]
    fn locality_of_local_urls_is_local(port in 1u16.., private_kind in 0usize..4) {
        let host = match private_kind {
            0 => "127.0.0.1".to_string(),
            1 => "localhost".to_string(),
            2 => "10.1.2.3".to_string(),
            _ => "192.168.1.1".to_string(),
        };
        let url = Url::parse(&format!("http://{host}:{port}/")).unwrap();
        prop_assert!(url.is_local());
    }
}
