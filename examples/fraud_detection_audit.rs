//! Audit one website's anti-abuse localhost scanning, the way §4.3.1
//! of the paper dissected ThreatMetrix: build a single e-commerce site
//! that embeds the fraud-detection script, visit it on all three OSes,
//! and walk the NetLog capture flow by flow.
//!
//! ```sh
//! cargo run --release --example fraud_detection_audit
//! ```

use knock_talk::browser::{Browser, BrowserConfig, World};
use knock_talk::netbase::services::THREATMETRIX_PORTS;
use knock_talk::netbase::{DomainName, Os, OsSet, ServiceRegistry, Url};
use knock_talk::netlog::{FlowOutcome, FlowSet};
use knock_talk::webgen::{Behavior, PlantedBehavior, WebSite};

fn main() {
    // A synthetic "big shop" deploying ThreatMetrix-style profiling.
    let domain = DomainName::parse("bigshop.example").unwrap();
    let vendor = DomainName::parse("regstat.bigshop.example").unwrap();
    let mut site = WebSite::plain(domain, Some(104), 8);
    site.behaviors.push(PlantedBehavior {
        behavior: Behavior::ThreatMetrix { vendor },
        os_set: OsSet::WINDOWS_ONLY,
        base_delay_ms: 9_500,
    });

    let registry = ServiceRegistry::standard();
    for os in Os::ALL {
        println!("=== visiting https://bigshop.example/ on {} ===", os.name());
        let mut world = World::build(std::slice::from_ref(&site), os, 7);
        let mut browser = Browser::new(&mut world, BrowserConfig::paper(os), 7);
        let result = browser.visit(&site);
        let flows = FlowSet::from_events(result.capture.events);
        let mut local = 0;
        for flow in flows.page_flows() {
            let Some(url_text) = flow.url() else { continue };
            let Ok(url) = Url::parse(url_text) else {
                continue;
            };
            if !url.is_local() {
                continue;
            }
            local += 1;
            let service = registry
                .lookup(url.port())
                .map(|s| s.service)
                .unwrap_or("unknown service");
            let outcome = match flow.outcome() {
                FlowOutcome::Success(code) => format!("answered ({code})"),
                FlowOutcome::Failed(err) => format!("failed ({})", err.name()),
                FlowOutcome::InFlight => "no answer within the window".to_string(),
            };
            println!(
                "  t={:>6}ms  {:<28} probing {:<32} -> {}",
                flow.start_time(),
                url.to_string(),
                service,
                outcome
            );
        }
        if local == 0 {
            println!("  (no locally-bound traffic — the script only runs on Windows)");
        } else {
            println!(
                "  {} localhost probes covering {}/{} ThreatMetrix ports",
                local,
                THREATMETRIX_PORTS.len().min(local),
                THREATMETRIX_PORTS.len()
            );
        }
        println!();
    }
    println!(
        "Interpretation: the scan targets remote-desktop ports (RDP 3389, VNC \n\
         5900-5903, TeamViewer 5939, AnyDesk 7070, …) to detect whether the\n\
         visitor's machine is under remote control — a fraud signal. Because\n\
         the probes ride WebSockets, the Same-Origin Policy does not block\n\
         reading the results (§4.3.1 of the paper)."
    );
}
