//! Crawl a blocklist population and investigate the phishing pages
//! that inherited fraud-detection scanning from the sites they cloned
//! (§4.3.1 / Table 8 of the paper).
//!
//! ```sh
//! cargo run --release --example malicious_crawl
//! ```

use knock_talk::analysis::classify::{classify_site, ReasonClass};
use knock_talk::analysis::report;
use knock_talk::store::CrawlId;
use knock_talk::weblists::MaliciousCategory;
use knock_talk::{Study, StudyConfig};

fn main() {
    println!("running the malicious-webpage campaign…");
    let study = Study::run(StudyConfig::quick(0xBAD));

    // Table 2's summary, straight from telemetry.
    println!("\n{}", study.experiment("T2").expect("T2 exists"));

    // Dig into the phishing clones: sites classified as fraud
    // detection inside the *malicious* population are pages that
    // copied a legitimate site's web interface, ThreatMetrix tag and
    // all.
    let sites = study.activities(&CrawlId::malicious());
    let clones: Vec<_> = sites
        .iter()
        .filter(|s| {
            s.malicious_category == Some(report::category_code(MaliciousCategory::Phishing))
        })
        .filter(|s| classify_site(s) == ReasonClass::FraudDetection)
        .collect();
    println!(
        "phishing pages exhibiting ThreatMetrix's localhost scan: {}",
        clones.len()
    );
    for site in clones.iter().take(5) {
        println!(
            "  {:<40} active on {} — inherited WSS scan of {} ports",
            site.domain,
            site.localhost_os,
            site.scheme_ports().len()
        );
    }

    // And confirm the paper's negative finding: no malicious site
    // conducts an *attack* — everything classifies as inherited
    // anti-abuse scanning, developer errors, one native-app library,
    // or the unknown censorship artefacts.
    let mut by_class = std::collections::BTreeMap::new();
    for s in sites.iter().filter(|s| s.has_localhost()) {
        *by_class.entry(classify_site(s)).or_insert(0usize) += 1;
    }
    println!("\nmalicious localhost sites by recovered reason:");
    for (class, n) in &by_class {
        println!("  {:<20} {n}", class.label());
    }
    let dev = by_class
        .get(&ReasonClass::DeveloperError)
        .copied()
        .unwrap_or(0);
    let total: usize = by_class.values().sum();
    println!(
        "\ndeveloper errors account for {:.0}% of malicious local activity\n\
         (the paper reports >90% — compromised or sloppily-cloned sites,\n\
         not internal-network attacks)",
        100.0 * dev as f64 / total.max(1) as f64
    );
}
