//! Quantify §5.2's warning: the host profiling done for anti-abuse is
//! a fingerprinting primitive. How many bits does each observed scan
//! harvest across a population of visitor machines, and how does that
//! grow as scanners widen their port lists?
//!
//! ```sh
//! cargo run --release --example tracking_entropy
//! ```

use knock_talk::analysis::entropy::scan_entropy;
use knock_talk::netbase::services::{BIGIP_PORTS, THREATMETRIX_PORTS};
use knock_talk::netbase::Os;

fn main() {
    const POPULATION: usize = 2_000;
    const SEED: u64 = 0xF1;

    println!("fingerprinting entropy over {POPULATION} simulated visitor machines\n");
    println!(
        "{:<34} {:<8} {:>7} {:>10} {:>12}",
        "scan", "OS", "bits", "profiles", "modal share"
    );

    let mut combined: Vec<u16> = THREATMETRIX_PORTS.to_vec();
    combined.extend_from_slice(&BIGIP_PORTS);
    let mut with_apps = combined.clone();
    with_apps.extend_from_slice(&[6463, 3000, 5900, 6039]);

    let scans: [(&str, &[u16]); 4] = [
        ("ThreatMetrix (14 RDP ports)", &THREATMETRIX_PORTS),
        ("BIG-IP ASM (7 malware ports)", &BIGIP_PORTS),
        ("combined anti-abuse (21)", &combined),
        ("+ app & dev-server ports", &with_apps),
    ];
    for (label, ports) in scans {
        for os in Os::ALL {
            let r = scan_entropy(os, ports, POPULATION, SEED);
            println!(
                "{:<34} {:<8} {:>7.2} {:>10} {:>11.1}%",
                label,
                os.name(),
                r.shannon_bits,
                r.distinct,
                r.modal_share * 100.0
            );
        }
    }

    println!(
        "\nreading: every extra responsive port class multiplies the number of\n\
         distinguishable machine profiles. The anti-abuse scans the paper\n\
         observed already partition users into service-fingerprint groups;\n\
         §5.2's concern is that the same telemetry, pointed at tracking,\n\
         compounds with other fingerprinting surfaces. The normalised\n\
         entropy stays well below 1.0 here because the simulated machines\n\
         only vary in a handful of services — real machines vary far more."
    );
}
