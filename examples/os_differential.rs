//! OS-differential analysis: reproduce the paper's finding that
//! localhost activity skews heavily toward Windows (Figure 2a), and
//! show how the skew decomposes by behaviour class.
//!
//! ```sh
//! cargo run --release --example os_differential
//! ```

use knock_talk::analysis::classify::{classify_site, ReasonClass};
use knock_talk::analysis::venn::OsVenn;
use knock_talk::netbase::Os;
use knock_talk::store::CrawlId;
use knock_talk::{Study, StudyConfig};

fn main() {
    println!("running the 2020 campaign on Windows, Linux and Mac…");
    let study = Study::run(StudyConfig::quick(0x05D1));
    let sites = study.activities(&CrawlId::top2020());
    let localhost: Vec<_> = sites.iter().filter(|s| s.has_localhost()).collect();

    // Overall Venn (Figure 2a).
    let venn = OsVenn::from_sets(localhost.iter().map(|s| s.localhost_os));
    println!("\nOS overlap of localhost-active sites:\n{}", venn.render());

    // Decompose the Windows-only region by class: the skew is the
    // anti-abuse scripts, which only target Windows hosts.
    println!("\nWindows-only sites by recovered reason:");
    let mut by_class = std::collections::BTreeMap::new();
    for s in localhost
        .iter()
        .filter(|s| s.localhost_os == knock_talk::netbase::OsSet::WINDOWS_ONLY)
    {
        *by_class.entry(classify_site(s)).or_insert(0usize) += 1;
    }
    for class in ReasonClass::ALL {
        let n = by_class.get(&class).copied().unwrap_or(0);
        if n > 0 {
            println!("  {:<20} {n}", class.label());
        }
    }

    // Per-OS timing (Figure 5a): Windows' median is pushed out by the
    // late-firing anti-abuse scans.
    println!("\ntime to first localhost request:");
    for os in Os::ALL {
        let mut delays: Vec<u64> = localhost
            .iter()
            .filter_map(|s| s.first_delay_on(os, true))
            .collect();
        if delays.is_empty() {
            continue;
        }
        delays.sort_unstable();
        let median = delays[delays.len() / 2] as f64 / 1000.0;
        let max = *delays.last().unwrap() as f64 / 1000.0;
        println!(
            "  {:<8} n={:<4} median {median:>5.1}s  max {max:>5.1}s",
            os.name(),
            delays.len()
        );
    }

    // And WSS dominance on Windows (Figure 4): the SOP-exempt channel.
    println!("\nscheme mix of localhost requests (Figure 4's middle ring):");
    println!("{}", study.experiment("F4").expect("F4 exists"));
}
