//! Quickstart: run a reduced-scale study end-to-end and print the
//! headline findings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use knock_talk::analysis::classify::{classify_site, ReasonClass};
use knock_talk::store::CrawlId;
use knock_talk::{Study, StudyConfig};

fn main() {
    // A reduced-scale population: the quiet background is 2,000 sites
    // instead of 100,000, but every local-traffic behaviour the paper
    // found is planted at its published count.
    println!("generating population and running all eight crawls…");
    let study = Study::run(StudyConfig::quick(0xC0FFEE));

    // RQ1: which sites generate local traffic?
    let sites = study.activities(&CrawlId::top2020());
    let localhost: Vec<_> = sites.iter().filter(|s| s.has_localhost()).collect();
    let lan: Vec<_> = sites.iter().filter(|s| s.has_lan()).collect();
    println!(
        "\n2020 top-list crawl: {} sites contacted localhost, {} contacted LAN addresses",
        localhost.len(),
        lan.len()
    );

    // RQ3: why? Classify every site from its telemetry alone.
    let mut counts = std::collections::BTreeMap::new();
    for site in &localhost {
        *counts.entry(classify_site(site)).or_insert(0usize) += 1;
    }
    println!("\nwhy sites contact localhost (recovered from NetLog telemetry):");
    for class in ReasonClass::ALL {
        println!(
            "  {:<20} {:>4}",
            class.label(),
            counts.get(&class).copied().unwrap_or(0)
        );
    }

    // The paper's headline example: a highly-ranked e-commerce site
    // scanning remote-desktop ports over WSS, Windows only.
    if let Some(fraud) = localhost
        .iter()
        .find(|s| classify_site(s) == ReasonClass::FraudDetection)
    {
        println!(
            "\nexample fraud-detection site: {} (rank {:?})",
            fraud.domain, fraud.rank
        );
        println!("  active on: {}", fraud.localhost_os);
        println!("  ports: {:?}", {
            let mut p: Vec<u16> = fraud.observations.iter().map(|o| o.port).collect();
            p.sort_unstable();
            p.dedup();
            p
        });
    }

    // Render one full table.
    println!("\n--- Table 3: top localhost-active domains ---");
    println!("{}", study.experiment("T3").expect("T3 exists"));
}
