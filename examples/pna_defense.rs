//! Evaluate the WICG Private Network Access proposal (§5.3): replay
//! the 2020 crawl's telemetry under PNA, and re-crawl a site with
//! browser-side enforcement turned on, across adoption scenarios.
//!
//! ```sh
//! cargo run --release --example pna_defense
//! ```

use knock_talk::analysis::classify::ReasonClass;
use knock_talk::analysis::defense::{evaluate, AdoptionScenario};
use knock_talk::browser::{Browser, BrowserConfig, PnaMode, World};
use knock_talk::netbase::{DomainName, Os, OsSet, Url};
use knock_talk::netlog::{FlowOutcome, FlowSet, NetError};
use knock_talk::store::CrawlId;
use knock_talk::webgen::{Behavior, NativeApp, PlantedBehavior, WebSite};
use knock_talk::{Study, StudyConfig};

fn main() {
    // Part 1 — offline replay: take the 2020 telemetry as recorded
    // (Chrome v84, no PNA) and ask what the proposal would have done.
    println!("running the 2020 campaign, then replaying it under PNA…\n");
    let study = Study::run(StudyConfig::quick(0x9A5));
    let records = study.store.crawl_records(&CrawlId::top2020());
    let impact = evaluate(&records);
    println!("{}", impact.render());

    let (fraud_ok, fraud_blocked) = impact.get(
        ReasonClass::FraudDetection,
        AdoptionScenario::NativeAppsOptIn,
    );
    let (native_ok, native_blocked) = impact.get(
        ReasonClass::NativeApplication,
        AdoptionScenario::NativeAppsOptIn,
    );
    println!(
        "under the intended steady state (native apps opt in):\n\
         - fraud-detection scanning: {fraud_ok} sites keep working, {fraud_blocked} fully blocked\n\
         - native-app communication: {native_ok} keep working, {native_blocked} blocked\n\
         → the proposal blocks the scans while preserving the legitimate\n\
           use case, exactly the balance §5.3 argues for.\n"
    );

    // Part 2 — browser-side enforcement: crawl one Discord-invite-style
    // site with each PNA mode and watch the probe's fate.
    let mut site = WebSite::plain(DomainName::parse("invite.example").unwrap(), Some(100), 4);
    site.behaviors.push(PlantedBehavior {
        behavior: Behavior::NativeApp(NativeApp::Discord),
        os_set: OsSet::ALL,
        base_delay_ms: 2_000,
    });
    for (mode, label) in [
        (PnaMode::Off, "PNA off (Chrome v84)"),
        (PnaMode::EnforceNoOptIn, "PNA on, nothing opts in"),
        (PnaMode::EnforceNativeOptIn, "PNA on, native apps opt in"),
    ] {
        let mut world = World::build(std::slice::from_ref(&site), Os::Windows, 1);
        let mut config = BrowserConfig::paper(Os::Windows);
        config.pna = mode;
        let mut browser = Browser::new(&mut world, config, 1);
        let result = browser.visit(&site);
        let flows = FlowSet::from_events(result.capture.events);
        let (aborted, attempted): (usize, usize) = flows
            .page_flows()
            .filter(|f| {
                f.url()
                    .and_then(|u| Url::parse(u).ok())
                    .is_some_and(|u| u.is_local())
            })
            .fold((0, 0), |(a, t), f| {
                let aborted = f.outcome() == FlowOutcome::Failed(NetError::Aborted);
                (a + usize::from(aborted), t + 1)
            });
        println!("{label:<30} {attempted} local probes, {aborted} aborted by the browser");
    }
}
