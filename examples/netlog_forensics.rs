//! NetLog forensics: export a visit's telemetry as a Chrome-style
//! JSON capture, corrupt it the way a killed browser would, and show
//! that the parser still recovers the evidence.
//!
//! The paper's pipeline parses NetLog JSON at crawl scale (§3.1);
//! robustness to truncated captures is what keeps Table 1's error
//! accounting unbiased.
//!
//! ```sh
//! cargo run --release --example netlog_forensics
//! ```

use knock_talk::browser::{Browser, BrowserConfig, World};
use knock_talk::netbase::{DomainName, Os, OsSet, Url};
use knock_talk::netlog::{Capture, FlowSet};
use knock_talk::webgen::{Behavior, NativeApp, PlantedBehavior, WebSite};

fn main() {
    // A gaming site probing for its native client (FACEIT-style).
    let domain = DomainName::parse("arena.example").unwrap();
    let mut site = WebSite::plain(domain, Some(5370), 5);
    site.behaviors.push(PlantedBehavior {
        behavior: Behavior::NativeApp(NativeApp::Faceit),
        os_set: OsSet::ALL,
        base_delay_ms: 3_000,
    });

    let mut world = World::build(std::slice::from_ref(&site), Os::Linux, 3);
    let mut browser = Browser::new(&mut world, BrowserConfig::paper(Os::Linux), 3);
    let result = browser.visit(&site);

    // 1. Export as chrome://net-export JSON.
    let json = result.capture.to_json();
    println!(
        "capture: {} events, {} bytes of JSON",
        result.capture.len(),
        json.len()
    );

    // 2. Round-trip.
    let parsed = Capture::parse(&json).expect("well-formed capture parses");
    assert_eq!(parsed.events, result.capture.events);
    println!("round-trip: OK ({} events)", parsed.len());

    // 3. Simulate a crashed browser: cut the file mid-event.
    let cut = json.len() * 3 / 4;
    let truncated = &json[..cut];
    let recovered = Capture::parse(truncated).expect("recovery succeeds");
    println!(
        "truncated at byte {cut}: recovered {} of {} events (truncated={})",
        recovered.len(),
        result.capture.len(),
        recovered.truncated
    );

    // 4. The evidence survives: the localhost probe is still in the
    //    recovered prefix (it fired early in the visit).
    let flows = FlowSet::from_events(recovered.events);
    let local: Vec<String> = flows
        .page_flows()
        .filter_map(|f| f.url().map(str::to_string))
        .filter(|u| Url::parse(u).map(|u| u.is_local()).unwrap_or(false))
        .collect();
    println!("local destinations recovered from the truncated capture:");
    for url in &local {
        println!("  {url}");
    }
    assert!(
        local.iter().any(|u| u.contains(":28337")),
        "the FACEIT probe must survive truncation"
    );
    println!("\nforensics complete: detection works on damaged captures too.");
}
