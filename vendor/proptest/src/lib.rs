//! Minimal in-repo shim for `proptest`.
//!
//! Deterministic random-input testing with the real crate's surface
//! syntax — `proptest! { fn t(x in strategy) { .. } }`, `prop_oneof!`,
//! `prop_map`, regex-literal string strategies, `collection::vec`,
//! `option::of` — but no shrinking: a failing case panics with the
//! standard assert message. The RNG stream is seeded from the test
//! function's name, so failures reproduce across runs and machines.

use std::ops::{Range, RangeFrom};

/// splitmix64: the same tiny deterministic generator `kt-simnet` uses.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary label (e.g. the test name).
    pub fn from_label(label: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for an [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()`: the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mostly ordinary magnitudes; occasionally extreme ones.
        let raw = rng.unit_f64();
        match rng.below(8) {
            0 => raw * 1e18,
            1 => -raw * 1e18,
            2 => -raw,
            _ => raw * 1e6,
        }
    }
}

impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arbitrary(rng);
        }
        out
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as u64)
                    .wrapping_sub(self.start as u64)
                    .wrapping_add(1);
                if span == 0 {
                    rng.next_u64() as $t
                } else {
                    self.start + rng.below(span) as $t
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.below(span) as i64) as i32
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end as i128 - self.start as i128) as u64;
        (self.start as i128 + rng.below(span) as i128) as i64
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String strategies: a `&str` is interpreted as a character-class regex
/// (the real crate's behaviour), supporting the subset `[class]`,
/// literal characters, `\PC` (any printable), and `{m}` / `{m,n}`
/// repetition.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = if atom.min == atom.max {
                atom.min
            } else {
                atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
            };
            for _ in 0..n {
                let idx = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn printable() -> Vec<char> {
    (0x20u8..0x7F).map(char::from).collect()
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        set.push(chars[i + 1]);
                        i += 2;
                    } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                set.push(c);
                            }
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ]
                set
            }
            '\\' if i + 2 < chars.len() && chars[i + 1] == 'P' => {
                // `\PC`: not-category-C, i.e. any printable character.
                i += 3;
                printable()
            }
            '\\' if i + 1 < chars.len() => {
                let c = chars[i + 1];
                i += 2;
                vec![c]
            }
            '.' => {
                i += 1;
                printable()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').unwrap_or(0) + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or(0),
                    hi.trim().parse().unwrap_or(8),
                ),
                None => {
                    let n = body.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else {
            (1, 1)
        };
        let set = if set.is_empty() { printable() } else { set };
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// A boxed, type-erased strategy (used by `prop_oneof!`).
pub struct BoxedStrategy<T> {
    gen_fn: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Erase a strategy's type for heterogeneous composition.
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy {
        gen_fn: Box::new(move |rng| s.generate(rng)),
    }
}

/// Uniform choice between alternative strategies of one value type.
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Build from boxed alternatives.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { choices }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.choices.len() as u64) as usize;
        self.choices[idx].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` strategy: length uniform in `range`, elements from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        range: Range<usize>,
    }

    /// `vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, range: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, range }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.range.end - self.range.start).max(1) as u64;
            let len = self.range.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// An `Option` strategy: `None` one time in four.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Override the case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just, ProptestConfig,
        Strategy,
    };
}

/// Assert inside a property (panics with case context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice across heterogeneous strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest_items! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::TestRng::from_label(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::proptest_items! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_class_generation_respects_bounds() {
        let mut rng = crate::TestRng::from_label("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9]{0,10}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 11);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn printable_class_is_printable() {
        let mut rng = crate::TestRng::from_label("pc");
        for _ in 0..100 {
            let s = Strategy::generate(&"\\PC{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn streams_are_deterministic_per_label() {
        let mut a = crate::TestRng::from_label("x");
        let mut b = crate::TestRng::from_label("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_generates_and_runs(x in 0u32..100, label in "[a-z]{1,4}", opt in crate::option::of(1u16..)) {
            prop_assert!(x < 100);
            prop_assert!(!label.is_empty() && label.len() <= 4);
            if let Some(p) = opt {
                prop_assert!(p >= 1);
            }
        }

        #[test]
        fn oneof_and_tuples_compose(pair in prop_oneof![
            Just((0u8, String::new())),
            (1u8..4, "[a-z]{2}").prop_map(|(n, s)| (n, s)),
        ]) {
            let (n, s) = pair;
            prop_assert!(n < 4);
            prop_assert!(s.len() <= 2);
        }
    }
}
