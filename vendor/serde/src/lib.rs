//! Minimal in-repo shim for the `serde` crate.
//!
//! The real serde is a zero-copy serialisation *framework*; this shim
//! collapses it to the one concrete data model the workspace uses — an
//! owned JSON-like [`Value`] — while keeping the trait names, the derive
//! macros, and the externally-tagged enum representation identical, so
//! `#[derive(Serialize, Deserialize)]` code is source-compatible.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Produce the JSON data-model representation.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the JSON data model.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

/// Deserialisation error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build an error from a message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Fetch and deserialise one struct field by key. Missing keys
/// deserialise from `Null`, which lets `Option<T>` fields default to
/// `None` (matching real serde) while required fields report an error.
pub fn de_field<T: Deserialize>(m: &Map, key: &str) -> Result<T, DeError> {
    match m.get(key) {
        Some(v) => T::deserialize(v).map_err(|e| DeError::custom(format!("field `{key}`: {e}"))),
        None => T::deserialize(&Value::Null)
            .map_err(|_| DeError::custom(format!("missing field `{key}`"))),
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::from(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, DeError> {
                let n = match v {
                    Value::Number(n) => n.as_u64(),
                    _ => None,
                };
                n.and_then(|n| <$t>::try_from(n).ok()).ok_or_else(|| {
                    DeError::custom(format!(
                        "expected {}, got {v}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::from(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, DeError> {
                let n = match v {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                };
                n.and_then(|n| <$t>::try_from(n).ok()).ok_or_else(|| {
                    DeError::custom(format!(
                        "expected {}, got {v}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Number(Number::from(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<f64, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(DeError::custom(format!("expected f64, got {other}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Number(Number::from(*self as f64))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<f32, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<String, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::custom(format!("expected array, got {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<[T; N], DeError> {
        let items = Vec::<T>::deserialize(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected {N}-element array, got {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let Value::Array(items) = v else {
                    return Err(DeError::custom(format!("expected tuple array, got {v}")));
                };
                if items.len() != LEN {
                    return Err(DeError::custom(format!(
                        "expected {LEN}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// JSON object keys must be strings: string values key directly, any
/// other serialised key uses its compact JSON text (what real serde_json
/// does for the key types it supports, extended to structured keys).
fn key_string<K: Serialize>(key: &K) -> String {
    match key.serialize() {
        Value::String(s) => s,
        other => other.to_string(),
    }
}

fn key_from_str<K: Deserialize>(key: &str) -> Result<K, DeError> {
    if let Ok(k) = K::deserialize(&Value::String(key.to_string())) {
        return Ok(k);
    }
    let parsed =
        value::parse(key).map_err(|_| DeError::custom(format!("unparseable map key {key:?}")))?;
    K::deserialize(&parsed)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(key_string(k), v.serialize());
        }
        Value::Object(m)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let Value::Object(m) = v else {
            return Err(DeError::custom(format!("expected object, got {v}")));
        };
        let mut out = std::collections::BTreeMap::new();
        for (k, v) in m.iter() {
            out.insert(key_from_str(k)?, V::deserialize(v)?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn serialize(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k), v.serialize()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut m = Map::new();
        for (k, v) in pairs {
            m.insert(k, v);
        }
        Value::Object(m)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let Value::Object(m) = v else {
            return Err(DeError::custom(format!("expected object, got {v}")));
        };
        let mut out = std::collections::HashMap::new();
        for (k, v) in m.iter() {
            out.insert(key_from_str(k)?, V::deserialize(v)?);
        }
        Ok(out)
    }
}

macro_rules! impl_serde_display_fromstr {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::String(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::String(s) => s.parse().map_err(|_| {
                        DeError::custom(format!(
                            "invalid {}: {s:?}", stringify!($t)
                        ))
                    }),
                    other => Err(DeError::custom(format!(
                        "expected {} string, got {other}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_serde_display_fromstr!(
    std::net::IpAddr,
    std::net::Ipv4Addr,
    std::net::Ipv6Addr,
    std::net::SocketAddr
);

impl Deserialize for &'static str {
    /// Real serde borrows `&str` from the input document; this owned
    /// data model cannot, so the string is leaked. Only registry-style
    /// types with `&'static str` labels hit this path, and none are
    /// deserialised on any hot path.
    fn deserialize(v: &Value) -> Result<&'static str, DeError> {
        String::deserialize(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<char, DeError> {
        let s = String::deserialize(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Box<T>, DeError> {
        T::deserialize(v).map(Box::new)
    }
}
