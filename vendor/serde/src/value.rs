//! The owned JSON data model: [`Value`], [`Number`], and an
//! insertion-ordered [`Map`], plus a compact printer (`Display`) and a
//! strict recursive-descent parser ([`parse`]).

/// A JSON value.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map),
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy)]
pub struct Number(Repr);

#[derive(Debug, Clone, Copy)]
enum Repr {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    /// As u64 when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            Repr::U(n) => Some(n),
            Repr::I(n) => u64::try_from(n).ok(),
            Repr::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Repr::F(_) => None,
        }
    }

    /// As i64 when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            Repr::U(n) => i64::try_from(n).ok(),
            Repr::I(n) => Some(n),
            Repr::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Repr::F(_) => None,
        }
    }

    /// As f64 (always representable, possibly lossy).
    pub fn as_f64(&self) -> f64 {
        match self.0 {
            Repr::U(n) => n as f64,
            Repr::I(n) => n as f64,
            Repr::F(f) => f,
        }
    }
}

impl From<u64> for Number {
    fn from(n: u64) -> Number {
        Number(Repr::U(n))
    }
}

impl From<i64> for Number {
    fn from(n: i64) -> Number {
        if n >= 0 {
            Number(Repr::U(n as u64))
        } else {
            Number(Repr::I(n))
        }
    }
}

impl From<f64> for Number {
    fn from(f: f64) -> Number {
        Number(Repr::F(f))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.0, other.0) {
            (Repr::U(a), Repr::U(b)) => a == b,
            (Repr::I(a), Repr::I(b)) => a == b,
            (Repr::F(a), Repr::F(b)) => a == b,
            _ => {
                // Mixed representations compare numerically.
                match (self.as_i64(), other.as_i64()) {
                    (Some(a), Some(b)) => a == b,
                    _ => self.as_f64() == other.as_f64(),
                }
            }
        }
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            Repr::U(n) => write!(f, "{n}"),
            Repr::I(n) => write!(f, "{n}"),
            Repr::F(x) if x.is_finite() => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{:.1}", x)
                } else {
                    write!(f, "{x}")
                }
            }
            // Non-finite numbers have no JSON representation; serde_json
            // emits null.
            Repr::F(_) => f.write_str("null"),
        }
    }
}

/// An insertion-ordered string-keyed map.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or replace, preserving the original position on replace.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// True when the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Remove by key, returning the value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterate values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl PartialEq for Map {
    fn eq(&self, other: &Map) -> bool {
        // Key order is presentation, not identity (matches serde_json).
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

impl Value {
    /// As `&str` for strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As `u64` for representable numbers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `i64` for representable numbers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `f64` for numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As array slice.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As mutable array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// As mutable object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(*other as i64)
    }
}

impl PartialEq<u32> for Value {
    fn eq(&self, other: &u32) -> bool {
        self.as_u64() == Some(*other as u64)
    }
}

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64() == Some(*other as u64)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(Map::new());
        }
        let m = self
            .as_object_mut()
            .expect("cannot index non-object value by string key");
        if !m.contains_key(key) {
            m.insert(key.to_string(), Value::Null);
        }
        m.get_mut(key).unwrap()
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_into(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_into(out, item);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, v)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_into(out, v);
            }
            out.push('}');
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_into(&mut out, self);
        f.write_str(&out)
    }
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document. Trailing non-whitespace, truncation,
/// and malformed syntax are all errors (never panics).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        self.depth += 1;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined =
                                        0x10000 + ((hi - 0xD800) << 10) + lo.wrapping_sub(0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Re-decode the (possibly multi-byte) UTF-8 character.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .ok()
                        .or_else(|| std::str::from_utf8(&rest[..rest.utf8_error_len()]).ok())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::from(f)))
                .map_err(|_| self.err("invalid number"))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::Number(Number::from(u)))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Number(Number::from(i)))
        } else {
            // Integer overflow: fall back to float like serde_json's
            // arbitrary_precision-off behaviour.
            text.parse::<f64>()
                .map(|f| Value::Number(Number::from(f)))
                .map_err(|_| self.err("invalid number"))
        }
    }
}

trait Utf8ErrorLen {
    fn utf8_error_len(&self) -> usize;
}

impl Utf8ErrorLen for [u8] {
    fn utf8_error_len(&self) -> usize {
        match std::str::from_utf8(self) {
            Ok(_) => self.len(),
            Err(e) => e.valid_up_to(),
        }
    }
}
