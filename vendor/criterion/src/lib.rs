//! Minimal in-repo shim for `criterion`.
//!
//! A wall-clock timing harness with criterion's surface API — groups,
//! throughput annotation, `criterion_group!`/`criterion_main!` — but no
//! statistical analysis: each benchmark reports the median of
//! `sample_size` timed samples (after one warm-up), and throughput is
//! derived from that median. `cargo bench` and `cargo test` both link
//! against this (benches set `harness = false`).

use std::time::Instant;

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical items per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Median seconds per iteration, filled by `iter`.
    median_secs: f64,
}

impl Bencher {
    /// Run `f` repeatedly and record the median iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, and an estimate of per-iteration cost so quick bodies
        // get batched to a measurable duration.
        let warm = Instant::now();
        std::hint::black_box(f());
        let once = warm.elapsed().as_secs_f64();
        let batch = if once > 0.0 {
            ((0.002 / once) as usize).clamp(1, 10_000)
        } else {
            10_000
        };
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            times.push(start.elapsed().as_secs_f64() / batch as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.median_secs = times[times.len() / 2];
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn report(name: &str, median_secs: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median_secs > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / median_secs)
        }
        Some(Throughput::Bytes(n)) if median_secs > 0.0 => {
            format!("  ({:.1} MiB/s)", n as f64 / median_secs / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!("{name:<50} {:>12}{rate}", format_duration(median_secs));
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            median_secs: 0.0,
        };
        f(&mut b);
        report(name.as_ref(), b.median_secs, None);
        self
    }
}

/// A named group of benchmarks sharing throughput annotation.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            median_secs: 0.0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name.as_ref()),
            b.median_secs,
            self.throughput,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export for code written against `criterion::black_box`.
pub use std::hint::black_box;
