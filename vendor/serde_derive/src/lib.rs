//! Minimal in-repo shim for `serde_derive`.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline): parses
//! plain structs and enums — named, tuple/newtype, and unit shapes, plus
//! `#[serde(rename = "...")]` on fields — and emits impls of the shim
//! `serde::Serialize`/`serde::Deserialize` traits using the real crate's
//! externally-tagged enum representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

struct Field {
    ident: String,
    key: String,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    ident: String,
    shape: Shape,
}

enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: Kind,
}

/// Extract `rename = "..."` from a `#[serde(...)]` attribute body.
fn serde_rename(tokens: &[TokenTree]) -> Option<String> {
    match tokens {
        [TokenTree::Ident(tag), TokenTree::Group(args)] if tag.to_string() == "serde" => {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            let mut i = 0;
            while i < inner.len() {
                if let TokenTree::Ident(id) = &inner[i] {
                    if id.to_string() == "rename" && i + 2 < inner.len() {
                        if let TokenTree::Literal(lit) = &inner[i + 2] {
                            let text = lit.to_string();
                            return Some(text.trim_matches('"').to_string());
                        }
                    }
                }
                i += 1;
            }
            None
        }
        _ => None,
    }
}

/// Skip leading attributes, returning any serde rename found.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> Option<String> {
    let mut rename = None;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Bracket {
                        let body: Vec<TokenTree> = g.stream().into_iter().collect();
                        if let Some(r) = serde_rename(&body) {
                            rename = Some(r);
                        }
                        *i += 1;
                        continue;
                    }
                }
            }
            _ => break,
        }
    }
    rename
}

/// Skip `pub`, `pub(crate)` etc.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skip tokens until a top-level comma (tracking `<...>` nesting), used
/// for field types and variant discriminants.
fn skip_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let rename = skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let ident = name.to_string();
        i += 1;
        // `:`
        i += 1;
        skip_until_comma(&tokens, &mut i);
        // the comma itself
        i += 1;
        let key = rename.unwrap_or_else(|| ident.clone());
        fields.push(Field { ident, key });
    }
    fields
}

fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_until_comma(&tokens, &mut i);
        count += 1;
        i += 1; // consume comma
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let ident = name.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g);
                i += 1;
                Shape::Named(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g);
                i += 1;
                Shape::Tuple(n)
            }
            _ => Shape::Unit,
        };
        // Optional `= discriminant`, then the separating comma.
        skip_until_comma(&tokens, &mut i);
        i += 1;
        variants.push(Variant { ident, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let Some(TokenTree::Ident(kw)) = tokens.get(i) else {
        panic!("derive input is not a struct or enum");
    };
    let kw = kw.to_string();
    i += 1;
    let Some(TokenTree::Ident(name)) = tokens.get(i) else {
        panic!("derive input has no type name");
    };
    let name = name.to_string();
    i += 1;
    match kw.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Kind::Struct(Shape::Named(parse_named_fields(g)))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Kind::Struct(Shape::Tuple(count_tuple_fields(g)))
                }
                _ => Kind::Struct(Shape::Unit),
            };
            Item { name, kind: shape }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                panic!("enum {name} has no body");
            };
            Item {
                name,
                kind: Kind::Enum(parse_variants(g)),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Named(fields)) => {
            let mut s = String::from("let mut __m = serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.insert(String::from(\"{}\"), serde::Serialize::serialize(&self.{}));\n",
                    f.key, f.ident
                ));
            }
            s.push_str("serde::Value::Object(__m)");
            s
        }
        Kind::Struct(Shape::Tuple(1)) => "serde::Serialize::serialize(&self.0)".to_string(),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Struct(Shape::Unit) => "serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.ident;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::String(String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => {{ let mut __m = serde::Map::new(); \
                         __m.insert(String::from(\"{vn}\"), serde::Serialize::serialize(__f0)); \
                         serde::Value::Object(__m) }}\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{ let mut __m = serde::Map::new(); \
                             __m.insert(String::from(\"{vn}\"), \
                             serde::Value::Array(vec![{}])); serde::Value::Object(__m) }}\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.ident.clone()).collect();
                        let mut inner = String::from("let mut __fm = serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__fm.insert(String::from(\"{}\"), serde::Serialize::serialize({}));\n",
                                f.key, f.ident
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ {inner} let mut __m = serde::Map::new(); \
                             __m.insert(String::from(\"{vn}\"), serde::Value::Object(__fm)); \
                             serde::Value::Object(__m) }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl serde::Serialize for {name} {{\n\
         fn serialize(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Named(fields)) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{}: serde::de_field(__m, \"{}\")?,\n",
                    f.ident, f.key
                ));
            }
            format!(
                "match __v {{\n\
                 serde::Value::Object(__m) => Ok({name} {{\n{inits}}}),\n\
                 _ => Err(serde::DeError::custom(\"expected object for {name}\")),\n}}"
            )
        }
        Kind::Struct(Shape::Tuple(1)) => {
            format!("Ok({name}(serde::Deserialize::deserialize(__v)?))")
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::deserialize(&__a[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                 serde::Value::Array(__a) if __a.len() == {n} => Ok({name}({})),\n\
                 _ => Err(serde::DeError::custom(\"expected {n}-element array for {name}\")),\n}}",
                items.join(", ")
            )
        }
        Kind::Struct(Shape::Unit) => format!("{{ let _ = __v; Ok({name}) }}"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                let vn = &v.ident;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n")),
                    Shape::Tuple(1) => obj_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::deserialize(__inner)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::deserialize(&__a[{i}])?"))
                            .collect();
                        obj_arms.push_str(&format!(
                            "\"{vn}\" => match __inner {{\n\
                             serde::Value::Array(__a) if __a.len() == {n} => \
                             Ok({name}::{vn}({})),\n\
                             _ => Err(serde::DeError::custom(\
                             \"expected {n}-element array for {name}::{vn}\")),\n}},\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{}: serde::de_field(__fm, \"{}\")?,\n",
                                f.ident, f.key
                            ));
                        }
                        obj_arms.push_str(&format!(
                            "\"{vn}\" => match __inner {{\n\
                             serde::Value::Object(__fm) => Ok({name}::{vn} {{\n{inits}}}),\n\
                             _ => Err(serde::DeError::custom(\
                             \"expected object for {name}::{vn}\")),\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(serde::DeError::custom(format!(\
                 \"unknown {name} variant {{__other:?}}\"))),\n}},\n\
                 serde::Value::Object(__m) => {{\n\
                 let mut __it = __m.iter();\n\
                 let Some((__k, __inner)) = __it.next() else {{\n\
                 return Err(serde::DeError::custom(\"empty object for enum {name}\"));\n}};\n\
                 match __k.as_str() {{\n\
                 {obj_arms}\
                 __other => Err(serde::DeError::custom(format!(\
                 \"unknown {name} variant {{__other:?}}\"))),\n}}\n}},\n\
                 _ => Err(serde::DeError::custom(\"expected string or object for enum {name}\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &serde::Value) -> std::result::Result<Self, serde::DeError> {{\n\
         {body}\n}}\n}}\n"
    )
}
