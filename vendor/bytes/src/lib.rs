//! Minimal in-repo shim for the `bytes` crate.
//!
//! Implements the subset of `Bytes`/`BytesMut`/`Buf`/`BufMut` used by
//! `kt-store`'s binary codec and persistence layer. Semantics match the
//! real crate for that subset: multi-byte integers are big-endian, reads
//! past the end panic (callers guard with `has_remaining`/`remaining`),
//! and `Bytes` is a cheap-to-clone shared view with a read cursor.
//!
//! Like the real crate, `Bytes` can wrap any stable owner of a byte
//! region via [`Bytes::from_owner`] — the owner is kept alive behind an
//! `Arc` while any view exists. This is what lets a memory-mapped
//! segment file serve the same zero-copy read API as a heap buffer.

use std::ops::Range;
use std::sync::Arc;

/// Anything that can keep a byte region alive. The blanket impl means
/// any `Send + Sync` value qualifies; the region it hands out must stay
/// valid and immobile for as long as the owner is alive (true for
/// `Vec`'s heap buffer and for an `mmap` region held until `munmap`).
trait Owner: Send + Sync {}
impl<T: Send + Sync> Owner for T {}

/// An immutable, shareable byte buffer with an internal read cursor.
pub struct Bytes {
    /// Start of the full underlying region (not of the view).
    ptr: *const u8,
    /// Keeps the region alive; never moved once constructed, so `ptr`
    /// stays valid for the `Arc`'s whole lifetime.
    owner: Arc<dyn Owner>,
    start: usize,
    end: usize,
}

// SAFETY: the raw pointer is derived from (and outlived by) the
// `Send + Sync` owner; all access is read-only.
unsafe impl Send for Bytes {}
unsafe impl Sync for Bytes {}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Wrap an owner of a stable byte region without copying. The view
    /// covers `owner.as_ref()` in full; the owner is dropped when the
    /// last clone of the returned `Bytes` (and its slices) goes away.
    pub fn from_owner<T>(owner: T) -> Bytes
    where
        T: AsRef<[u8]> + Send + Sync + 'static,
    {
        let owner = Arc::new(owner);
        let region: &[u8] = (*owner).as_ref();
        let (ptr, end) = (region.as_ptr(), region.len());
        Bytes {
            ptr,
            owner,
            start: 0,
            end,
        }
    }

    /// Unread bytes remaining.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the unread bytes (no copy).
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && self.start + range.end <= self.end,
            "slice out of bounds"
        );
        Bytes {
            ptr: self.ptr,
            owner: Arc::clone(&self.owner),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the unread bytes out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: `start..end` never exceeds the owner's region, and the
        // owner (alive behind `self.owner`) keeps it valid and immobile.
        unsafe { std::slice::from_raw_parts(self.ptr.add(self.start), self.end - self.start) }
    }
}

impl Clone for Bytes {
    fn clone(&self) -> Bytes {
        Bytes {
            ptr: self.ptr,
            owner: Arc::clone(&self.owner),
            start: self.start,
            end: self.end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bytes")
            .field("start", &self.start)
            .field("end", &self.end)
            .field("data", &self.as_slice())
            .finish()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_owner(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// Read-side cursor operations.
pub trait Buf {
    /// Unread byte count.
    fn remaining(&self) -> usize;
    /// True when at least one unread byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Pop one byte. Panics when empty.
    fn get_u8(&mut self) -> u8;
    /// Pop a big-endian u16. Panics when under 2 bytes remain.
    fn get_u16(&mut self) -> u16 {
        let hi = self.get_u8() as u16;
        let lo = self.get_u8() as u16;
        (hi << 8) | lo
    }
    /// Pop a little-endian u16. Panics when under 2 bytes remain.
    fn get_u16_le(&mut self) -> u16 {
        let lo = self.get_u8() as u16;
        let hi = self.get_u8() as u16;
        (hi << 8) | lo
    }
    /// Pop a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let hi = self.get_u16() as u32;
        let lo = self.get_u16() as u32;
        (hi << 16) | lo
    }
    /// Pop a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let hi = self.get_u32() as u64;
        let lo = self.get_u32() as u64;
        (hi << 32) | lo
    }
    /// Pop `len` bytes as a new `Bytes`. Panics when fewer remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
    /// Skip `cnt` bytes. Panics when fewer remain.
    fn advance(&mut self, cnt: usize);
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 past end of buffer");
        let b = self.as_slice()[0];
        self.start += 1;
        b
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "copy_to_bytes past end of buffer");
        let out = self.slice(0..len);
        self.start += len;
        out
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.start += cnt;
    }
}

/// Write-side operations.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, b: u8);
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_u8((v >> 8) as u8);
        self.put_u8(v as u8);
    }
    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_u8(v as u8);
        self.put_u8((v >> 8) as u8);
    }
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_u16((v >> 16) as u16);
        self.put_u16(v as u16);
    }
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_u32((v >> 32) as u32);
        self.put_u32(v as u32);
    }
    /// Append a byte slice.
    fn put_slice(&mut self, s: &[u8]);
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u16(0x4B54);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(u64::MAX - 1);
        let mut b = buf.freeze();
        assert_eq!(b.as_ref()[0], 0x4B, "big-endian like the real crate");
        assert_eq!(b.get_u16(), 0x4B54);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), u64::MAX - 1);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slices_share_without_copying() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mut s = b.slice(1..4);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        assert_eq!(s.get_u8(), 2);
        assert_eq!(s.remaining(), 2);
        assert_eq!(b.len(), 5, "parent cursor untouched");
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let head = b.copy_to_bytes(2);
        assert_eq!(head.to_vec(), vec![9, 8]);
        assert_eq!(b.remaining(), 2);
    }

    #[test]
    #[should_panic]
    fn reading_past_end_panics() {
        let mut b = Bytes::new();
        let _ = b.get_u8();
    }

    #[test]
    fn from_owner_shares_the_owner_region_without_copying() {
        struct Region(Box<[u8]>);
        impl AsRef<[u8]> for Region {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
        let region = Region(vec![10, 20, 30, 40].into_boxed_slice());
        let addr = region.as_ref().as_ptr() as usize;
        let b = Bytes::from_owner(region);
        assert_eq!(b.as_ref().as_ptr() as usize, addr, "no copy");
        let s = b.slice(1..3);
        drop(b);
        assert_eq!(s.to_vec(), vec![20, 30], "slice keeps the owner alive");
    }
}
