//! Minimal in-repo shim for `serde_json`, backed by the shim `serde`
//! crate's owned [`Value`] data model: the `json!` macro, compact
//! printing, strict parsing, and the `to_string`/`from_str`/`to_value`/
//! `from_value` entry points.

pub use serde::value::ParseError;
pub use serde::{Map, Number, Value};

/// serde_json's error type: parse or data-shape failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Error {
        Error(e.to_string())
    }
}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.to_string())
    }
}

/// Serialise any `Serialize` type to its `Value` representation.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Serialise to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize().to_string())
}

/// Parse JSON text into any `Deserialize` type (including `Value`).
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let v = serde::value::parse(input)?;
    Ok(T::deserialize(&v)?)
}

/// Rebuild a `Deserialize` type from an owned `Value`.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::deserialize(&value)?)
}

/// Build a [`Value`] from JSON-like syntax. Supports the literal forms
/// the workspace uses: `null`, nested `{ "key": value }` objects,
/// `[ ... ]` arrays, and arbitrary `Serialize` expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => {{
        let mut __items: Vec<$crate::Value> = Vec::new();
        $crate::json_array_internal!(__items; $($tt)*);
        $crate::Value::Array(__items)
    }};
    ({ $($tt:tt)* }) => {{
        let mut __map = $crate::Map::new();
        $crate::json_object_internal!(__map; $($tt)*);
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal: munch `"key": value` pairs into a map.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    ($map:ident;) => {};
    ($map:ident; ,) => {};
    // Nested object value.
    ($map:ident; $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_object_internal!($map; $($rest)*);
    };
    ($map:ident; $key:literal : { $($inner:tt)* }) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
    };
    // Nested array value.
    ($map:ident; $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_object_internal!($map; $($rest)*);
    };
    ($map:ident; $key:literal : [ $($inner:tt)* ]) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
    };
    // Null keyword value.
    ($map:ident; $key:literal : null , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $crate::json_object_internal!($map; $($rest)*);
    };
    ($map:ident; $key:literal : null) => {
        $map.insert($key.to_string(), $crate::Value::Null);
    };
    // Expression value (consumes up to the next top-level comma).
    ($map:ident; $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::to_value(&$value));
        $crate::json_object_internal!($map; $($rest)*);
    };
    ($map:ident; $key:literal : $value:expr) => {
        $map.insert($key.to_string(), $crate::to_value(&$value));
    };
}

/// Internal: munch array elements.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    ($items:ident;) => {};
    ($items:ident; ,) => {};
    ($items:ident; { $($inner:tt)* } , $($rest:tt)*) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::json_array_internal!($items; $($rest)*);
    };
    ($items:ident; { $($inner:tt)* }) => {
        $items.push($crate::json!({ $($inner)* }));
    };
    ($items:ident; [ $($inner:tt)* ] , $($rest:tt)*) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::json_array_internal!($items; $($rest)*);
    };
    ($items:ident; [ $($inner:tt)* ]) => {
        $items.push($crate::json!([ $($inner)* ]));
    };
    ($items:ident; null , $($rest:tt)*) => {
        $items.push($crate::Value::Null);
        $crate::json_array_internal!($items; $($rest)*);
    };
    ($items:ident; null) => {
        $items.push($crate::Value::Null);
    };
    ($items:ident; $value:expr , $($rest:tt)*) => {
        $items.push($crate::to_value(&$value));
        $crate::json_array_internal!($items; $($rest)*);
    };
    ($items:ident; $value:expr) => {
        $items.push($crate::to_value(&$value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_documents() {
        let time = 9_u64;
        let v = json!({
            "time": time.to_string(),
            "source": { "id": 5, "type": 1 },
            "items": [1, 2, { "deep": null }],
            "flag": true,
        });
        assert_eq!(v["time"], "9");
        assert_eq!(v["source"]["id"].as_u64(), Some(5));
        assert_eq!(v["items"].as_array().unwrap().len(), 3);
        assert!(v["items"][2]["deep"].is_null());
        assert_eq!(v["flag"], true);
    }

    #[test]
    fn round_trip_through_text() {
        let v = json!({
            "s": "a\"b\\c\nd",
            "neg": -105,
            "big": 18_446_744_073_709_551_615u64,
            "f": 1.5,
            "empty": {},
            "arr": [],
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn insertion_order_is_preserved_in_output() {
        let v = json!({ "constants": 1, "events": 2 });
        let text = to_string(&v).unwrap();
        assert!(text.find("constants").unwrap() < text.find("events").unwrap());
    }

    #[test]
    fn truncated_documents_error() {
        for cut in 1..20 {
            let full = r#"{"a": [1, 2, {"b": "x"}]}"#;
            if cut < full.len() {
                assert!(from_str::<Value>(&full[..cut]).is_err(), "cut {cut}");
            }
        }
    }

    #[test]
    fn numbers_parse_into_best_representation() {
        assert_eq!(from_str::<Value>("42").unwrap().as_u64(), Some(42));
        assert_eq!(from_str::<Value>("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(from_str::<Value>("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(from_str::<Value>("1e3").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn index_mut_inserts_and_overwrites() {
        let mut v = json!({ "params": { "x": 1 } });
        v["time"] = json!(1234);
        v["params"] = json!(9);
        assert_eq!(v["time"].as_u64(), Some(1234));
        assert_eq!(v["params"].as_u64(), Some(9));
        v.as_object_mut().unwrap().remove("params");
        assert!(v.get("params").is_none());
    }
}
