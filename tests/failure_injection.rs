//! Failure injection: the pipeline must stay correct when the network,
//! the capture, or the input data misbehaves.

use knock_talk::analysis::detect::detect_local;
use knock_talk::browser::{Browser, BrowserConfig, World};
use knock_talk::crawler::{run_crawl, CrawlConfig, CrawlJob};
use knock_talk::netbase::{DomainName, Os, OsSet};
use knock_talk::netlog::{Capture, NetError};
use knock_talk::simnet::connectivity::Outage;
use knock_talk::store::{CrawlId, LoadOutcome, TelemetryStore, VisitRecord};
use knock_talk::webgen::{Availability, Behavior, NativeApp, PlantedBehavior, WebSite};

fn site(domain: &str) -> WebSite {
    WebSite::plain(DomainName::parse(domain).unwrap(), Some(1), 3)
}

#[test]
fn every_availability_fate_maps_to_its_table1_error() {
    let cases = [
        (Availability::NxDomain, NetError::NameNotResolved),
        (Availability::Refused, NetError::ConnectionRefused),
        (Availability::Reset, NetError::ConnectionReset),
        (Availability::CertInvalid, NetError::CertCommonNameInvalid),
    ];
    for (fate, expected) in cases {
        let mut s = site("failing.example");
        s.set_availability_all(fate);
        let store = TelemetryStore::new();
        let jobs = [CrawlJob {
            site: &s,
            malicious_category: None,
        }];
        let stats = run_crawl(
            &jobs,
            &CrawlConfig::paper(CrawlId::top2020(), Os::Windows, 1),
            &store,
        );
        assert_eq!(stats.failure_count(expected), 1, "{fate:?} → {expected:?}");
    }
}

#[test]
fn dns_flap_differs_across_oses() {
    // A site that is NXDOMAIN only during the Mac crawl (sites flap —
    // the three OS crawls run at different times, §3.1).
    let mut s = site("flappy.example");
    s.set_availability(Os::MacOs, Availability::NxDomain);
    let store = TelemetryStore::new();
    let jobs = [CrawlJob {
        site: &s,
        malicious_category: None,
    }];
    for os in Os::ALL {
        run_crawl(&jobs, &CrawlConfig::paper(CrawlId::top2020(), os, 1), &store);
    }
    let mac = store
        .get(&CrawlId::top2020(), "flappy.example", Os::MacOs)
        .unwrap();
    assert_eq!(mac.outcome, LoadOutcome::Error(NetError::NameNotResolved));
    let win = store
        .get(&CrawlId::top2020(), "flappy.example", Os::Windows)
        .unwrap();
    assert!(win.outcome.is_success());
}

#[test]
fn outage_mid_crawl_delays_everything_after_it() {
    let sites: Vec<WebSite> = (0..6).map(|i| site(&format!("s{i}.example"))).collect();
    let jobs: Vec<CrawlJob> = sites
        .iter()
        .map(|site| CrawlJob {
            site,
            malicious_category: None,
        })
        .collect();
    let store = TelemetryStore::new();
    let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 1);
    config.workers = 1;
    // The outage begins after ~2 visits' worth of wall time.
    config.outages = vec![Outage {
        start: 30_000,
        end: 300_000,
    }];
    let stats = run_crawl(&jobs, &config, &store);
    assert_eq!(stats.attempted, 6, "all sites eventually crawled");
    assert_eq!(stats.failed(), 0, "outage never recorded as site failure");
    assert!(stats.connectivity_retries >= 1);
}

#[test]
fn truncated_capture_still_yields_detections() {
    // Build a behaviour-rich visit, truncate the JSON at many points,
    // and require: never a panic, and monotone evidence (a longer
    // prefix never yields fewer local detections).
    let mut s = site("arena.example");
    s.behaviors.push(PlantedBehavior {
        behavior: Behavior::NativeApp(NativeApp::Discord),
        os_set: OsSet::ALL,
        base_delay_ms: 1_000,
    });
    let mut world = World::build(std::slice::from_ref(&s), Os::Linux, 3);
    let mut browser = Browser::new(&mut world, BrowserConfig::paper(Os::Linux), 3);
    let result = browser.visit(&s);
    let json = result.capture.to_json();

    let detections_at = |cut: usize| -> Option<usize> {
        let capture = Capture::parse(&json[..cut]).ok()?;
        let record = VisitRecord {
            crawl: CrawlId::top2020(),
            domain: "arena.example".into(),
            rank: Some(1),
            malicious_category: None,
            os: Os::Linux,
            outcome: LoadOutcome::Success,
            loaded_at_ms: 0,
            events: capture.events,
        };
        Some(detect_local(&record).len())
    };
    let full = detections_at(json.len()).expect("full capture parses");
    assert_eq!(full, 10, "all ten Discord probes detected");
    let mut last = 0;
    for pct in (10..=100).step_by(5) {
        let cut = json.len() * pct / 100;
        if let Some(n) = detections_at(cut) {
            assert!(n >= last, "evidence shrank: {last} → {n} at {pct}%");
            assert!(n <= full);
            last = n;
        }
    }
    assert_eq!(last, full);
}

#[test]
fn store_rejects_corrupt_records_gracefully() {
    use knock_talk::store as ktstore;
    // Random corruption of encoded bytes must error, never panic.
    let record = VisitRecord {
        crawl: CrawlId::malicious(),
        domain: "x.example".into(),
        rank: None,
        malicious_category: Some(2),
        os: Os::MacOs,
        outcome: LoadOutcome::Error(NetError::TimedOut),
        loaded_at_ms: 0,
        events: Vec::new(),
    };
    let encoded = ktstore::codec::encode(&record);
    for i in 0..encoded.len() {
        let mut corrupt = encoded.to_vec();
        corrupt[i] ^= 0xFF;
        // Either decodes to something or errors; must not panic.
        let _ = ktstore::codec::decode(bytes_from(corrupt));
    }
}

fn bytes_from(v: Vec<u8>) -> bytes::Bytes {
    bytes::Bytes::from(v)
}

#[test]
fn pages_that_never_finish_do_not_poison_the_window() {
    // OtherError sites may be black holes: the crawl must record the
    // failure (or in-flight state) and move on.
    let mut s = site("tarpit.example");
    s.set_availability_all(Availability::OtherError);
    let store = TelemetryStore::new();
    let jobs = [CrawlJob {
        site: &s,
        malicious_category: None,
    }];
    let stats = run_crawl(
        &jobs,
        &CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 1),
        &store,
    );
    assert_eq!(stats.attempted, 1);
    assert_eq!(stats.failed(), 1);
    let record = store
        .get(&CrawlId::top2020(), "tarpit.example", Os::Linux)
        .unwrap();
    assert!(matches!(
        record.outcome,
        LoadOutcome::Error(NetError::TimedOut) | LoadOutcome::Error(NetError::EmptyResponse)
    ));
    // Telemetry stays inside the window.
    assert!(record.events.iter().all(|e| e.time < 20_000));
}
