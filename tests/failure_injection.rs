//! Failure injection: the pipeline must stay correct when the network,
//! the capture, or the input data misbehaves.

use knock_talk::analysis::detect::detect_local;
use knock_talk::analysis::report::health_table;
use knock_talk::browser::{Browser, BrowserConfig, World};
use knock_talk::crawler::{run_crawl, CrawlConfig, CrawlJob};
use knock_talk::faults::{Fault, FaultPlan};
use knock_talk::netbase::{DomainName, Os, OsSet};
use knock_talk::netlog::{Capture, NetError};
use knock_talk::simnet::connectivity::Outage;
use knock_talk::store::{CrawlId, LoadOutcome, TelemetryStore, VisitRecord};
use knock_talk::webgen::{Availability, Behavior, NativeApp, PlantedBehavior, WebSite};

fn site(domain: &str) -> WebSite {
    WebSite::plain(DomainName::parse(domain).unwrap(), Some(1), 3)
}

#[test]
fn every_availability_fate_maps_to_its_table1_error() {
    let cases = [
        (Availability::NxDomain, NetError::NameNotResolved),
        (Availability::Refused, NetError::ConnectionRefused),
        (Availability::Reset, NetError::ConnectionReset),
        (Availability::CertInvalid, NetError::CertCommonNameInvalid),
    ];
    for (fate, expected) in cases {
        let mut s = site("failing.example");
        s.set_availability_all(fate);
        let store = TelemetryStore::new();
        let jobs = [CrawlJob {
            site: &s,
            malicious_category: None,
        }];
        let stats = run_crawl(
            &jobs,
            &CrawlConfig::paper(CrawlId::top2020(), Os::Windows, 1),
            &store,
        );
        assert_eq!(stats.failure_count(expected), 1, "{fate:?} → {expected:?}");
    }
}

#[test]
fn dns_flap_differs_across_oses() {
    // A site that is NXDOMAIN only during the Mac crawl (sites flap —
    // the three OS crawls run at different times, §3.1).
    let mut s = site("flappy.example");
    s.set_availability(Os::MacOs, Availability::NxDomain);
    let store = TelemetryStore::new();
    let jobs = [CrawlJob {
        site: &s,
        malicious_category: None,
    }];
    for os in Os::ALL {
        run_crawl(
            &jobs,
            &CrawlConfig::paper(CrawlId::top2020(), os, 1),
            &store,
        );
    }
    let mac = store
        .get(&CrawlId::top2020(), "flappy.example", Os::MacOs)
        .unwrap();
    assert_eq!(mac.outcome, LoadOutcome::Error(NetError::NameNotResolved));
    let win = store
        .get(&CrawlId::top2020(), "flappy.example", Os::Windows)
        .unwrap();
    assert!(win.outcome.is_success());
}

#[test]
fn outage_mid_crawl_delays_everything_after_it() {
    let sites: Vec<WebSite> = (0..6).map(|i| site(&format!("s{i}.example"))).collect();
    let jobs: Vec<CrawlJob> = sites
        .iter()
        .map(|site| CrawlJob {
            site,
            malicious_category: None,
        })
        .collect();
    let store = TelemetryStore::new();
    let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 1);
    config.workers = 1;
    // The outage begins after ~2 visits' worth of wall time.
    config.outages = vec![Outage {
        start: 30_000,
        end: 300_000,
    }];
    let stats = run_crawl(&jobs, &config, &store);
    assert_eq!(stats.attempted, 6, "all sites eventually crawled");
    assert_eq!(stats.failed(), 0, "outage never recorded as site failure");
    assert!(stats.connectivity_retries >= 1);
}

#[test]
fn truncated_capture_still_yields_detections() {
    // Build a behaviour-rich visit, truncate the JSON at many points,
    // and require: never a panic, and monotone evidence (a longer
    // prefix never yields fewer local detections).
    let mut s = site("arena.example");
    s.behaviors.push(PlantedBehavior {
        behavior: Behavior::NativeApp(NativeApp::Discord),
        os_set: OsSet::ALL,
        base_delay_ms: 1_000,
    });
    let mut world = World::build(std::slice::from_ref(&s), Os::Linux, 3);
    let mut browser = Browser::new(&mut world, BrowserConfig::paper(Os::Linux), 3);
    let result = browser.visit(&s);
    let json = result.capture.to_json();

    let detections_at = |cut: usize| -> Option<usize> {
        let capture = Capture::parse(&json[..cut]).ok()?;
        let record = VisitRecord {
            crawl: CrawlId::top2020(),
            domain: "arena.example".into(),
            rank: Some(1),
            malicious_category: None,
            os: Os::Linux,
            outcome: LoadOutcome::Success,
            loaded_at_ms: 0,
            events: capture.events,
        };
        Some(detect_local(&record).len())
    };
    let full = detections_at(json.len()).expect("full capture parses");
    assert_eq!(full, 10, "all ten Discord probes detected");
    let mut last = 0;
    for pct in (10..=100).step_by(5) {
        let cut = json.len() * pct / 100;
        if let Some(n) = detections_at(cut) {
            assert!(n >= last, "evidence shrank: {last} → {n} at {pct}%");
            assert!(n <= full);
            last = n;
        }
    }
    assert_eq!(last, full);
}

#[test]
fn store_rejects_corrupt_records_gracefully() {
    use knock_talk::store as ktstore;
    // Random corruption of encoded bytes must error, never panic.
    let record = VisitRecord {
        crawl: CrawlId::malicious(),
        domain: "x.example".into(),
        rank: None,
        malicious_category: Some(2),
        os: Os::MacOs,
        outcome: LoadOutcome::Error(NetError::TimedOut),
        loaded_at_ms: 0,
        events: Vec::new(),
    };
    let encoded = ktstore::codec::encode(&record);
    for i in 0..encoded.len() {
        let mut corrupt = encoded.to_vec();
        corrupt[i] ^= 0xFF;
        // Either decodes to something or errors; must not panic.
        let _ = ktstore::codec::decode(bytes_from(corrupt));
    }
}

fn bytes_from(v: Vec<u8>) -> bytes::Bytes {
    bytes::Bytes::from(v)
}

#[test]
fn pages_that_never_finish_do_not_poison_the_window() {
    // OtherError sites may be black holes: the crawl must record the
    // failure (or in-flight state) and move on.
    let mut s = site("tarpit.example");
    s.set_availability_all(Availability::OtherError);
    let store = TelemetryStore::new();
    let jobs = [CrawlJob {
        site: &s,
        malicious_category: None,
    }];
    let stats = run_crawl(
        &jobs,
        &CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 1),
        &store,
    );
    assert_eq!(stats.attempted, 1);
    assert_eq!(stats.failed(), 1);
    let record = store
        .get(&CrawlId::top2020(), "tarpit.example", Os::Linux)
        .unwrap();
    assert!(matches!(
        record.outcome,
        LoadOutcome::Error(NetError::TimedOut) | LoadOutcome::Error(NetError::EmptyResponse)
    ));
    // Telemetry stays inside the window.
    assert!(record.events.iter().all(|e| e.time < 20_000));
}

#[test]
fn injected_panics_do_not_abort_the_crawl() {
    // Panics at a 40% rate across eight sites: every site is still
    // accounted for, panicking visits become quarantined Crashed
    // records, and run_crawl returns normally.
    let sites: Vec<WebSite> = (0..8).map(|i| site(&format!("p{i}.example"))).collect();
    let jobs: Vec<CrawlJob> = sites
        .iter()
        .map(|site| CrawlJob {
            site,
            malicious_category: None,
        })
        .collect();
    let store = TelemetryStore::new();
    let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 9);
    config.faults = FaultPlan::none(9).with_rate(Fault::WorkerPanic, 0.4);
    let stats = run_crawl(&jobs, &config, &store);
    assert_eq!(stats.attempted, jobs.len(), "no site lost to a panic");
    assert!(stats.crashed > 0, "the plan injected at least one panic");
    assert_eq!(store.len(), jobs.len(), "every site has a record");
    let crashed_records = store
        .crawl_records_on(&CrawlId::top2020(), Os::Linux)
        .iter()
        .filter(|r| r.outcome.is_crashed())
        .count();
    assert_eq!(crashed_records, stats.crashed);
}

#[test]
fn transient_reset_recovers_on_recrawl_and_lands_in_health_report() {
    // The acceptance scenario: a site failing its first two visits
    // with CONN_RESET but succeeding on the recrawl must appear in the
    // store as a success and in HealthReport.recovered — not in
    // Table 1's error columns.
    let s = site("comeback.example");
    let store = TelemetryStore::new();
    let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Windows, 3);
    config.faults = FaultPlan::none(3).with_first_attempts(Fault::ConnectionReset, 2);
    let jobs = [CrawlJob {
        site: &s,
        malicious_category: None,
    }];
    let stats = run_crawl(&jobs, &config, &store);
    let record = store
        .get(&CrawlId::top2020(), "comeback.example", Os::Windows)
        .unwrap();
    assert!(record.outcome.is_success(), "recrawl overwrote the failure");
    assert_eq!(stats.failed(), 0);
    let table1_total: usize = stats.table1_errors().iter().map(|(_, n)| n).sum();
    assert_eq!(table1_total, 0, "no error column for a recovered site");
    let (text, reports) = health_table(&[("Top 100K: 2020", Os::Windows, &stats)]);
    assert_eq!(reports[0].recovered, 1);
    assert_eq!(reports[0].recrawled, 1);
    assert_eq!(reports[0].gave_up, 0);
    assert!(text.contains("recovered"));
}

#[test]
fn injected_dns_flap_is_retried_in_place() {
    // One transient DNS timeout on attempt 0; the in-place retry
    // succeeds without involving the recrawl queue.
    let s = site("blinky.example");
    let store = TelemetryStore::new();
    let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 4);
    config.faults = FaultPlan::none(4).with_first_attempts(Fault::DnsFlap, 1);
    let jobs = [CrawlJob {
        site: &s,
        malicious_category: None,
    }];
    let stats = run_crawl(&jobs, &config, &store);
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.recovered, 1);
    assert_eq!(stats.recrawled, 0);
    assert!(store
        .get(&CrawlId::top2020(), "blinky.example", Os::Linux)
        .unwrap()
        .outcome
        .is_success());
}

#[test]
fn truncation_fault_loses_telemetry_not_the_visit() {
    // An injected capture truncation keeps the visit's Success outcome
    // and leaves a parseable prefix for detection.
    let mut s = site("cutoff.example");
    s.behaviors.push(PlantedBehavior {
        behavior: Behavior::NativeApp(NativeApp::Discord),
        os_set: OsSet::ALL,
        base_delay_ms: 1_000,
    });
    let store = TelemetryStore::new();
    let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 6);
    config.faults = FaultPlan::none(6).with_first_attempts(Fault::TruncatedCapture, 1);
    let jobs = [CrawlJob {
        site: &s,
        malicious_category: None,
    }];
    let stats = run_crawl(&jobs, &config, &store);
    assert_eq!(
        stats.successful, 1,
        "truncation loses telemetry, not the visit"
    );
    let record = store
        .get(&CrawlId::top2020(), "cutoff.example", Os::Linux)
        .unwrap();
    assert!(record.outcome.is_success());
    assert!(
        detect_local(&record).len() <= 10,
        "prefix detects without panicking"
    );
}
