//! NetLog interoperability: the analysis pipeline must accept capture
//! documents shaped like real `chrome://net-export` output, including
//! material we do not model (extra constants, unknown event types,
//! numeric timestamps) — and our own output must re-parse bit-exactly.

use knock_talk::analysis::detect::detect_local;
use knock_talk::netbase::Os;
use knock_talk::netlog::{Capture, EventType, SourceType};
use knock_talk::store::{CrawlId, LoadOutcome, VisitRecord};

/// A hand-written capture resembling a real Chrome export: one page
/// request, one ThreatMetrix-style WSS probe, one unknown event type,
/// and an event with a numeric (not string) time.
fn chromeish_capture() -> String {
    let url_request_code = EventType::UrlRequestStartJob.code();
    let ws_code = EventType::WebSocketSendRequestHeaders.code();
    let url_source = SourceType::UrlRequest.code();
    let ws_source = SourceType::WebSocket.code();
    format!(
        r#"{{
  "constants": {{
    "logEventTypes": {{"URL_REQUEST_START_JOB": {url_request_code}, "WEBSOCKET_SEND_REQUEST_HEADERS": {ws_code}}},
    "logSourceType": {{"URL_REQUEST": {url_source}, "WEBSOCKET": {ws_source}}},
    "logEventPhase": {{"PHASE_NONE": 0, "PHASE_BEGIN": 1, "PHASE_END": 2}},
    "netError": {{"ERR_NAME_NOT_RESOLVED": -105}},
    "clientInfo": {{"name": "Chrome", "version": "84.0.4147.89"}},
    "activeFieldTrialGroups": []
  }},
  "events": [
    {{"time": "1000", "type": {url_request_code},
      "source": {{"id": 5, "type": {url_source}}}, "phase": 1,
      "params": {{"url": "https://shop.example/", "method": "GET", "load_flags": 0}}}},
    {{"time": 9500, "type": {ws_code},
      "source": {{"id": 6, "type": {ws_source}}}, "phase": 1,
      "params": {{"url": "wss://localhost:3389/"}}}},
    {{"time": "9600", "type": 31337,
      "source": {{"id": 7, "type": {url_source}}}, "phase": 0,
      "params": {{"mystery": true}}}}
  ]
}}"#
    )
}

#[test]
fn chromeish_document_parses_with_unknowns_skipped() {
    let capture = Capture::parse(&chromeish_capture()).unwrap();
    assert_eq!(capture.len(), 2, "two modelled events");
    assert_eq!(capture.skipped, 1, "the type-31337 event is skipped");
    assert!(!capture.truncated);
    // Numeric and string times both accepted.
    assert_eq!(capture.events[0].time, 1_000);
    assert_eq!(capture.events[1].time, 9_500);
}

#[test]
fn detection_works_on_chromeish_input() {
    let capture = Capture::parse(&chromeish_capture()).unwrap();
    let record = VisitRecord {
        crawl: CrawlId::top2020(),
        domain: "shop.example".into(),
        rank: Some(104),
        malicious_category: None,
        os: Os::Windows,
        outcome: LoadOutcome::Success,
        loaded_at_ms: 1_000,
        events: capture.events,
    };
    let observations = detect_local(&record);
    assert_eq!(observations.len(), 1);
    let obs = &observations[0];
    assert_eq!(obs.port, 3389);
    assert!(obs.websocket);
    assert_eq!(obs.delay_ms, 8_500, "9.5 s probe minus 1 s page load");
}

#[test]
fn own_output_round_trips_and_carries_constants() {
    let capture = Capture::parse(&chromeish_capture()).unwrap();
    let rendered = capture.to_json();
    let reparsed = Capture::parse(&rendered).unwrap();
    assert_eq!(reparsed.events, capture.events);
    // The standard constant tables are embedded in our output.
    assert!(rendered.contains("logEventTypes"));
    assert!(rendered.contains("URL_REQUEST_START_JOB"));
    assert!(rendered.contains("ERR_NAME_NOT_RESOLVED"));
}

#[test]
fn truncated_chromeish_document_recovers() {
    let full = chromeish_capture();
    // Cut inside the second event.
    let cut = full.find("wss://localhost").unwrap() + 5;
    let capture = Capture::parse(&full[..cut]).unwrap();
    assert!(capture.truncated);
    assert_eq!(capture.len(), 1, "the complete first event survives");
    assert_eq!(capture.events[0].url(), Some("https://shop.example/"));
}
