//! Crash durability end to end: kill the process at every journal
//! frame boundary, resume, and require the analysis tables to come out
//! byte-identical to a run that never crashed; repair damaged journals
//! with fsck and resume from the repaired file; keep loading the
//! legacy `KTSTORE1` snapshot format.

use knock_talk::analysis::report::{health_table, localhost_table, table1};
use knock_talk::analysis::{analyze_crawl_par, detect_local};
use knock_talk::crawler::{
    run_crawl, run_crawl_journaled, run_crawl_resumed, split_campaigns, CrawlConfig, CrawlJob,
    ResumePlan,
};
use knock_talk::faults::{Fault, FaultPlan};
use knock_talk::netbase::{DomainName, Os, OsSet};
use knock_talk::store::journal::{kind, scan};
use knock_talk::store::{
    fsck, persist, replay, CrawlId, FsckOptions, JournalConfig, JournalWriter, KillMode, KillSpec,
    TelemetryStore,
};
use knock_talk::study::campaigns;
use knock_talk::webgen::{Availability, Behavior, NativeApp, PlantedBehavior, WebSite};
use knock_talk::{Study, StudyConfig};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kt-durability-{name}-{}.ktj", std::process::id()))
}

/// A small campaign with every kind of journal frame: plain successes,
/// localhost behaviour (so detection tables have rows), hard failures,
/// and transient faults that exercise retries and the recrawl pass.
fn sweep_sites() -> Vec<WebSite> {
    let mut sites: Vec<WebSite> = (0..10)
        .map(|i| {
            WebSite::plain(
                DomainName::parse(&format!("boundary-{i}.example")).unwrap(),
                Some(i as u32 + 1),
                3,
            )
        })
        .collect();
    sites[2].behaviors.push(PlantedBehavior {
        behavior: Behavior::NativeApp(NativeApp::Discord),
        os_set: OsSet::ALL,
        base_delay_ms: 1_000,
    });
    sites[7].set_availability_all(Availability::Refused);
    sites
}

fn sweep_config() -> CrawlConfig {
    let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Windows, 5);
    config.faults = FaultPlan::none(5)
        .with_rate(Fault::ConnectionReset, 0.25)
        .with_rate(Fault::DnsFlap, 0.2);
    config
}

/// Every derived artefact the paper's tables read from one campaign,
/// rendered to text so "byte-identical" means exactly that.
fn campaign_tables(store: &TelemetryStore, stats: &knock_talk::crawler::CrawlStats) -> String {
    let analysis = analyze_crawl_par(store, &CrawlId::top2020(), 2);
    let mut out = table1(&[("Top 100K: 2020", Os::Windows, stats)]).0;
    out.push_str(&health_table(&[("Top 100K: 2020", Os::Windows, stats)]).0);
    out.push_str(&localhost_table(&analysis.sites).0);
    out
}

#[test]
fn kill_at_every_frame_boundary_resumes_to_identical_tables() {
    let sites = sweep_sites();
    let jobs: Vec<CrawlJob> = sites
        .iter()
        .map(|site| CrawlJob {
            site,
            malicious_category: None,
        })
        .collect();
    let config = sweep_config();

    let baseline_store = TelemetryStore::new();
    let baseline_stats = run_crawl(&jobs, &config, &baseline_store);
    let baseline_records = baseline_store.crawl_records(&CrawlId::top2020());
    let baseline_tables = campaign_tables(&baseline_store, &baseline_stats);

    // Probe run: how many frames does the uninterrupted journal hold?
    let probe = tmp("sweep-probe");
    let journal = JournalWriter::create(&probe).unwrap();
    run_crawl_journaled(&jobs, &config, &TelemetryStore::new(), Some(&journal));
    journal.sync();
    let total_frames = replay(&probe).unwrap().frame_kinds.len() as u64;
    std::fs::remove_file(&probe).ok();
    assert!(total_frames >= jobs.len() as u64, "one frame per visit");

    for at_frame in 0..total_frames {
        for mode in [KillMode::MidFrame, KillMode::PostFrame] {
            let path = tmp(&format!("sweep-{at_frame}-{mode:?}"));
            let journal = JournalWriter::create(&path).unwrap();
            journal.set_kill(Some(KillSpec { at_frame, mode }));
            run_crawl_journaled(&jobs, &config, &TelemetryStore::new(), Some(&journal));
            assert!(journal.killed(), "kill at frame {at_frame} ({mode:?})");
            drop(journal);

            let report = replay(&path).unwrap();
            let campaigns = split_campaigns(&report.visits, &report.checkpoints);
            let plan = campaigns
                .get(&("top2020".to_string(), "Windows".to_string()))
                .map(|c| c.plan(&jobs))
                .unwrap_or_else(|| ResumePlan::fresh(jobs.len()));
            let journal = JournalWriter::open_append(&path).unwrap();
            let stats = run_crawl_resumed(&jobs, &plan, &config, &report.store, Some(&journal));
            journal.sync();

            assert_eq!(
                stats, baseline_stats,
                "stats diverge after kill at frame {at_frame} ({mode:?})"
            );
            assert_eq!(
                report.store.crawl_records(&CrawlId::top2020()),
                baseline_records,
                "records diverge after kill at frame {at_frame} ({mode:?})"
            );
            assert_eq!(
                campaign_tables(&report.store, &stats),
                baseline_tables,
                "tables diverge after kill at frame {at_frame} ({mode:?})"
            );
            std::fs::remove_file(&path).ok();
        }
    }
}

/// The group-commit counterpart of the boundary sweep above: at every
/// frame boundary, in both kill modes, a writer batching as hard as
/// possible (the group buffer only drains at fsyncs and kills) must
/// leave byte-for-byte the same file as the unbatched writer — so
/// every crash-recovery guarantee the sweep proves transfers to the
/// batched path unchanged. A sampled subset then actually resumes and
/// re-derives the tables.
#[test]
fn kill_sweep_with_aggressive_group_commit_matches_unbatched() {
    let sites = sweep_sites();
    let jobs: Vec<CrawlJob> = sites
        .iter()
        .map(|site| CrawlJob {
            site,
            malicious_category: None,
        })
        .collect();
    // One worker: journal frame *order* is completion order, so the
    // cross-run byte comparison below needs a deterministic schedule.
    // (The multi-worker sweep above already proves order-independent
    // recovery; this one pins the writer's on-disk bytes.)
    let mut config = sweep_config();
    config.workers = 1;

    let baseline_store = TelemetryStore::new();
    let baseline_stats = run_crawl(&jobs, &config, &baseline_store);
    let baseline_tables = campaign_tables(&baseline_store, &baseline_stats);

    // Batch without bound: frames only reach the file at a flush
    // point, sync, kill, or drop.
    let grouped_config = JournalConfig {
        group_max_frames: u64::MAX,
        group_max_bytes: usize::MAX >> 1,
        ..JournalConfig::default()
    };

    let probe = tmp("group-sweep-probe");
    let journal = JournalWriter::create_with(&probe, grouped_config).unwrap();
    run_crawl_journaled(&jobs, &config, &TelemetryStore::new(), Some(&journal));
    journal.sync();
    drop(journal);
    let total_frames = replay(&probe).unwrap().frame_kinds.len() as u64;
    std::fs::remove_file(&probe).ok();

    for at_frame in 0..total_frames {
        for mode in [KillMode::MidFrame, KillMode::PostFrame] {
            let grouped_path = tmp(&format!("group-sweep-{at_frame}-{mode:?}"));
            let journal = JournalWriter::create_with(&grouped_path, grouped_config).unwrap();
            journal.set_kill(Some(KillSpec { at_frame, mode }));
            run_crawl_journaled(&jobs, &config, &TelemetryStore::new(), Some(&journal));
            assert!(journal.killed(), "kill at frame {at_frame} ({mode:?})");
            drop(journal);

            let unbatched_path = tmp(&format!("unbatched-sweep-{at_frame}-{mode:?}"));
            let journal =
                JournalWriter::create_with(&unbatched_path, JournalConfig::unbatched()).unwrap();
            journal.set_kill(Some(KillSpec { at_frame, mode }));
            run_crawl_journaled(&jobs, &config, &TelemetryStore::new(), Some(&journal));
            drop(journal);

            assert_eq!(
                std::fs::read(&grouped_path).unwrap(),
                std::fs::read(&unbatched_path).unwrap(),
                "on-disk bytes diverge at kill frame {at_frame} ({mode:?})"
            );
            std::fs::remove_file(&unbatched_path).ok();

            // Resume a sample of boundaries end to end — byte equality
            // above carries the rest.
            if at_frame % 5 == 0 {
                let report = replay(&grouped_path).unwrap();
                let campaigns = split_campaigns(&report.visits, &report.checkpoints);
                let plan = campaigns
                    .get(&("top2020".to_string(), "Windows".to_string()))
                    .map(|c| c.plan(&jobs))
                    .unwrap_or_else(|| ResumePlan::fresh(jobs.len()));
                let journal =
                    JournalWriter::open_append_with(&grouped_path, grouped_config).unwrap();
                let stats = run_crawl_resumed(&jobs, &plan, &config, &report.store, Some(&journal));
                journal.sync();
                assert_eq!(
                    campaign_tables(&report.store, &stats),
                    baseline_tables,
                    "tables diverge after grouped kill at frame {at_frame} ({mode:?})"
                );
            }
            std::fs::remove_file(&grouped_path).ok();
        }
    }
}

#[test]
fn study_kills_at_meta_and_checkpoint_boundaries() {
    let config = StudyConfig::quick(13);
    let baseline = Study::run(config);

    // Probe the frame layout of an uninterrupted study journal.
    let probe = tmp("study-probe");
    let journal = JournalWriter::create(&probe).unwrap();
    Study::run_journaled(config, Some(&journal));
    drop(journal);
    let kinds = replay(&probe).unwrap().frame_kinds;
    std::fs::remove_file(&probe).ok();
    let first_cp = kinds
        .iter()
        .position(|&k| k == kind::CHECKPOINT)
        .expect("at least one checkpoint") as u64;
    let last = kinds.len() as u64 - 1;

    // Tearing the campaign-parameters frame itself leaves nothing to
    // resume from: the doctor can salvage bytes, but `resume` must
    // refuse rather than guess a population.
    let path = tmp("study-meta-kill");
    let journal = JournalWriter::create(&path).unwrap();
    journal.set_kill(Some(KillSpec {
        at_frame: 0,
        mode: KillMode::MidFrame,
    }));
    Study::run_journaled(config, Some(&journal));
    drop(journal);
    assert!(
        Study::resume(&path).is_err(),
        "resume without a meta frame must refuse"
    );
    std::fs::remove_file(&path).ok();

    // The interesting crash boundaries around campaign bookkeeping: a
    // torn first checkpoint, a crash right after it (campaign complete
    // on disk, successor not started), and a torn final checkpoint.
    let boundaries = [
        (first_cp, KillMode::MidFrame),
        (first_cp, KillMode::PostFrame),
        (last, KillMode::MidFrame),
    ];
    for (at_frame, mode) in boundaries {
        let path = tmp(&format!("study-kill-{at_frame}-{mode:?}"));
        let journal = JournalWriter::create(&path).unwrap();
        journal.set_kill(Some(KillSpec { at_frame, mode }));
        Study::run_journaled(config, Some(&journal));
        assert!(journal.killed(), "study must die at frame {at_frame}");
        drop(journal);

        let resumed = Study::resume(&path).unwrap();
        assert_eq!(
            resumed.stats, baseline.stats,
            "stats diverge after kill at frame {at_frame} ({mode:?})"
        );
        for (crawl, _) in campaigns() {
            assert_eq!(
                resumed.store.crawl_records(&crawl),
                baseline.store.crawl_records(&crawl),
                "{} records diverge after kill at frame {at_frame} ({mode:?})",
                crawl.as_str()
            );
        }
        for id in ["T1", "T2", "T5"] {
            assert_eq!(
                resumed.experiment(id),
                baseline.experiment(id),
                "table {id} diverges after kill at frame {at_frame} ({mode:?})"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn fsck_repair_then_resume_recovers_a_damaged_study_journal() {
    let config = StudyConfig::quick(29);
    let baseline = Study::run(config);

    let path = tmp("fsck-resume");
    let journal = JournalWriter::create(&path).unwrap();
    Study::run_journaled(config, Some(&journal));
    drop(journal);

    // Vandalise two visit frames in the middle of the file (never the
    // meta frame — a lost meta is unresumable by design).
    let data = std::fs::read(&path).unwrap();
    let frames = scan(&data).unwrap().frames;
    let mut bent = data.clone();
    for target in [frames.len() / 3, 2 * frames.len() / 3] {
        let frame = &frames[target];
        assert_ne!(frame.start, 8, "never the meta frame");
        bent[frame.start as usize + 9] ^= 0xFF;
    }
    std::fs::write(&path, &bent).unwrap();

    let report = fsck(
        &path,
        FsckOptions {
            repair: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(report.corrupt_frames, 2, "both flips detected");
    assert!(report.repaired, "repair rewrote the journal");
    assert!(report.quarantined_bytes > 0, "damage quarantined, not lost");
    let quarantine = report.quarantine_path.clone().expect("quarantine written");

    // The rewritten journal is clean; the two vandalised visits are
    // simply missing, and resume re-runs exactly those.
    let clean = fsck(&path, FsckOptions::default()).unwrap();
    assert_eq!(clean.corrupt_frames, 0);
    assert!(!clean.truncated_tail);

    let resumed = Study::resume(&path).unwrap();
    for (crawl, _) in campaigns() {
        let pick = |records: Vec<knock_talk::store::VisitRecord>| {
            records
                .into_iter()
                .map(|r| ((r.domain.clone(), r.os), r))
                .collect::<std::collections::BTreeMap<_, _>>()
        };
        let ours = pick(resumed.store.crawl_records(&crawl));
        let theirs = pick(baseline.store.crawl_records(&crawl));
        let missing: Vec<_> = theirs.keys().filter(|k| !ours.contains_key(*k)).collect();
        let extra: Vec<_> = ours.keys().filter(|k| !theirs.contains_key(*k)).collect();
        assert!(
            missing.is_empty() && extra.is_empty(),
            "{} domain set: missing {missing:?}, extra {extra:?}",
            crawl.as_str()
        );
        for (key, record) in &ours {
            assert_eq!(
                record,
                &theirs[key],
                "{} record for {key:?} diverges after repair",
                crawl.as_str()
            );
        }
    }
    assert_eq!(resumed.stats, baseline.stats, "stats recover after repair");
    assert_eq!(resumed.experiment("T1"), baseline.experiment("T1"));

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&quarantine).ok();
}

#[test]
fn legacy_ktstore1_snapshots_still_load_and_analyze() {
    let sites = sweep_sites();
    let jobs: Vec<CrawlJob> = sites
        .iter()
        .map(|site| CrawlJob {
            site,
            malicious_category: None,
        })
        .collect();
    let store = TelemetryStore::new();
    run_crawl(&jobs, &sweep_config(), &store);

    let path = std::env::temp_dir().join(format!(
        "kt-durability-legacy-{}.ktstore",
        std::process::id()
    ));
    let saved = persist::save(&store, &path).unwrap();
    assert_eq!(saved.records, store.len());
    assert!(saved.bytes > 0);

    // Both the explicit KTSTORE1 loader and the format-sniffing one.
    for loaded in [
        persist::load(&path).unwrap(),
        persist::load_any(&path).unwrap(),
    ] {
        assert_eq!(loaded.loaded, store.len());
        assert_eq!(loaded.corrupt, 0);
        assert!(!loaded.truncated);
        assert_eq!(
            loaded.store.crawl_records(&CrawlId::top2020()),
            store.crawl_records(&CrawlId::top2020()),
            "snapshot round-trips byte for byte"
        );
        // The analysis pipeline accepts the reloaded store unchanged.
        let records = loaded.store.crawl_records(&CrawlId::top2020());
        let detections: usize = records.iter().map(|r| detect_local(r).len()).sum();
        assert!(detections >= 10, "planted Discord probes survive the trip");
    }
    std::fs::remove_file(&path).ok();
}
