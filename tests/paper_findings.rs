//! The paper's findings, asserted end-to-end: everything here is
//! computed from stored NetLog telemetry alone (never from the
//! generator's ground truth), so each assertion certifies that the
//! full pipeline — crawl, capture, store, detect, classify — recovers
//! a published result.

use std::sync::OnceLock;

use knock_talk::analysis::classify::{classify_site, ReasonClass};
use knock_talk::analysis::detect::SiteLocalActivity;
use knock_talk::analysis::report;
use knock_talk::analysis::rings::PortRings;
use knock_talk::analysis::venn::OsVenn;
use knock_talk::netbase::{Os, Scheme};
use knock_talk::store::CrawlId;
use knock_talk::weblists::MaliciousCategory;
use knock_talk::{Study, StudyConfig};

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::run(StudyConfig::quick(2024)))
}

fn sites2020() -> &'static [SiteLocalActivity] {
    study().activities(&CrawlId::top2020())
}

#[test]
fn rq1_counts_2020() {
    // §4.1: 107 localhost sites, 9 LAN sites, no overlap.
    let sites = sites2020();
    let localhost = sites.iter().filter(|s| s.has_localhost()).count();
    let lan = sites.iter().filter(|s| s.has_lan()).count();
    let both = sites
        .iter()
        .filter(|s| s.has_localhost() && s.has_lan())
        .count();
    assert_eq!(localhost, 107);
    assert_eq!(lan, 9);
    assert_eq!(both, 0, "no overlap between the two sets (§4.1)");
}

#[test]
fn rq1_windows_skew_figure2a() {
    let sites = sites2020();
    let venn = OsVenn::from_sets(
        sites
            .iter()
            .filter(|s| s.has_localhost())
            .map(|s| s.localhost_os),
    );
    assert_eq!(venn.windows_total(), 92, "92 sites on Windows");
    assert_eq!(venn.mac_total(), 54, "54 on Mac");
    assert_eq!(venn.linux_total(), 53, "≈54 on Linux (±1, see DESIGN.md)");
    assert_eq!(venn.wlm, 41, "41 sites behave identically everywhere");
    assert_eq!(
        venn.w_only, 48,
        "45% Windows-exclusive — the targeting signal"
    );
}

#[test]
fn rq1_counts_2021_figure9() {
    let sites = study().activities(&CrawlId::top2021());
    let w = sites
        .iter()
        .filter(|s| s.localhost_os.contains(Os::Windows))
        .count();
    let l = sites
        .iter()
        .filter(|s| s.localhost_os.contains(Os::Linux))
        .count();
    assert_eq!(w, 82, "82 localhost sites in 2021 (Windows)");
    assert_eq!(l, 48, "48 on Linux");
    let lan = sites.iter().filter(|s| s.has_lan()).count();
    assert_eq!(lan, 8, "8 LAN sites in 2021 (Table 10)");
}

#[test]
fn rq1_2021_churn() {
    // §4.1: of the 82, 19 were crawled in 2020 without local traffic,
    // 21 are newly listed, the rest carried over.
    let diff = report::activity_diff(sites2020(), study().activities(&CrawlId::top2021()));
    assert_eq!(
        diff.new.len(),
        40,
        "40 localhost newcomers (19 old + 21 new domains)"
    );
    assert!(
        (40..=43).contains(&diff.carried.len()),
        "≈42 carried, got {}",
        diff.carried.len()
    );
}

#[test]
fn rq2_wss_dominates_windows_figure4() {
    // §4.2: ~60% of Windows localhost requests ride WSS; Linux and
    // Mac are HTTP-dominated instead.
    let records = study().store.crawl_records(&CrawlId::top2020());
    let observations: Vec<_> = records
        .iter()
        .flat_map(knock_talk::analysis::detect::detect_local)
        .collect();
    let rings = PortRings::from_observations(&observations);
    let (win_scheme, win_share) = rings.dominant_scheme(Os::Windows).unwrap();
    assert_eq!(win_scheme, Scheme::Wss, "WSS dominates Windows");
    assert!(win_share > 0.4, "share {win_share}");
    let (linux_scheme, _) = rings.dominant_scheme(Os::Linux).unwrap();
    assert!(
        !linux_scheme.is_websocket() || linux_scheme == Scheme::Ws,
        "Linux is not WSS-dominated: {linux_scheme}"
    );
    let win = &rings.by_os[&Os::Windows];
    let http_like = win
        .by_scheme
        .get(&Scheme::Http)
        .map(|r| r.total)
        .unwrap_or(0);
    let wss = win
        .by_scheme
        .get(&Scheme::Wss)
        .map(|r| r.total)
        .unwrap_or(0);
    assert!(
        wss > http_like,
        "WSS ({wss}) > HTTP ({http_like}) on Windows"
    );
}

#[test]
fn rq2_timing_figure5() {
    // Figure 5a: Windows median ≈10 s, Linux/Mac ≈5 s or less; max
    // below the 20 s window everywhere. Figure 5b: LAN requests on
    // Windows all arrive within ~5 s.
    let sites = sites2020();
    let median = |os: Os, loopback: bool| -> f64 {
        let mut v: Vec<u64> = sites
            .iter()
            .filter_map(|s| s.first_delay_on(os, loopback))
            .collect();
        v.sort_unstable();
        v[v.len() / 2] as f64 / 1000.0
    };
    let w = median(Os::Windows, true);
    let l = median(Os::Linux, true);
    let m = median(Os::MacOs, true);
    assert!((8.0..13.0).contains(&w), "Windows median {w}");
    assert!(l < 6.5, "Linux median {l}");
    assert!(m < 6.5, "Mac median {m}");
    assert!(w > l && w > m, "Windows is the slow one");
    // LAN on Windows: max 5 s.
    let lan_w_max = sites
        .iter()
        .filter_map(|s| s.first_delay_on(Os::Windows, false))
        .max()
        .unwrap_or(0);
    assert!(lan_w_max <= 5_000, "LAN max on Windows {lan_w_max}ms");
}

#[test]
fn rq3_class_sizes_2020() {
    // §4.3: 36 fraud, 10 bot, 12 native, 44 dev-error, 5 unknown.
    let sites = sites2020();
    let mut counts = std::collections::BTreeMap::new();
    for s in sites.iter().filter(|s| s.has_localhost()) {
        *counts.entry(classify_site(s)).or_insert(0usize) += 1;
    }
    assert_eq!(counts[&ReasonClass::FraudDetection], 36);
    assert_eq!(counts[&ReasonClass::BotDetection], 10);
    assert_eq!(counts[&ReasonClass::NativeApplication], 12);
    assert_eq!(counts[&ReasonClass::DeveloperError], 44);
    assert_eq!(counts[&ReasonClass::Unknown], 5);
}

#[test]
fn rq3_anti_abuse_is_windows_only() {
    for s in sites2020().iter().filter(|s| s.has_localhost()) {
        match classify_site(s) {
            ReasonClass::FraudDetection | ReasonClass::BotDetection => {
                assert_eq!(
                    s.localhost_os,
                    knock_talk::netbase::OsSet::WINDOWS_ONLY,
                    "{} anti-abuse must be Windows-only",
                    s.domain
                );
            }
            _ => {}
        }
    }
}

#[test]
fn rq3_no_bot_detection_in_2021() {
    // §4.3.2: the BIG-IP script disappeared between crawls.
    let sites = study().activities(&CrawlId::top2021());
    let bot = sites
        .iter()
        .filter(|s| s.has_localhost())
        .filter(|s| classify_site(s) == ReasonClass::BotDetection)
        .count();
    assert_eq!(bot, 0);
}

#[test]
fn malicious_findings_table2() {
    let sites = study().activities(&CrawlId::malicious());
    let localhost = sites.iter().filter(|s| s.has_localhost()).count();
    let lan = sites.iter().filter(|s| s.has_lan()).count();
    assert_eq!(localhost, 151, "151 malicious localhost sites");
    assert_eq!(lan, 9, "9 malicious LAN sites");
    // Per-category, per-OS counts (Table 2's right side).
    let count = |cat: MaliciousCategory, os: Os, lan: bool| {
        sites
            .iter()
            .filter(|s| s.malicious_category == Some(report::category_code(cat)))
            .filter(|s| {
                if lan {
                    s.lan_os.contains(os)
                } else {
                    s.localhost_os.contains(os)
                }
            })
            .count()
    };
    assert_eq!(count(MaliciousCategory::Malware, Os::Windows, false), 72);
    assert_eq!(count(MaliciousCategory::Malware, Os::Linux, false), 83);
    assert_eq!(count(MaliciousCategory::Malware, Os::MacOs, false), 75);
    assert_eq!(count(MaliciousCategory::Phishing, Os::Windows, false), 25);
    assert_eq!(count(MaliciousCategory::Phishing, Os::Linux, false), 41);
    assert_eq!(count(MaliciousCategory::Phishing, Os::MacOs, false), 9);
    assert_eq!(count(MaliciousCategory::Abuse, Os::Windows, false), 0);
    assert_eq!(count(MaliciousCategory::Abuse, Os::Windows, true), 1);
    assert_eq!(count(MaliciousCategory::Malware, Os::Windows, true), 8);
    assert_eq!(count(MaliciousCategory::Malware, Os::Linux, true), 7);
    assert_eq!(count(MaliciousCategory::Malware, Os::MacOs, true), 7);
}

#[test]
fn malicious_dev_errors_dominate() {
    // §4.3.4: >90% of malicious local activity is developer errors —
    // here measured among the non-clone sites plus clones, matching
    // the paper's framing that none of it is an attack.
    let sites = study().activities(&CrawlId::malicious());
    let active: Vec<_> = sites.iter().filter(|s| s.has_localhost()).collect();
    let dev = active
        .iter()
        .filter(|s| classify_site(s) == ReasonClass::DeveloperError)
        .count();
    assert!(
        dev as f64 / active.len() as f64 > 0.80,
        "dev errors {} of {}",
        dev,
        active.len()
    );
    // And the 13 phishing clones with inherited fraud detection exist.
    let clones = active
        .iter()
        .filter(|s| classify_site(s) == ReasonClass::FraudDetection)
        .count();
    assert_eq!(clones, 13);
}

#[test]
fn crawl_success_rates_match_table1_and_2() {
    let s = study();
    // Top-list crawls succeed ~90%.
    for os in [Os::Windows, Os::Linux, Os::MacOs] {
        let stats = s.stats_for(&CrawlId::top2020(), os).unwrap();
        let rate = stats.success_rate();
        assert!((0.85..0.95).contains(&rate), "{os:?} 2020 rate {rate}");
    }
    // Malicious crawls succeed ~61–76% per category; overall ~70%.
    for os in [Os::Windows, Os::Linux, Os::MacOs] {
        let stats = s.stats_for(&CrawlId::malicious(), os).unwrap();
        let rate = stats.success_rate();
        assert!((0.60..0.80).contains(&rate), "{os:?} malicious rate {rate}");
    }
    // DNS failures dominate (≈88–90% of failures).
    let stats = s.stats_for(&CrawlId::top2020(), Os::Windows).unwrap();
    let dns = stats.failure_count(knock_talk::netlog::NetError::NameNotResolved);
    let share = dns as f64 / stats.failed().max(1) as f64;
    assert!((0.80..0.95).contains(&share), "DNS share {share}");
}

#[test]
fn rank_distribution_is_uniformish_figure3() {
    // Figure 3: detected domains spread through the whole list — the
    // quartiles of the rank ECDF should be roughly linear.
    let sites = sites2020();
    let n = study().population.sites2020.len() as f64;
    let ranks: Vec<f64> = sites
        .iter()
        .filter(|s| s.has_localhost())
        .filter_map(|s| s.rank)
        .map(|r| r as f64 / n)
        .collect();
    assert!(!ranks.is_empty());
    let ecdf = knock_talk::analysis::cdf::Ecdf::new(ranks);
    let q25 = ecdf.quantile(0.25).unwrap();
    let q50 = ecdf.quantile(0.50).unwrap();
    let q75 = ecdf.quantile(0.75).unwrap();
    assert!((0.15..0.40).contains(&q25), "q25 {q25}");
    assert!((0.35..0.65).contains(&q50), "q50 {q50}");
    assert!((0.60..0.90).contains(&q75), "q75 {q75}");
}

#[test]
fn highly_ranked_sites_exhibit_behavior_table3() {
    // Table 3: the list's head includes a fraud-detection site with a
    // very high rank (ebay.com at 104 in the paper).
    let sites = sites2020();
    let best = sites
        .iter()
        .filter(|s| s.has_localhost())
        .filter_map(|s| s.rank)
        .min()
        .unwrap();
    let head = (study().population.sites2020.len() / 100).max(10) as u32;
    assert!(
        best <= head,
        "top site rank {best} within the first centile"
    );
}
