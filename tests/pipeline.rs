//! End-to-end pipeline integration: population → worlds → crawls →
//! store → detection. Asserts the structural invariants every stage
//! must preserve.

use std::sync::OnceLock;

use knock_talk::analysis::detect::{aggregate_sites, detect_local};
use knock_talk::netbase::{Locality, Os, Url};
use knock_talk::netlog::{FlowSet, SourceType};
use knock_talk::store::CrawlId;
use knock_talk::{Study, StudyConfig};

fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::run(StudyConfig::quick(2024)))
}

#[test]
fn every_site_is_visited_on_every_scheduled_os() {
    let s = study();
    let n2020 = s.population.sites2020.len();
    assert_eq!(
        s.store.crawl_records(&CrawlId::top2020()).len(),
        n2020 * 3,
        "2020: three OS crawls per site"
    );
    let n2021 = s.population.sites2021.len();
    assert_eq!(
        s.store.crawl_records(&CrawlId::top2021()).len(),
        n2021 * 2,
        "2021: Windows and Linux only"
    );
    let nmal = s.population.malicious_sites.len();
    assert_eq!(s.store.crawl_records(&CrawlId::malicious()).len(), nmal * 3);
}

#[test]
fn stored_telemetry_is_flow_consistent() {
    let s = study();
    let records = s.store.crawl_records_on(&CrawlId::top2020(), Os::Windows);
    let mut checked = 0;
    for record in records.iter().take(200) {
        let flows = FlowSet::from_events(record.events.iter().cloned());
        for flow in flows.iter() {
            // Events in a flow share the source and are time-ordered.
            assert!(flow.events.iter().all(|e| e.source.id == flow.source.id));
            assert!(flow.events.windows(2).all(|w| w[0].time <= w[1].time));
            // Every event sits inside the 20 s observation window.
            assert!(flow.end_time() < 20_000, "{}", record.domain);
        }
        checked += 1;
    }
    assert!(checked > 0);
}

#[test]
fn detection_only_reports_loopback_or_private() {
    let s = study();
    for record in s.store.crawl_records_on(&CrawlId::top2020(), Os::Linux) {
        for obs in detect_local(&record) {
            assert!(
                obs.locality == Locality::Loopback || obs.locality == Locality::Private,
                "{:?}",
                obs.locality
            );
            // And the URL re-parses to the same classification.
            assert_eq!(
                Url::parse(&obs.url.to_string()).unwrap().locality(),
                obs.locality
            );
        }
    }
}

#[test]
fn browser_internal_sources_never_surface_as_findings() {
    let s = study();
    for record in s
        .store
        .crawl_records_on(&CrawlId::top2020(), Os::Windows)
        .iter()
        .take(100)
    {
        let internal_ids: Vec<u64> = record
            .events
            .iter()
            .filter(|e| e.source.kind == SourceType::BrowserInternal)
            .map(|e| e.source.id)
            .collect();
        assert!(
            !internal_ids.is_empty(),
            "internal noise exists in telemetry"
        );
        // No detection may come from an internal source's flow.
        let flows = FlowSet::from_events(record.events.iter().cloned());
        for obs in detect_local(record) {
            let flow = flows
                .iter()
                .find(|f| f.url().is_some_and(|u| u == obs.url.to_string()));
            if let Some(flow) = flow {
                assert_ne!(flow.source.kind, SourceType::BrowserInternal);
            }
        }
    }
}

#[test]
fn aggregation_is_stable_under_record_order() {
    let s = study();
    let mut records = s.store.crawl_records(&CrawlId::top2020());
    let forward = aggregate_sites(&records);
    records.reverse();
    let backward = aggregate_sites(&records);
    assert_eq!(forward.len(), backward.len());
    for (a, b) in forward.iter().zip(&backward) {
        assert_eq!(a.domain, b.domain);
        assert_eq!(a.localhost_os, b.localhost_os);
        assert_eq!(a.lan_os, b.lan_os);
    }
}

#[test]
fn reruns_are_bit_identical() {
    // Same seed ⇒ same detection output, independent of the worker
    // pool's scheduling.
    let a = Study::run(StudyConfig {
        population: knock_talk::webgen::PopulationConfig {
            seed: 99,
            top_size: 600,
            malicious_size: 300,
            sensors: false,
        },
        workers: 2,
    });
    let b = Study::run(StudyConfig {
        population: knock_talk::webgen::PopulationConfig {
            seed: 99,
            top_size: 600,
            malicious_size: 300,
            sensors: false,
        },
        workers: 7,
    });
    let acts_a = a.activities(&CrawlId::top2020());
    let acts_b = b.activities(&CrawlId::top2020());
    assert_eq!(acts_a.len(), acts_b.len());
    for (x, y) in acts_a.iter().zip(acts_b) {
        assert_eq!(x, y);
    }
}

#[test]
fn no_ipv6_local_traffic_matches_paper() {
    // "We did not observe any localhost or LAN network traffic over
    // IPv6" (§4) — our population plants none either; confirm the
    // pipeline agrees rather than hallucinating some.
    let s = study();
    for crawl in [CrawlId::top2020(), CrawlId::top2021(), CrawlId::malicious()] {
        for record in s.store.crawl_records(&crawl) {
            for obs in detect_local(&record) {
                assert!(
                    !obs.url.to_string().contains('['),
                    "unexpected IPv6 local destination {}",
                    obs.url
                );
            }
        }
    }
}

#[test]
fn deep_crawl_reveals_internal_page_behaviour() {
    use knock_talk::crawler::{run_crawl, CrawlConfig, CrawlJob};
    use knock_talk::store::TelemetryStore;

    let s = study();
    let jobs: Vec<CrawlJob> = s
        .population
        .sites2020
        .iter()
        .map(|site| CrawlJob {
            site,
            malicious_category: None,
        })
        .collect();
    let count_active = |crawl_internal: bool| -> usize {
        let store = TelemetryStore::new();
        let mut config = CrawlConfig::paper(
            knock_talk::store::CrawlId("deep-test".to_string()),
            Os::Windows,
            s.config.population.seed,
        );
        config.crawl_internal = crawl_internal;
        run_crawl(&jobs, &config, &store);
        let records = store.crawl_records(&knock_talk::store::CrawlId("deep-test".to_string()));
        aggregate_sites(&records)
            .iter()
            .filter(|site| site.localhost_os.contains(Os::Windows))
            .count()
    };
    let shallow = count_active(false);
    let deep = count_active(true);
    assert_eq!(shallow, 92, "the paper's landing-page count");
    assert_eq!(
        deep,
        92 + 18,
        "18 internal-page ThreatMetrix deployments surface in deep mode"
    );
}
